//! A centralized policy (ACL) application — the paper's §4 "Centralized
//! Applications" use case: "a centralized application is a composition of
//! functions that require the whole application state in one physical
//! location … for such a function, Beehive guarantees that the whole state
//! — all cells of that application — are assigned to one bee."
//!
//! The policy table must be evaluated as a whole (rule priorities interact),
//! so every handler maps the `policy` dictionary whole. Beehive collocates
//! it on a single bee; and since apps never share state, the platform is
//! free to place this centralized app on whichever hive has room — "the
//! platform may place different centralized applications on different hives
//! to satisfy extensive resource requirements."

use beehive_core::prelude::*;
use beehive_openflow::driver::{InstallRule, PacketInEvent};
use beehive_openflow::switch::parse_macs;
use serde::{Deserialize, Serialize};

/// Name of the ACL app.
pub const ACL_APP: &str = "acl";

/// Add (or replace) a policy rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddRule {
    /// Unique rule name.
    pub name: String,
    /// Higher evaluates first.
    pub priority: u16,
    /// Match on source MAC (None = any).
    pub src_mac: Option<[u8; 6]>,
    /// Match on destination MAC (None = any).
    pub dst_mac: Option<[u8; 6]>,
    /// Allow or deny.
    pub allow: bool,
}
impl_message!(AddRule);

/// Remove a rule by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoveRule {
    /// The rule to remove.
    pub name: String,
}
impl_message!(RemoveRule);

/// The verdict for an evaluated packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AclVerdict {
    /// The switch that punted the packet.
    pub switch: u64,
    /// Whether the packet is allowed.
    pub allow: bool,
    /// Name of the deciding rule (None = default allow).
    pub rule: Option<String>,
}
impl_message!(AclVerdict);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Rule {
    priority: u16,
    src_mac: Option<[u8; 6]>,
    dst_mac: Option<[u8; 6]>,
    allow: bool,
}

const POLICY: &str = "policy";
/// Port used for deny rules (drop): OpenFlow has no explicit drop action in
/// our subset; an `InstallRule` with out_port 0 is treated as a drop by the
/// simulator convention.
pub const DROP_PORT: u16 = 0;

fn evaluate(
    ctx: &RcvCtx<'_>,
    src: [u8; 6],
    dst: [u8; 6],
) -> Result<(bool, Option<String>), String> {
    let mut best: Option<(u16, String, bool)> = None;
    for name in ctx.keys(POLICY) {
        let Some(rule) = ctx.get::<Rule>(POLICY, &name).map_err(|e| e.to_string())? else {
            continue;
        };
        let matches =
            rule.src_mac.is_none_or(|m| m == src) && rule.dst_mac.is_none_or(|m| m == dst);
        if matches && best.as_ref().is_none_or(|(p, _, _)| rule.priority > *p) {
            best = Some((rule.priority, name.clone(), rule.allow));
        }
    }
    Ok(match best {
        Some((_, name, allow)) => (allow, Some(name)),
        None => (true, None), // default allow
    })
}

/// Builds the centralized ACL app: whole-dict `policy`, one bee cluster-wide.
pub fn acl_app() -> App {
    App::builder(ACL_APP)
        .handle_whole::<AddRule>("AddRule", &[POLICY], |m, ctx| {
            ctx.put(
                POLICY,
                m.name.clone(),
                &Rule {
                    priority: m.priority,
                    src_mac: m.src_mac,
                    dst_mac: m.dst_mac,
                    allow: m.allow,
                },
            )
            .map_err(|e| e.to_string())
        })
        .handle_whole::<RemoveRule>("RemoveRule", &[POLICY], |m, ctx| {
            ctx.del(POLICY, &m.name);
            Ok(())
        })
        .handle_whole::<PacketInEvent>("Evaluate", &[POLICY], |m, ctx| {
            let Some((dst, src)) = parse_macs(&m.data) else {
                return Err("short packet".into());
            };
            let (allow, rule) = evaluate(ctx, src, dst)?;
            if !allow {
                // Program the deny on the punting switch.
                ctx.emit(InstallRule {
                    switch: m.switch,
                    match_: beehive_openflow::Match::dl_dst_exact(dst),
                    priority: 100,
                    out_port: DROP_PORT,
                });
            }
            ctx.emit(AclVerdict {
                switch: m.switch,
                allow,
                rule,
            });
            Ok(())
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::feedback::design_feedback;
    use beehive_openflow::switch::encode_header_as_packet;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn mac(n: u8) -> [u8; 6] {
        [n; 6]
    }

    fn pkt(src: u8, dst: u8) -> Vec<u8> {
        encode_header_as_packet(&beehive_openflow::Match {
            dl_src: mac(src),
            dl_dst: mac(dst),
            ..Default::default()
        })
    }

    fn hive_with_acl() -> (Hive, Arc<Mutex<Vec<AclVerdict>>>) {
        let mut cfg = beehive_core::HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        let mut hive = Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        );
        hive.install(acl_app());
        let verdicts = Arc::new(Mutex::new(Vec::new()));
        let v2 = verdicts.clone();
        hive.install(
            App::builder("sink")
                .handle::<AclVerdict>(
                    |m| Mapped::cell("v", m.switch.to_string()),
                    move |m, _| {
                        v2.lock().push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        (hive, verdicts)
    }

    #[test]
    fn acl_is_centralized_by_design() {
        let report = design_feedback(&acl_app());
        assert!(report.is_centralized());
        // One bee no matter how many rules/switches.
        let (mut hive, _v) = hive_with_acl();
        for i in 0..5 {
            hive.emit(AddRule {
                name: format!("r{i}"),
                priority: i,
                src_mac: None,
                dst_mac: Some(mac(i as u8)),
                allow: false,
            });
        }
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(ACL_APP), 1);
    }

    #[test]
    fn default_is_allow() {
        let (mut hive, verdicts) = hive_with_acl();
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 1,
            data: pkt(1, 2),
        });
        hive.step_until_quiescent(1000);
        let v = verdicts.lock().clone();
        assert_eq!(v.len(), 1);
        assert!(v[0].allow);
        assert_eq!(v[0].rule, None);
    }

    #[test]
    fn deny_rule_blocks_and_programs_drop() {
        let (mut hive, verdicts) = hive_with_acl();
        let drops = Arc::new(Mutex::new(Vec::new()));
        let d2 = drops.clone();
        hive.install(
            App::builder("drop-sink")
                .handle::<InstallRule>(
                    |m| Mapped::cell("d", m.switch.to_string()),
                    move |m, _| {
                        d2.lock().push(m.out_port);
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(AddRule {
            name: "block-2".into(),
            priority: 10,
            src_mac: None,
            dst_mac: Some(mac(2)),
            allow: false,
        });
        hive.emit(PacketInEvent {
            switch: 7,
            in_port: 1,
            data: pkt(1, 2),
        });
        hive.step_until_quiescent(1000);
        let v = verdicts.lock().clone();
        assert!(!v[0].allow);
        assert_eq!(v[0].rule.as_deref(), Some("block-2"));
        assert_eq!(drops.lock().clone(), vec![DROP_PORT]);
    }

    #[test]
    fn higher_priority_wins() {
        let (mut hive, verdicts) = hive_with_acl();
        hive.emit(AddRule {
            name: "deny-all-to-2".into(),
            priority: 1,
            src_mac: None,
            dst_mac: Some(mac(2)),
            allow: false,
        });
        hive.emit(AddRule {
            name: "allow-1-to-2".into(),
            priority: 50,
            src_mac: Some(mac(1)),
            dst_mac: Some(mac(2)),
            allow: true,
        });
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 1,
            data: pkt(1, 2),
        });
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 1,
            data: pkt(9, 2),
        });
        hive.step_until_quiescent(1000);
        let v = verdicts.lock().clone();
        assert!(v[0].allow, "specific allow overrides");
        assert_eq!(v[0].rule.as_deref(), Some("allow-1-to-2"));
        assert!(!v[1].allow, "others still denied");
    }

    #[test]
    fn remove_rule_restores_default() {
        let (mut hive, verdicts) = hive_with_acl();
        hive.emit(AddRule {
            name: "deny".into(),
            priority: 1,
            src_mac: None,
            dst_mac: Some(mac(2)),
            allow: false,
        });
        hive.emit(RemoveRule {
            name: "deny".into(),
        });
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 1,
            data: pkt(1, 2),
        });
        hive.step_until_quiescent(1000);
        assert!(verdicts.lock()[0].allow);
    }
}
