//! Switch and link discovery.
//!
//! The real protocol would flood LLDP probes via `PacketOut`/`PacketIn`;
//! here a `discovery` app maintains per-switch adjacency from
//! [`LinkDiscovered`] events, which either an LLDP prober or (in the
//! simulator) the topology injector emits. Downstream apps (TE, routing)
//! consume the same [`LinkDiscovered`] broadcast.

use beehive_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Name of the discovery app.
pub const DISCOVERY_APP: &str = "discovery";

/// A unidirectional link was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDiscovered {
    /// Source switch.
    pub src: u64,
    /// Source port.
    pub src_port: u16,
    /// Destination switch.
    pub dst: u64,
}
impl_message!(LinkDiscovered);

/// Ask discovery for a switch's neighbors; it replies with [`Neighbors`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborQuery {
    /// The switch.
    pub switch: u64,
}
impl_message!(NeighborQuery);

/// Reply to [`NeighborQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighbors {
    /// The switch.
    pub switch: u64,
    /// `(neighbor, local port)` pairs.
    pub neighbors: Vec<(u64, u16)>,
}
impl_message!(Neighbors);

const ADJ: &str = "adjacency";

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct AdjEntry {
    neighbors: Vec<(u64, u16)>,
}

/// Builds the discovery app: per-switch adjacency cells (fully
/// distributable — one bee per switch).
pub fn discovery_app() -> App {
    App::builder(DISCOVERY_APP)
        .handle_named::<LinkDiscovered>(
            "Learn",
            |m| Mapped::cell(ADJ, m.src.to_string()),
            |m, ctx| {
                let key = m.src.to_string();
                let mut entry: AdjEntry = ctx
                    .get(ADJ, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                if !entry.neighbors.contains(&(m.dst, m.src_port)) {
                    entry.neighbors.push((m.dst, m.src_port));
                    entry.neighbors.sort();
                    ctx.put(ADJ, key, &entry).map_err(|e| e.to_string())?;
                }
                Ok(())
            },
        )
        .handle_named::<NeighborQuery>(
            "Answer",
            |m| Mapped::cell(ADJ, m.switch.to_string()),
            |m, ctx| {
                let entry: AdjEntry = ctx
                    .get(ADJ, &m.switch.to_string())
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                ctx.emit(Neighbors {
                    switch: m.switch,
                    neighbors: entry.neighbors,
                });
                Ok(())
            },
        )
        .build()
}

/// Emits [`LinkDiscovered`] events for every (directed) link of a topology —
/// what an LLDP round would produce.
pub fn inject_topology(handle: &HiveHandle, topo: &beehive_sim_topology::TopologyLinks) {
    for &(src, src_port, dst) in &topo.0 {
        handle.emit(LinkDiscovered { src, src_port, dst });
    }
}

/// Minimal topology-links carrier so this crate doesn't depend on
/// `beehive-sim` (which depends on nothing here; the dependency would be
/// backwards). The simulator converts its `Topology` into this.
pub mod beehive_sim_topology {
    /// Directed links: `(src, src_port, dst)`.
    pub struct TopologyLinks(pub Vec<(u64, u16, u64)>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    #[test]
    fn links_accumulate_per_switch() {
        let mut hive = standalone();
        hive.install(discovery_app());
        hive.emit(LinkDiscovered {
            src: 1,
            src_port: 2,
            dst: 5,
        });
        hive.emit(LinkDiscovered {
            src: 1,
            src_port: 3,
            dst: 6,
        });
        hive.emit(LinkDiscovered {
            src: 1,
            src_port: 2,
            dst: 5,
        }); // dup
        hive.emit(LinkDiscovered {
            src: 2,
            src_port: 1,
            dst: 1,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(DISCOVERY_APP), 2, "one bee per switch");
        let bees = hive.local_bees(DISCOVERY_APP);
        let total: usize = bees
            .iter()
            .map(|(b, _)| {
                hive.peek_state::<AdjEntry>(DISCOVERY_APP, *b, ADJ, "1")
                    .map(|e| e.neighbors.len())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, 2, "switch 1 has two unique neighbors");
    }

    #[test]
    fn query_returns_neighbors() {
        let mut hive = standalone();
        hive.install(discovery_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("sink")
                .handle::<Neighbors>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        seen2.lock().push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(LinkDiscovered {
            src: 3,
            src_port: 1,
            dst: 9,
        });
        hive.emit(NeighborQuery { switch: 3 });
        hive.step_until_quiescent(1000);
        let replies = seen.lock().clone();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].neighbors, vec![(9, 1)]);
    }

    #[test]
    fn unknown_switch_reports_empty() {
        let mut hive = standalone();
        hive.install(discovery_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("sink")
                .handle::<Neighbors>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        seen2.lock().push(m.neighbors.len());
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(NeighborQuery { switch: 42 });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock().clone(), vec![0]);
    }
}
