//! Kandoo emulation (paper §4): Kandoo's two tiers map directly onto
//! Beehive. The **local** application (here: elephant-flow detection, the
//! example from the Kandoo paper) uses per-switch cells, so Beehive places
//! one bee per switch next to its master hive — no deliberate placement
//! needed. The **root** application receives rare, aggregated
//! [`ElephantDetected`] events and reroutes centrally.
//!
//! Compared to Kandoo itself, Beehive *infers* this placement instead of
//! having the developer assign controllers (paper: "network programmers do
//! not deliberately design for a specific placement").

use beehive_core::prelude::*;
use beehive_openflow::driver::{InstallRule, StatReply};
use serde::{Deserialize, Serialize};

/// Name of the local (per-switch) detection app.
pub const KANDOO_LOCAL_APP: &str = "kandoo.local";
/// Name of the root (centralized) app.
pub const KANDOO_ROOT_APP: &str = "kandoo.root";

/// A flow crossed the elephant threshold on some switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElephantDetected {
    /// Observing switch.
    pub switch: u64,
    /// Flow source.
    pub nw_src: u32,
    /// Flow destination.
    pub nw_dst: u32,
    /// Cumulative bytes at detection.
    pub bytes: u64,
}
impl_message!(ElephantDetected);

const SEEN: &str = "seen";
const ROOT: &str = "root";

/// Builds the local app: watches [`StatReply`]s per switch and fires
/// [`ElephantDetected`] the first time a flow exceeds `threshold_bytes`.
pub fn kandoo_local_app(threshold_bytes: u64) -> App {
    App::builder(KANDOO_LOCAL_APP)
        .handle_named::<StatReply>(
            "AppDetect",
            |m| Mapped::cell(SEEN, m.switch.to_string()),
            move |m, ctx| {
                let key = m.switch.to_string();
                let mut reported: Vec<(u32, u32)> = ctx
                    .get(SEEN, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                for f in &m.flows {
                    let id = (f.nw_src, f.nw_dst);
                    if f.bytes > threshold_bytes && !reported.contains(&id) {
                        reported.push(id);
                        ctx.emit(ElephantDetected {
                            switch: m.switch,
                            nw_src: f.nw_src,
                            nw_dst: f.nw_dst,
                            bytes: f.bytes,
                        });
                    }
                }
                ctx.put(SEEN, key, &reported).map_err(|e| e.to_string())
            },
        )
        .build()
}

/// Builds the root app: a centralized view of all elephants that reroutes
/// each (demonstrating the rare-event escalation path).
pub fn kandoo_root_app() -> App {
    App::builder(KANDOO_ROOT_APP)
        .handle_whole::<ElephantDetected>("AppReroute", &[ROOT], |m, ctx| {
            let key = format!("{}:{}:{}", m.switch, m.nw_src, m.nw_dst);
            if ctx.contains(ROOT, &key) {
                return Ok(());
            }
            ctx.put(ROOT, key, &m.bytes).map_err(|e| e.to_string())?;
            ctx.emit(InstallRule {
                switch: m.switch,
                match_: beehive_openflow::Match::nw_pair(m.nw_src, m.nw_dst),
                priority: 30,
                out_port: 3,
            });
            Ok(())
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::feedback::design_feedback;
    use beehive_openflow::driver::FlowStat;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    fn reply(switch: u64, bytes: u64) -> StatReply {
        StatReply {
            switch,
            flows: vec![FlowStat {
                nw_src: 1,
                nw_dst: 2,
                packets: 1,
                bytes,
                duration_sec: 1,
            }],
        }
    }

    #[test]
    fn local_detects_once_per_flow() {
        let mut hive = standalone();
        hive.install(kandoo_local_app(1000));
        let seen = Arc::new(Mutex::new(0usize));
        let s = seen.clone();
        hive.install(
            App::builder("sink")
                .handle::<ElephantDetected>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |_m, _| {
                        *s.lock() += 1;
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(reply(1, 500)); // below threshold
        hive.emit(reply(1, 5000)); // crosses
        hive.emit(reply(1, 9000)); // already reported
        hive.step_until_quiescent(1000);
        assert_eq!(*seen.lock(), 1);
    }

    #[test]
    fn root_reroutes_each_elephant_once() {
        let mut hive = standalone();
        hive.install(kandoo_root_app());
        let rules = Arc::new(Mutex::new(Vec::new()));
        let r = rules.clone();
        hive.install(
            App::builder("sink")
                .handle::<InstallRule>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        r.lock().push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        let e = ElephantDetected {
            switch: 4,
            nw_src: 1,
            nw_dst: 2,
            bytes: 9000,
        };
        hive.emit(e.clone());
        hive.emit(e);
        hive.emit(ElephantDetected {
            switch: 4,
            nw_src: 3,
            nw_dst: 4,
            bytes: 9000,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(rules.lock().len(), 2);
    }

    #[test]
    fn two_tier_pipeline_end_to_end() {
        let mut hive = standalone();
        hive.install(kandoo_local_app(1000));
        hive.install(kandoo_root_app());
        let rules = Arc::new(Mutex::new(Vec::new()));
        let r = rules.clone();
        hive.install(
            App::builder("sink")
                .handle::<InstallRule>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        r.lock().push(m.switch);
                        Ok(())
                    },
                )
                .build(),
        );
        for sw in 1..=3u64 {
            hive.emit(reply(sw, 50_000));
        }
        hive.step_until_quiescent(1000);
        let mut switches = rules.lock().clone();
        switches.sort();
        assert_eq!(switches, vec![1, 2, 3]);
        // Local app sharded per switch; root centralized on one bee.
        assert_eq!(hive.local_bee_count(KANDOO_LOCAL_APP), 3);
        assert_eq!(hive.local_bee_count(KANDOO_ROOT_APP), 1);
    }

    #[test]
    fn design_feedback_matches_kandoo_tiers() {
        assert!(!design_feedback(&kandoo_local_app(1)).is_centralized());
        assert!(design_feedback(&kandoo_root_app()).is_centralized());
    }
}
