//! L2 learning switch — the canonical **local control application** from
//! Kandoo (paper §4): every function accesses the state of a single switch,
//! so cells are per-switch and Beehive naturally replicates the function to
//! every hive, handling each switch next to its master controller.

use beehive_core::prelude::*;
use beehive_openflow::driver::{InstallRule, PacketInEvent, PacketOutCmd};
use beehive_openflow::switch::parse_macs;
use beehive_openflow::wire::OFPP_FLOOD;
use serde::{Deserialize, Serialize};

/// Name of the learning switch app.
pub const LEARNING_SWITCH_APP: &str = "learning-switch";

const MACS: &str = "macs";

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct MacTable {
    /// MAC → port.
    entries: std::collections::BTreeMap<[u8; 6], u16>,
}

/// Builds the learning switch app: per-switch MAC tables.
///
/// * On `PacketIn`: learn `src → in_port`; if `dst` is known install a flow
///   and forward, otherwise flood.
pub fn learning_switch_app() -> App {
    App::builder(LEARNING_SWITCH_APP)
        .handle_named::<PacketInEvent>(
            "PacketIn",
            |m| Mapped::cell(MACS, m.switch.to_string()),
            |m, ctx| {
                let Some((dst, src)) = parse_macs(&m.data) else {
                    return Err("packet too short for Ethernet".into());
                };
                let key = m.switch.to_string();
                let mut table: MacTable = ctx
                    .get(MACS, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                table.entries.insert(src, m.in_port);
                let out = table.entries.get(&dst).copied();
                ctx.put(MACS, key, &table).map_err(|e| e.to_string())?;
                match out {
                    Some(port) => {
                        // Program the fast path and release the packet.
                        ctx.emit(InstallRule {
                            switch: m.switch,
                            match_: beehive_openflow::Match::dl_dst_exact(dst),
                            priority: 5,
                            out_port: port,
                        });
                        ctx.emit(PacketOutCmd {
                            switch: m.switch,
                            in_port: m.in_port,
                            out_port: port,
                            data: m.data.clone(),
                        });
                    }
                    None => {
                        ctx.emit(PacketOutCmd {
                            switch: m.switch,
                            in_port: m.in_port,
                            out_port: OFPP_FLOOD,
                            data: m.data.clone(),
                        });
                    }
                }
                Ok(())
            },
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_openflow::switch::encode_header_as_packet;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn pkt(src: [u8; 6], dst: [u8; 6]) -> Vec<u8> {
        encode_header_as_packet(&beehive_openflow::Match {
            dl_src: src,
            dl_dst: dst,
            ..Default::default()
        })
    }

    struct Captured {
        rules: Vec<InstallRule>,
        outs: Vec<PacketOutCmd>,
    }

    fn hive_with_sinks() -> (Hive, Arc<Mutex<Captured>>) {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        let mut hive = Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        );
        hive.install(learning_switch_app());
        let cap = Arc::new(Mutex::new(Captured {
            rules: Vec::new(),
            outs: Vec::new(),
        }));
        let c1 = cap.clone();
        let c2 = cap.clone();
        hive.install(
            App::builder("sink")
                .handle::<InstallRule>(
                    |m| Mapped::cell("r", m.switch.to_string()),
                    move |m, _| {
                        c1.lock().rules.push(m.clone());
                        Ok(())
                    },
                )
                .handle::<PacketOutCmd>(
                    |m| Mapped::cell("r", m.switch.to_string()),
                    move |m, _| {
                        c2.lock().outs.push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        (hive, cap)
    }

    const A: [u8; 6] = [0xA; 6];
    const B: [u8; 6] = [0xB; 6];

    #[test]
    fn unknown_destination_floods() {
        let (mut hive, cap) = hive_with_sinks();
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 3,
            data: pkt(A, B),
        });
        hive.step_until_quiescent(1000);
        let c = cap.lock();
        assert!(c.rules.is_empty());
        assert_eq!(c.outs.len(), 1);
        assert_eq!(c.outs[0].out_port, OFPP_FLOOD);
    }

    #[test]
    fn learned_destination_installs_flow_and_forwards() {
        let (mut hive, cap) = hive_with_sinks();
        // A talks (learning A@3), then B replies (learning B@5, A known).
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 3,
            data: pkt(A, B),
        });
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 5,
            data: pkt(B, A),
        });
        hive.step_until_quiescent(1000);
        let c = cap.lock();
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.rules[0].out_port, 3, "A was learned on port 3");
        assert_eq!(c.outs.len(), 2);
        assert_eq!(c.outs[1].out_port, 3);
    }

    #[test]
    fn tables_are_per_switch() {
        let (mut hive, cap) = hive_with_sinks();
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 3,
            data: pkt(A, B),
        });
        // Switch 2 never saw A: must flood even though switch 1 knows A.
        hive.emit(PacketInEvent {
            switch: 2,
            in_port: 5,
            data: pkt(B, A),
        });
        hive.step_until_quiescent(1000);
        let c = cap.lock();
        assert!(c.rules.is_empty());
        assert_eq!(c.outs.len(), 2);
        assert!(c.outs.iter().all(|o| o.out_port == OFPP_FLOOD));
        assert_eq!(hive.local_bee_count(LEARNING_SWITCH_APP), 2);
    }

    #[test]
    fn short_packet_is_an_error() {
        let (mut hive, _cap) = hive_with_sinks();
        hive.emit(PacketInEvent {
            switch: 1,
            in_port: 1,
            data: vec![1, 2, 3],
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.counters().handler_errors, 1);
    }
}
