#![warn(missing_docs)]

//! `beehive-apps` — the control applications from the Beehive paper.
//!
//! * [`te`] — the running Traffic Engineering example (paper §2, Figure 2,
//!   §5): the **naive** variant whose `Route` maps whole dictionaries (and is
//!   therefore effectively centralized), and the **decoupled** variant that
//!   splits collection from routing via aggregated `MatrixUpdate` events.
//! * [`discovery`] — switch/link discovery feeding topology consumers.
//! * [`learning_switch`] — a Kandoo-style local application (per-switch L2
//!   learning).
//! * [`routing`] — distributed routing: per-prefix RIB cells plus a
//!   path-computation app (paper §4 "Routing").
//! * [`nib`] — an ONIX NIB emulation: a network graph whose nodes are cells
//!   (paper §4 "ONIX's NIB").
//! * [`vnet`] — NVP-style network virtualization sharded by virtual network
//!   (paper §4 "Network Virtualization").
//! * [`kandoo`] — the Kandoo two-tier emulation: local elephant detection,
//!   centralized rerouting (paper §4 "Kandoo").
//! * [`acl`] — a centralized policy application (paper §4 "Centralized
//!   Applications"): whole-dictionary mapping collocates the rule table on
//!   one bee.

pub mod acl;
pub mod discovery;
pub mod kandoo;
pub mod learning_switch;
pub mod nib;
pub mod routing;
pub mod te;
pub mod vnet;
