//! ONIX NIB emulation (paper §4): "NIB is basically an abstract graph that
//! represents networking elements and their interlinking. To process a
//! message in a NIB manager, we only need the state of a particular node.
//! As such, each node would be equivalent to a cell managed by a single
//! bee."

use std::collections::BTreeMap;

use beehive_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Name of the NIB app.
pub const NIB_APP: &str = "nib";

/// Kinds of network entities a NIB node can represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A switch.
    Switch,
    /// A port.
    Port,
    /// A host.
    Host,
    /// A link endpoint pair.
    Link,
}

/// Create or update a node's attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUpdate {
    /// Node id (unique across kinds).
    pub id: String,
    /// What the node is.
    pub kind: NodeKind,
    /// Attribute updates (merged into existing attributes).
    pub attrs: BTreeMap<String, String>,
}
impl_message!(NodeUpdate);

/// Delete a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDelete {
    /// Node id.
    pub id: String,
}
impl_message!(NodeDelete);

/// Add a directed edge `from → to`. Handled by `from`'s bee (the paper:
/// "adding an outgoing link … on a particular node will be handled by the
/// node's bee").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeAdd {
    /// Source node.
    pub from: String,
    /// Target node.
    pub to: String,
}
impl_message!(EdgeAdd);

/// Remove a directed edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeDel {
    /// Source node.
    pub from: String,
    /// Target node.
    pub to: String,
}
impl_message!(EdgeDel);

/// Query a node (attributes + outgoing edges).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeQuery {
    /// Node id.
    pub id: String,
}
impl_message!(NodeQuery);

/// Reply to [`NodeQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReply {
    /// Node id.
    pub id: String,
    /// The node, if it exists.
    pub node: Option<NibNode>,
}
impl_message!(NodeReply);

/// A stored NIB node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NibNode {
    /// Kind.
    pub kind: NodeKind,
    /// Attributes.
    pub attrs: BTreeMap<String, String>,
    /// Outgoing edges.
    pub out_edges: Vec<String>,
}

const NODES: &str = "nodes";

/// Builds the NIB app: one cell — one bee — per graph node.
pub fn nib_app() -> App {
    App::builder(NIB_APP)
        .handle_named::<NodeUpdate>(
            "Update",
            |m| Mapped::cell(NODES, &m.id),
            |m, ctx| {
                let mut node: NibNode = ctx
                    .get(NODES, &m.id)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(NibNode {
                        kind: m.kind,
                        attrs: BTreeMap::new(),
                        out_edges: vec![],
                    });
                node.kind = m.kind;
                node.attrs.extend(m.attrs.clone());
                ctx.put(NODES, m.id.clone(), &node)
                    .map_err(|e| e.to_string())
            },
        )
        .handle_named::<NodeDelete>(
            "Delete",
            |m| Mapped::cell(NODES, &m.id),
            |m, ctx| {
                ctx.del(NODES, &m.id);
                Ok(())
            },
        )
        .handle_named::<EdgeAdd>(
            "EdgeAdd",
            |m| Mapped::cell(NODES, &m.from),
            |m, ctx| {
                let Some(mut node) = ctx
                    .get::<NibNode>(NODES, &m.from)
                    .map_err(|e| e.to_string())?
                else {
                    return Err(format!("edge from unknown node {}", m.from));
                };
                if !node.out_edges.contains(&m.to) {
                    node.out_edges.push(m.to.clone());
                    node.out_edges.sort();
                    ctx.put(NODES, m.from.clone(), &node)
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            },
        )
        .handle_named::<EdgeDel>(
            "EdgeDel",
            |m| Mapped::cell(NODES, &m.from),
            |m, ctx| {
                if let Some(mut node) = ctx
                    .get::<NibNode>(NODES, &m.from)
                    .map_err(|e| e.to_string())?
                {
                    node.out_edges.retain(|e| e != &m.to);
                    ctx.put(NODES, m.from.clone(), &node)
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            },
        )
        .handle_named::<NodeQuery>(
            "Query",
            |m| Mapped::cell(NODES, &m.id),
            |m, ctx| {
                let node = ctx
                    .get::<NibNode>(NODES, &m.id)
                    .map_err(|e| e.to_string())?;
                ctx.emit(NodeReply {
                    id: m.id.clone(),
                    node,
                });
                Ok(())
            },
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    fn with_sink() -> (Hive, Arc<Mutex<Vec<NodeReply>>>) {
        let mut hive = standalone();
        hive.install(nib_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        hive.install(
            App::builder("sink")
                .handle::<NodeReply>(
                    |m| Mapped::cell("x", &m.id),
                    move |m, _| {
                        s.lock().push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        (hive, seen)
    }

    fn attrs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn update_and_query_node() {
        let (mut hive, seen) = with_sink();
        hive.emit(NodeUpdate {
            id: "sw1".into(),
            kind: NodeKind::Switch,
            attrs: attrs(&[("dpid", "1")]),
        });
        hive.emit(NodeUpdate {
            id: "sw1".into(),
            kind: NodeKind::Switch,
            attrs: attrs(&[("name", "edge-1")]),
        });
        hive.emit(NodeQuery { id: "sw1".into() });
        hive.step_until_quiescent(1000);
        let replies = seen.lock().clone();
        let node = replies[0].node.clone().unwrap();
        assert_eq!(node.attrs["dpid"], "1");
        assert_eq!(node.attrs["name"], "edge-1", "attrs merge across updates");
    }

    #[test]
    fn edges_live_on_the_source_node() {
        let (mut hive, seen) = with_sink();
        hive.emit(NodeUpdate {
            id: "sw1".into(),
            kind: NodeKind::Switch,
            attrs: attrs(&[]),
        });
        hive.emit(EdgeAdd {
            from: "sw1".into(),
            to: "sw2".into(),
        });
        hive.emit(EdgeAdd {
            from: "sw1".into(),
            to: "sw3".into(),
        });
        hive.emit(EdgeAdd {
            from: "sw1".into(),
            to: "sw2".into(),
        }); // dup
        hive.emit(NodeQuery { id: "sw1".into() });
        hive.step_until_quiescent(1000);
        let node = seen.lock()[0].node.clone().unwrap();
        assert_eq!(node.out_edges, vec!["sw2".to_string(), "sw3".to_string()]);
    }

    #[test]
    fn edge_to_unknown_source_errors() {
        let (mut hive, _seen) = with_sink();
        hive.emit(EdgeAdd {
            from: "ghost".into(),
            to: "sw2".into(),
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.counters().handler_errors, 1);
    }

    #[test]
    fn delete_then_query_returns_none() {
        let (mut hive, seen) = with_sink();
        hive.emit(NodeUpdate {
            id: "h1".into(),
            kind: NodeKind::Host,
            attrs: attrs(&[]),
        });
        hive.emit(NodeDelete { id: "h1".into() });
        hive.emit(NodeQuery { id: "h1".into() });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock()[0].node, None);
    }

    #[test]
    fn nodes_shard_one_bee_each() {
        let (mut hive, _seen) = with_sink();
        for i in 0..6 {
            hive.emit(NodeUpdate {
                id: format!("n{i}"),
                kind: NodeKind::Port,
                attrs: attrs(&[]),
            });
        }
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(NIB_APP), 6);
    }
}
