//! Distributed routing (paper §4): "a distributed routing application can be
//! easily defined in Beehive by storing the RIBs on a prefix basis …
//! resulting in fine-grain cells that can be automatically placed throughout
//! the platform to scale."
//!
//! Two cooperating apps:
//!
//! * [`rib_app`] — the RIB: one cell per destination prefix; handles
//!   announcements/withdrawals and answers queries. Fully distributable.
//! * [`path_app`] — shortest-path computation over the discovered topology
//!   (whole-dict by necessity — graph algorithms need the whole graph); on
//!   request it computes a path and *announces* the result into the RIB,
//!   keeping the hot query path distributed.

use std::collections::{BTreeMap, BinaryHeap};

use beehive_core::prelude::*;
use serde::{Deserialize, Serialize};

use crate::discovery::LinkDiscovered;

/// Name of the RIB app.
pub const RIB_APP: &str = "routing.rib";
/// Name of the path-computation app.
pub const PATH_APP: &str = "routing.paths";

/// Announce a route for a prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteAnnounce {
    /// Destination prefix, e.g. `"10.1.0.0/16"`. Any string key works — the
    /// RIB shards by it.
    pub prefix: String,
    /// Next hop (switch/router id).
    pub next_hop: u64,
    /// Path cost.
    pub metric: u32,
    /// Announcing origin (for withdrawal bookkeeping).
    pub origin: u64,
}
impl_message!(RouteAnnounce);

/// Withdraw an origin's route for a prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteWithdraw {
    /// The prefix.
    pub prefix: String,
    /// The origin whose route is withdrawn.
    pub origin: u64,
}
impl_message!(RouteWithdraw);

/// Query the best route for a prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteQuery {
    /// The prefix.
    pub prefix: String,
}
impl_message!(RouteQuery);

/// Reply to [`RouteQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteReply {
    /// The prefix.
    pub prefix: String,
    /// Best `(next_hop, metric)` if any route exists.
    pub best: Option<(u64, u32)>,
}
impl_message!(RouteReply);

/// Ask the path app for a shortest path; it announces the result into the
/// RIB under `prefix`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathRequest {
    /// Source switch.
    pub src: u64,
    /// Destination switch.
    pub dst: u64,
    /// RIB prefix to announce the result under.
    pub prefix: String,
}
impl_message!(PathRequest);

/// Emitted by the path app when a path was computed (also announced to RIB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathComputed {
    /// Source.
    pub src: u64,
    /// Destination.
    pub dst: u64,
    /// The hops, inclusive; empty when unreachable.
    pub path: Vec<u64>,
}
impl_message!(PathComputed);

const RIB: &str = "rib";
const TOPO: &str = "topo";

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RibEntry {
    /// origin → (next_hop, metric).
    routes: BTreeMap<u64, (u64, u32)>,
}

impl RibEntry {
    fn best(&self) -> Option<(u64, u32)> {
        self.routes.values().min_by_key(|(_, m)| *m).copied()
    }
}

/// Builds the per-prefix RIB app.
pub fn rib_app() -> App {
    App::builder(RIB_APP)
        .handle_named::<RouteAnnounce>(
            "Announce",
            |m| Mapped::cell(RIB, &m.prefix),
            |m, ctx| {
                let mut entry: RibEntry = ctx
                    .get(RIB, &m.prefix)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                entry.routes.insert(m.origin, (m.next_hop, m.metric));
                ctx.put(RIB, m.prefix.clone(), &entry)
                    .map_err(|e| e.to_string())
            },
        )
        .handle_named::<RouteWithdraw>(
            "Withdraw",
            |m| Mapped::cell(RIB, &m.prefix),
            |m, ctx| {
                let Some(mut entry) = ctx
                    .get::<RibEntry>(RIB, &m.prefix)
                    .map_err(|e| e.to_string())?
                else {
                    return Ok(());
                };
                entry.routes.remove(&m.origin);
                if entry.routes.is_empty() {
                    ctx.del(RIB, &m.prefix);
                    if ctx.keys(RIB).is_empty() {
                        // Last prefix of this colony withdrawn: garbage-
                        // collect the bee so fine-grained cells don't leak.
                        ctx.retire();
                    }
                } else {
                    ctx.put(RIB, m.prefix.clone(), &entry)
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            },
        )
        .handle_named::<RouteQuery>(
            "Query",
            |m| Mapped::cell(RIB, &m.prefix),
            |m, ctx| {
                let entry: RibEntry = ctx
                    .get(RIB, &m.prefix)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                ctx.emit(RouteReply {
                    prefix: m.prefix.clone(),
                    best: entry.best(),
                });
                Ok(())
            },
        )
        .build()
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Graph {
    /// src → [(dst, weight)]
    edges: BTreeMap<u64, Vec<(u64, u32)>>,
}

fn dijkstra(g: &Graph, src: u64, dst: u64) -> Option<Vec<u64>> {
    let mut dist: BTreeMap<u64, u32> = BTreeMap::new();
    let mut prev: BTreeMap<u64, u64> = BTreeMap::new();
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u64)>> = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, node))) = heap.pop() {
        if node == dst {
            let mut path = vec![dst];
            let mut at = dst;
            while let Some(&p) = prev.get(&at) {
                path.push(p);
                at = p;
            }
            path.reverse();
            return Some(path);
        }
        if dist.get(&node).is_some_and(|&best| d > best) {
            continue;
        }
        for &(next, w) in g.edges.get(&node).into_iter().flatten() {
            let nd = d + w;
            if dist.get(&next).is_none_or(|&best| nd < best) {
                dist.insert(next, nd);
                prev.insert(next, node);
                heap.push(std::cmp::Reverse((nd, next)));
            }
        }
    }
    None
}

/// Builds the path-computation app (centralized by design — it needs the
/// whole graph; keep the *hot* path in [`rib_app`]).
pub fn path_app() -> App {
    App::builder(PATH_APP)
        .handle_whole::<LinkDiscovered>("Topo", &[TOPO], |m, ctx| {
            let mut g: Graph = ctx
                .get(TOPO, "graph")
                .map_err(|e| e.to_string())?
                .unwrap_or_default();
            let edges = g.edges.entry(m.src).or_default();
            if !edges.contains(&(m.dst, 1)) {
                edges.push((m.dst, 1));
                edges.sort();
            }
            ctx.put(TOPO, "graph", &g).map_err(|e| e.to_string())
        })
        .handle_whole::<PathRequest>("Compute", &[TOPO], |m, ctx| {
            let g: Graph = ctx
                .get(TOPO, "graph")
                .map_err(|e| e.to_string())?
                .unwrap_or_default();
            let path = dijkstra(&g, m.src, m.dst).unwrap_or_default();
            if path.len() >= 2 {
                ctx.emit(RouteAnnounce {
                    prefix: m.prefix.clone(),
                    next_hop: path[1],
                    metric: (path.len() - 1) as u32,
                    origin: m.src,
                });
            }
            ctx.emit(PathComputed {
                src: m.src,
                dst: m.dst,
                path,
            });
            Ok(())
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    fn reply_sink(seen: Arc<Mutex<Vec<RouteReply>>>) -> App {
        App::builder("sink")
            .handle::<RouteReply>(
                |m| Mapped::cell("x", &m.prefix),
                move |m, _| {
                    seen.lock().push(m.clone());
                    Ok(())
                },
            )
            .build()
    }

    #[test]
    fn announce_then_query_returns_best_metric() {
        let mut hive = standalone();
        hive.install(rib_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(reply_sink(seen.clone()));
        hive.emit(RouteAnnounce {
            prefix: "10.0.0.0/8".into(),
            next_hop: 5,
            metric: 3,
            origin: 1,
        });
        hive.emit(RouteAnnounce {
            prefix: "10.0.0.0/8".into(),
            next_hop: 9,
            metric: 1,
            origin: 2,
        });
        hive.emit(RouteQuery {
            prefix: "10.0.0.0/8".into(),
        });
        hive.step_until_quiescent(1000);
        let replies = seen.lock().clone();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].best, Some((9, 1)));
    }

    #[test]
    fn withdraw_removes_origin_route() {
        let mut hive = standalone();
        hive.install(rib_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(reply_sink(seen.clone()));
        hive.emit(RouteAnnounce {
            prefix: "p".into(),
            next_hop: 5,
            metric: 1,
            origin: 1,
        });
        hive.emit(RouteAnnounce {
            prefix: "p".into(),
            next_hop: 9,
            metric: 2,
            origin: 2,
        });
        hive.emit(RouteWithdraw {
            prefix: "p".into(),
            origin: 1,
        });
        hive.emit(RouteQuery { prefix: "p".into() });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock()[0].best, Some((9, 2)));
    }

    #[test]
    fn unknown_prefix_replies_none() {
        let mut hive = standalone();
        hive.install(rib_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(reply_sink(seen.clone()));
        hive.emit(RouteQuery {
            prefix: "nope".into(),
        });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock()[0].best, None);
    }

    #[test]
    fn full_withdrawal_retires_the_bee() {
        let mut hive = standalone();
        hive.install(rib_app());
        hive.emit(RouteAnnounce {
            prefix: "gone".into(),
            next_hop: 1,
            metric: 1,
            origin: 1,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(RIB_APP), 1);
        hive.emit(RouteWithdraw {
            prefix: "gone".into(),
            origin: 1,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(
            hive.local_bee_count(RIB_APP),
            0,
            "empty colony garbage-collected"
        );
        assert!(hive
            .registry_view()
            .owner(RIB_APP, &beehive_core::Cell::new("rib", "gone"))
            .is_none());
        // The prefix can come back: a fresh announce re-creates a bee.
        hive.emit(RouteAnnounce {
            prefix: "gone".into(),
            next_hop: 2,
            metric: 2,
            origin: 1,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(RIB_APP), 1);
    }

    #[test]
    fn prefixes_shard_into_separate_bees() {
        let mut hive = standalone();
        hive.install(rib_app());
        for i in 0..8 {
            hive.emit(RouteAnnounce {
                prefix: format!("10.{i}.0.0/16"),
                next_hop: 1,
                metric: 1,
                origin: 1,
            });
        }
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(RIB_APP), 8);
    }

    #[test]
    fn path_computation_announces_into_rib() {
        let mut hive = standalone();
        hive.install(rib_app());
        hive.install(path_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(reply_sink(seen.clone()));
        // Line topology 1-2-3 (directed both ways).
        for (a, b) in [(1u64, 2u64), (2, 1), (2, 3), (3, 2)] {
            hive.emit(LinkDiscovered {
                src: a,
                src_port: 1,
                dst: b,
            });
        }
        hive.emit(PathRequest {
            src: 1,
            dst: 3,
            prefix: "dst3".into(),
        });
        hive.step_until_quiescent(1000); // let the announce land first
        hive.emit(RouteQuery {
            prefix: "dst3".into(),
        });
        hive.step_until_quiescent(1000);
        let replies = seen.lock().clone();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].best, Some((2, 2)), "next hop 2, metric 2");
    }

    #[test]
    fn unreachable_path_is_empty() {
        let mut hive = standalone();
        hive.install(path_app());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("pc-sink")
                .handle::<PathComputed>(
                    |m| Mapped::cell("x", m.src.to_string()),
                    move |m, _| {
                        seen2.lock().push(m.path.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(LinkDiscovered {
            src: 1,
            src_port: 1,
            dst: 2,
        });
        hive.emit(PathRequest {
            src: 1,
            dst: 99,
            prefix: "x".into(),
        });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock().clone(), vec![Vec::<u64>::new()]);
    }

    #[test]
    fn dijkstra_prefers_shorter_paths() {
        let mut g = Graph::default();
        // 1→2→4 (cost 2) vs 1→3→4 where 1→3 costs 5.
        g.edges.insert(1, vec![(2, 1), (3, 5)]);
        g.edges.insert(2, vec![(4, 1)]);
        g.edges.insert(3, vec![(4, 1)]);
        assert_eq!(dijkstra(&g, 1, 4), Some(vec![1, 2, 4]));
        assert_eq!(dijkstra(&g, 4, 1), None, "directed edges");
        assert_eq!(dijkstra(&g, 1, 1), Some(vec![1]));
    }
}
