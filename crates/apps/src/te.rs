//! Traffic Engineering — the paper's running example (Figure 2).
//!
//! Two designs of the same application:
//!
//! * [`naive_te_app`]: one app with functions `Init`, `Query`, `Collect`,
//!   `Route` sharing dictionary `S`, where `Route` maps **whole** `S` and
//!   `T`. The platform therefore collocates every cell of `S` on a single
//!   bee — the whole app is effectively centralized (paper §2: "our naive TE
//!   application cannot scale well"; Figure 4a/4d).
//! * [`decoupled_te_apps`]: `Route` is split into its own app with its own
//!   dictionaries, fed aggregated [`MatrixUpdate`] events by `Collect`
//!   (paper §5 "Decoupling Functions"; Figure 4b/4e). Collection now runs on
//!   per-switch cells, i.e. next to each switch's master hive.

use beehive_core::prelude::*;
use beehive_openflow::driver::{FlowStatQuery, InstallRule, StatReply, SwitchJoined};
use serde::{Deserialize, Serialize};

use crate::discovery::LinkDiscovered;

/// Name of the naive TE app.
pub const NAIVE_TE_APP: &str = "te";
/// Name of the decoupled collection app.
pub const TE_COLLECT_APP: &str = "te.collect";
/// Name of the decoupled routing app.
pub const TE_ROUTE_APP: &str = "te.route";

/// TE tunables.
#[derive(Debug, Clone, Copy)]
pub struct TeConfig {
    /// The re-routing threshold δ, in bytes/second: flows above it are
    /// re-steered.
    pub delta_bytes_per_sec: u64,
}

impl Default for TeConfig {
    fn default() -> Self {
        TeConfig {
            delta_bytes_per_sec: 50_000,
        }
    }
}

/// Aggregated flow-matrix event sent by decoupled `Collect` to `Route` when
/// a flow's measured rate crosses δ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixUpdate {
    /// The switch observing the flow.
    pub switch: u64,
    /// Flow source address.
    pub nw_src: u32,
    /// Flow destination address.
    pub nw_dst: u32,
    /// Estimated rate (B/s).
    pub rate: u64,
}
impl_message!(MatrixUpdate);

/// Per-switch flow statistics record stored in `S`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Last observed cumulative byte count per flow `(nw_src, nw_dst)`.
    pub last_bytes: std::collections::BTreeMap<(u32, u32), u64>,
    /// Last estimated rate per flow (B/s).
    pub rates: std::collections::BTreeMap<(u32, u32), u64>,
    /// Timestamp of the last stats reply (ms).
    pub last_reply_ms: u64,
    /// Whether a baseline reply has been recorded.
    pub primed: bool,
    /// Flows already re-routed (don't re-steer every second).
    pub rerouted: std::collections::BTreeSet<(u32, u32)>,
}

/// Updates a [`SwitchStats`] with a new reply; returns the flows whose rate
/// now exceeds δ and were not yet re-routed.
fn collect_into(
    stats: &mut SwitchStats,
    reply: &StatReply,
    now_ms: u64,
    delta: u64,
) -> Vec<(u32, u32, u64)> {
    let dt_ms = if !stats.primed {
        1000
    } else {
        now_ms.saturating_sub(stats.last_reply_ms).max(1)
    };
    let mut hot = Vec::new();
    for f in &reply.flows {
        let key = (f.nw_src, f.nw_dst);
        let last = stats.last_bytes.get(&key).copied().unwrap_or(0);
        let rate = if f.bytes >= last {
            (f.bytes - last) * 1000 / dt_ms
        } else {
            0
        };
        stats.last_bytes.insert(key, f.bytes);
        // First reply has no baseline: skip rate estimation to avoid
        // counting the entire lifetime as one interval.
        if !stats.primed {
            continue;
        }
        stats.rates.insert(key, rate);
        if rate > delta && !stats.rerouted.contains(&key) {
            stats.rerouted.insert(key);
            hot.push((f.nw_src, f.nw_dst, rate));
        }
    }
    stats.last_reply_ms = now_ms;
    stats.primed = true;
    hot
}

const S: &str = "S";
const T: &str = "T";
const M: &str = "M";

fn store_link(ctx: &mut RcvCtx<'_>, dict: &str, m: &LinkDiscovered) -> Result<(), String> {
    ctx.put(dict, format!("{}-{}", m.src, m.dst), m)
        .map_err(|e| e.to_string())
}

/// Builds the **naive** TE app of Figure 2. `Route` maps whole `S` and `T`;
/// the platform collapses all of `S` onto one bee.
pub fn naive_te_app(cfg: TeConfig) -> App {
    let delta = cfg.delta_bytes_per_sec;
    App::builder(NAIVE_TE_APP)
        // func Init — on SwitchJoined: with S[joined.switch].
        .handle_named::<SwitchJoined>(
            "Init",
            |m| Mapped::cell(S, m.dpid.to_string()),
            |m, ctx| {
                ctx.put(S, m.dpid.to_string(), &SwitchStats::default())
                    .map_err(|e| e.to_string())
            },
        )
        // func Query — on TimeOut: for each switch in S.
        .handle_broadcast::<Tick>("Query", |_t, ctx| {
            for key in ctx.keys(S) {
                if let Ok(switch) = key.parse::<u64>() {
                    ctx.emit(FlowStatQuery { switch });
                }
            }
            Ok(())
        })
        // func Collect — on StatReply: with S[reply.switch].
        .handle_named::<StatReply>(
            "Collect",
            |m| Mapped::cell(S, m.switch.to_string()),
            move |m, ctx| {
                let key = m.switch.to_string();
                let mut stats: SwitchStats = ctx
                    .get(S, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                let now = ctx.now_ms();
                // In the naive design Collect only records; Route scans S.
                let _ = collect_into(&mut stats, m, now, u64::MAX);
                ctx.put(S, key, &stats).map_err(|e| e.to_string())
            },
        )
        // func Route — on TimeOut: with S and T (WHOLE dictionaries).
        .handle_whole::<Tick>("Route", &[S, T], move |_t, ctx| {
            for key in ctx.keys(S) {
                let Some(mut stats) = ctx.get::<SwitchStats>(S, &key).map_err(|e| e.to_string())?
                else {
                    continue;
                };
                let Ok(switch) = key.parse::<u64>() else {
                    continue;
                };
                let hot: Vec<(u32, u32, u64)> = stats
                    .rates
                    .iter()
                    .filter(|(k, &r)| r > delta && !stats.rerouted.contains(k))
                    .map(|(&(s, d), &r)| (s, d, r))
                    .collect();
                if hot.is_empty() {
                    continue;
                }
                for (nw_src, nw_dst, _rate) in &hot {
                    stats.rerouted.insert((*nw_src, *nw_dst));
                    // Re-steer using T (alternate port 2; the decision logic
                    // is deliberately simple — the paper's point is *where*
                    // this function runs, not the routing algorithm).
                    ctx.emit(InstallRule {
                        switch,
                        match_: beehive_openflow::Match::nw_pair(*nw_src, *nw_dst),
                        priority: 10,
                        out_port: 2,
                    });
                }
                ctx.put(S, key, &stats).map_err(|e| e.to_string())?;
            }
            Ok(())
        })
        // Topology upkeep — also whole-T (Route reads T as a whole).
        .handle_whole::<LinkDiscovered>("Topo", &[T], |m, ctx| store_link(ctx, T, m))
        .build()
}

/// Builds the **decoupled** TE: `(collect_app, route_app)`. Collection is
/// per-switch; `Route` lives in its own app fed by [`MatrixUpdate`]s.
pub fn decoupled_te_apps(cfg: TeConfig) -> (App, App) {
    let delta = cfg.delta_bytes_per_sec;
    let collect = App::builder(TE_COLLECT_APP)
        .handle_named::<SwitchJoined>(
            "Init",
            |m| Mapped::cell(S, m.dpid.to_string()),
            |m, ctx| {
                ctx.put(S, m.dpid.to_string(), &SwitchStats::default())
                    .map_err(|e| e.to_string())
            },
        )
        .handle_broadcast::<Tick>("Query", |_t, ctx| {
            for key in ctx.keys(S) {
                if let Ok(switch) = key.parse::<u64>() {
                    ctx.emit(FlowStatQuery { switch });
                }
            }
            Ok(())
        })
        .handle_named::<StatReply>(
            "Collect",
            |m| Mapped::cell(S, m.switch.to_string()),
            move |m, ctx| {
                let key = m.switch.to_string();
                let mut stats: SwitchStats = ctx
                    .get(S, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                let now = ctx.now_ms();
                let hot = collect_into(&mut stats, m, now, delta);
                ctx.put(S, key, &stats).map_err(|e| e.to_string())?;
                // Aggregated events decouple Collect from Route: only flows
                // crossing δ travel to the (centralized) Route bee.
                for (nw_src, nw_dst, rate) in hot {
                    ctx.emit(MatrixUpdate {
                        switch: m.switch,
                        nw_src,
                        nw_dst,
                        rate,
                    });
                }
                Ok(())
            },
        )
        .build();

    let route = App::builder(TE_ROUTE_APP)
        .handle_whole::<MatrixUpdate>("Route", &[M, T], |m, ctx| {
            let key = format!("{}:{}:{}", m.switch, m.nw_src, m.nw_dst);
            let already: Option<u64> = ctx.get(M, &key).map_err(|e| e.to_string())?;
            if already.is_some() {
                return Ok(());
            }
            ctx.put(M, key, &m.rate).map_err(|e| e.to_string())?;
            ctx.emit(InstallRule {
                switch: m.switch,
                match_: beehive_openflow::Match::nw_pair(m.nw_src, m.nw_dst),
                priority: 10,
                out_port: 2,
            });
            Ok(())
        })
        .handle_whole::<LinkDiscovered>("Topo", &[T], |m, ctx| store_link(ctx, T, m))
        .build();

    (collect, route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::feedback::design_feedback;
    use beehive_openflow::driver::FlowStat;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0; // drive ticks manually
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    fn reply(switch: u64, flows: &[(u32, u32, u64)]) -> StatReply {
        StatReply {
            switch,
            flows: flows
                .iter()
                .map(|&(s, d, b)| FlowStat {
                    nw_src: s,
                    nw_dst: d,
                    packets: b / 1000,
                    bytes: b,
                    duration_sec: 1,
                })
                .collect(),
        }
    }

    /// Captures InstallRule commands so tests can observe re-routing.
    fn rule_sink(seen: Arc<Mutex<Vec<InstallRule>>>) -> App {
        App::builder("rule-sink")
            .handle::<InstallRule>(
                |m| Mapped::cell("r", m.switch.to_string()),
                move |m, _| {
                    seen.lock().push(m.clone());
                    Ok(())
                },
            )
            .build()
    }

    #[test]
    fn naive_te_is_flagged_centralized_by_design_feedback() {
        let app = naive_te_app(TeConfig::default());
        let report = design_feedback(&app);
        assert!(report.is_centralized());
        let text = report.to_string();
        assert!(
            text.contains("Route"),
            "feedback should name the culprit: {text}"
        );
    }

    #[test]
    fn decoupled_collect_is_not_centralized() {
        let (collect, route) = decoupled_te_apps(TeConfig::default());
        assert!(!design_feedback(&collect).is_centralized());
        // Route is still centralized — but it's an isolated, low-rate app.
        assert!(design_feedback(&route).is_centralized());
    }

    #[test]
    fn naive_te_collapses_all_switches_to_one_bee() {
        let mut hive = standalone();
        hive.install(naive_te_app(TeConfig::default()));
        for sw in 1..=5u64 {
            hive.emit(SwitchJoined {
                dpid: sw,
                n_ports: 4,
            });
        }
        hive.step_until_quiescent(1000);
        assert_eq!(
            hive.local_bee_count(NAIVE_TE_APP),
            1,
            "monolithic S ⇒ one bee"
        );
    }

    #[test]
    fn decoupled_te_creates_per_switch_bees() {
        let mut hive = standalone();
        let (collect, route) = decoupled_te_apps(TeConfig::default());
        hive.install(collect);
        hive.install(route);
        for sw in 1..=5u64 {
            hive.emit(SwitchJoined {
                dpid: sw,
                n_ports: 4,
            });
        }
        hive.step_until_quiescent(1000);
        assert_eq!(hive.local_bee_count(TE_COLLECT_APP), 5);
    }

    #[test]
    fn query_fires_for_every_known_switch() {
        let mut hive = standalone();
        hive.install(naive_te_app(TeConfig::default()));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("query-sink")
                .handle::<FlowStatQuery>(
                    |m| Mapped::cell("q", m.switch.to_string()),
                    move |m, _| {
                        seen2.lock().push(m.switch);
                        Ok(())
                    },
                )
                .build(),
        );
        for sw in 1..=3u64 {
            hive.emit(SwitchJoined {
                dpid: sw,
                n_ports: 4,
            });
        }
        hive.step_until_quiescent(1000);
        hive.emit(Tick {
            seq: 1,
            now_ms: 1000,
        });
        hive.step_until_quiescent(1000);
        let mut switches = seen.lock().clone();
        switches.sort();
        assert_eq!(switches, vec![1, 2, 3]);
    }

    #[test]
    fn decoupled_collect_emits_matrix_update_only_above_delta() {
        // Virtual time so rate estimation sees real 1-second intervals.
        let clock = SimClock::new();
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        let mut hive = Hive::new(
            cfg,
            Arc::new(clock.clone()),
            Box::new(Loopback::new(HiveId(1))),
        );
        let (collect, _route) = decoupled_te_apps(TeConfig {
            delta_bytes_per_sec: 1000,
        });
        hive.install(collect);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        hive.install(
            App::builder("mu-sink")
                .handle::<MatrixUpdate>(
                    |m| Mapped::cell("m", m.switch.to_string()),
                    move |m, _| {
                        seen2.lock().push((m.nw_src, m.rate));
                        Ok(())
                    },
                )
                .build(),
        );
        hive.emit(SwitchJoined {
            dpid: 1,
            n_ports: 4,
        });
        hive.step_until_quiescent(1000);
        // First reply: baseline only. Second: rates computed over delta.
        hive.emit(reply(1, &[(100, 200, 0), (101, 201, 0)]));
        hive.step_until_quiescent(1000);
        clock.advance(1000);
        // +5000B/s for flow A (elephant), +100B/s for flow B (mouse).
        hive.emit(reply(1, &[(100, 200, 5_000), (101, 201, 100)]));
        hive.step_until_quiescent(1000);
        let updates = seen.lock().clone();
        assert_eq!(updates.len(), 1, "only the elephant crosses δ: {updates:?}");
        assert_eq!(updates[0].0, 100);
    }

    #[test]
    fn route_installs_rule_once_per_flow() {
        let mut hive = standalone();
        let (_collect, route) = decoupled_te_apps(TeConfig::default());
        hive.install(route);
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(rule_sink(seen.clone()));
        let mu = MatrixUpdate {
            switch: 3,
            nw_src: 1,
            nw_dst: 2,
            rate: 99_999,
        };
        hive.emit(mu.clone());
        hive.emit(mu.clone());
        hive.step_until_quiescent(1000);
        let rules = seen.lock().clone();
        assert_eq!(rules.len(), 1, "idempotent re-routing");
        assert_eq!(rules[0].switch, 3);
        assert_eq!(rules[0].priority, 10);
    }

    #[test]
    fn naive_route_reroutes_hot_flows_end_to_end() {
        let mut hive = standalone();
        hive.install(naive_te_app(TeConfig {
            delta_bytes_per_sec: 1000,
        }));
        let seen = Arc::new(Mutex::new(Vec::new()));
        hive.install(rule_sink(seen.clone()));

        hive.emit(SwitchJoined {
            dpid: 7,
            n_ports: 4,
        });
        hive.step_until_quiescent(1000);
        hive.emit(reply(7, &[(10, 20, 0)]));
        hive.step_until_quiescent(1000);
        hive.emit(reply(7, &[(10, 20, 500_000)]));
        hive.step_until_quiescent(1000);
        // Route runs on the next tick.
        hive.emit(Tick {
            seq: 2,
            now_ms: 2000,
        });
        hive.step_until_quiescent(1000);
        let rules = seen.lock().clone();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].switch, 7);
        // And doesn't re-fire next tick.
        hive.emit(Tick {
            seq: 3,
            now_ms: 3000,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(seen.lock().len(), 1);
    }

    #[test]
    fn rate_estimation_uses_elapsed_time() {
        let mut stats = SwitchStats::default();
        // Baseline at t=1000.
        collect_into(&mut stats, &reply(1, &[(1, 2, 1000)]), 1000, 500);
        // +4000 bytes over 2 seconds = 2000 B/s.
        let hot = collect_into(&mut stats, &reply(1, &[(1, 2, 5000)]), 3000, 500);
        assert_eq!(stats.rates[&(1, 2)], 2000);
        assert_eq!(hot.len(), 1);
        // Counter reset (switch reboot) doesn't underflow.
        let hot = collect_into(&mut stats, &reply(1, &[(1, 2, 100)]), 4000, 500);
        assert!(hot.is_empty());
        assert_eq!(stats.rates[&(1, 2)], 0);
    }
}
