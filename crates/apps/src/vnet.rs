//! NVP-style network virtualization (paper §4): "network virtualization
//! applications … process messages of each virtual network independently …
//! basically sharding messages based on virtual networks, with minimal
//! shared state in between the shards. Each shard basically forms a set of
//! collocated cells in Beehive and the platform guarantees that messages of
//! the same virtual network are handled by the same bee."

use std::collections::BTreeMap;

use beehive_core::prelude::*;
use beehive_openflow::driver::InstallRule;
use serde::{Deserialize, Serialize};

/// Name of the virtualization app.
pub const VNET_APP: &str = "vnet";

/// Create a virtual network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateVnet {
    /// Virtual network id.
    pub vnet: u64,
    /// Tenant name.
    pub tenant: String,
}
impl_message!(CreateVnet);

/// Attach a (switch, port, MAC) endpoint to a virtual network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttachPort {
    /// Virtual network id.
    pub vnet: u64,
    /// Physical switch.
    pub switch: u64,
    /// Physical port.
    pub port: u16,
    /// Endpoint MAC.
    pub mac: [u8; 6],
}
impl_message!(AttachPort);

/// Detach an endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetachPort {
    /// Virtual network id.
    pub vnet: u64,
    /// Endpoint MAC.
    pub mac: [u8; 6],
}
impl_message!(DetachPort);

/// A packet event inside a virtual network (post-classification).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VnetPacket {
    /// Virtual network id.
    pub vnet: u64,
    /// Observing switch.
    pub switch: u64,
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Destination MAC.
    pub dst_mac: [u8; 6],
}
impl_message!(VnetPacket);

/// Emitted when the app resolves a cross-switch destination: the physical
/// fabric must tunnel `vnet` traffic from `src_switch` to `dst_switch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunnelSetup {
    /// Virtual network id.
    pub vnet: u64,
    /// Tunnel source switch.
    pub src_switch: u64,
    /// Tunnel destination switch.
    pub dst_switch: u64,
}
impl_message!(TunnelSetup);

const VNETS: &str = "vnets";

/// Stored per-vnet record.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VnetRecord {
    /// Tenant name.
    pub tenant: String,
    /// Whether the vnet exists.
    pub created: bool,
    /// MAC → (switch, port).
    pub endpoints: BTreeMap<[u8; 6], (u64, u16)>,
    /// Established tunnels (src, dst).
    pub tunnels: Vec<(u64, u64)>,
}

/// Builds the network virtualization app: all state of one virtual network
/// forms one shard (cell `vnets[vnet]`).
pub fn vnet_app() -> App {
    App::builder(VNET_APP)
        .handle_named::<CreateVnet>(
            "Create",
            |m| Mapped::cell(VNETS, m.vnet.to_string()),
            |m, ctx| {
                let key = m.vnet.to_string();
                let mut rec: VnetRecord = ctx
                    .get(VNETS, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                rec.created = true;
                rec.tenant = m.tenant.clone();
                ctx.put(VNETS, key, &rec).map_err(|e| e.to_string())
            },
        )
        .handle_named::<AttachPort>(
            "Attach",
            |m| Mapped::cell(VNETS, m.vnet.to_string()),
            |m, ctx| {
                let key = m.vnet.to_string();
                let mut rec: VnetRecord = ctx
                    .get(VNETS, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                if !rec.created {
                    return Err(format!("vnet {} does not exist", m.vnet));
                }
                rec.endpoints.insert(m.mac, (m.switch, m.port));
                ctx.put(VNETS, key, &rec).map_err(|e| e.to_string())
            },
        )
        .handle_named::<DetachPort>(
            "Detach",
            |m| Mapped::cell(VNETS, m.vnet.to_string()),
            |m, ctx| {
                let key = m.vnet.to_string();
                if let Some(mut rec) = ctx
                    .get::<VnetRecord>(VNETS, &key)
                    .map_err(|e| e.to_string())?
                {
                    rec.endpoints.remove(&m.mac);
                    ctx.put(VNETS, key, &rec).map_err(|e| e.to_string())?;
                }
                Ok(())
            },
        )
        .handle_named::<Packet>(
            "Packet",
            |m| Mapped::cell(VNETS, m.vnet.to_string()),
            |m, ctx| {
                let key = m.vnet.to_string();
                let mut rec: VnetRecord = ctx
                    .get(VNETS, &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                if !rec.created {
                    return Err(format!("packet for unknown vnet {}", m.vnet));
                }
                let Some(&(dst_switch, dst_port)) = rec.endpoints.get(&m.dst_mac) else {
                    // Unknown destination inside the vnet: ignore (a real
                    // NVP would flood within the vnet).
                    return Ok(());
                };
                if dst_switch == m.switch {
                    // Same switch: program a local rule.
                    ctx.emit(InstallRule {
                        switch: m.switch,
                        match_: beehive_openflow::Match::dl_dst_exact(m.dst_mac),
                        priority: 20,
                        out_port: dst_port,
                    });
                } else if !rec.tunnels.contains(&(m.switch, dst_switch)) {
                    rec.tunnels.push((m.switch, dst_switch));
                    ctx.put(VNETS, key, &rec).map_err(|e| e.to_string())?;
                    ctx.emit(TunnelSetup {
                        vnet: m.vnet,
                        src_switch: m.switch,
                        dst_switch,
                    });
                }
                Ok(())
            },
        )
        .build()
}

use VnetPacket as Packet;

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    const MAC_A: [u8; 6] = [0xA; 6];
    const MAC_B: [u8; 6] = [0xB; 6];

    fn standalone() -> Hive {
        let mut cfg = HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        )
    }

    struct Sunk {
        rules: Vec<InstallRule>,
        tunnels: Vec<TunnelSetup>,
    }

    fn with_sinks() -> (Hive, Arc<Mutex<Sunk>>) {
        let mut hive = standalone();
        hive.install(vnet_app());
        let cap = Arc::new(Mutex::new(Sunk {
            rules: vec![],
            tunnels: vec![],
        }));
        let (c1, c2) = (cap.clone(), cap.clone());
        hive.install(
            App::builder("sink")
                .handle::<InstallRule>(
                    |m| Mapped::cell("x", m.switch.to_string()),
                    move |m, _| {
                        c1.lock().rules.push(m.clone());
                        Ok(())
                    },
                )
                .handle::<TunnelSetup>(
                    |m| Mapped::cell("x", m.vnet.to_string()),
                    move |m, _| {
                        c2.lock().tunnels.push(m.clone());
                        Ok(())
                    },
                )
                .build(),
        );
        (hive, cap)
    }

    #[test]
    fn same_switch_traffic_installs_local_rule() {
        let (mut hive, cap) = with_sinks();
        hive.emit(CreateVnet {
            vnet: 1,
            tenant: "acme".into(),
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 1,
            mac: MAC_A,
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 2,
            mac: MAC_B,
        });
        hive.emit(VnetPacket {
            vnet: 1,
            switch: 5,
            src_mac: MAC_A,
            dst_mac: MAC_B,
        });
        hive.step_until_quiescent(1000);
        let c = cap.lock();
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.rules[0].out_port, 2);
        assert!(c.tunnels.is_empty());
    }

    #[test]
    fn cross_switch_traffic_sets_up_tunnel_once() {
        let (mut hive, cap) = with_sinks();
        hive.emit(CreateVnet {
            vnet: 1,
            tenant: "acme".into(),
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 1,
            mac: MAC_A,
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 9,
            port: 2,
            mac: MAC_B,
        });
        let pkt = VnetPacket {
            vnet: 1,
            switch: 5,
            src_mac: MAC_A,
            dst_mac: MAC_B,
        };
        hive.emit(pkt.clone());
        hive.emit(pkt);
        hive.step_until_quiescent(1000);
        let c = cap.lock();
        assert_eq!(c.tunnels.len(), 1, "tunnel established once");
        assert_eq!(c.tunnels[0].dst_switch, 9);
    }

    #[test]
    fn vnets_are_isolated_shards() {
        let (mut hive, cap) = with_sinks();
        hive.emit(CreateVnet {
            vnet: 1,
            tenant: "a".into(),
        });
        hive.emit(CreateVnet {
            vnet: 2,
            tenant: "b".into(),
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 1,
            mac: MAC_A,
        });
        // MAC_A is attached in vnet 1 only: a vnet-2 packet to it is dropped.
        hive.emit(VnetPacket {
            vnet: 2,
            switch: 5,
            src_mac: MAC_B,
            dst_mac: MAC_A,
        });
        hive.step_until_quiescent(1000);
        assert!(cap.lock().rules.is_empty());
        assert_eq!(
            hive.local_bee_count(VNET_APP),
            2,
            "one shard (bee) per vnet"
        );
    }

    #[test]
    fn attach_to_missing_vnet_errors() {
        let (mut hive, _cap) = with_sinks();
        hive.emit(AttachPort {
            vnet: 9,
            switch: 1,
            port: 1,
            mac: MAC_A,
        });
        hive.step_until_quiescent(1000);
        assert_eq!(hive.counters().handler_errors, 1);
    }

    #[test]
    fn detach_stops_resolution() {
        let (mut hive, cap) = with_sinks();
        hive.emit(CreateVnet {
            vnet: 1,
            tenant: "a".into(),
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 1,
            mac: MAC_A,
        });
        hive.emit(AttachPort {
            vnet: 1,
            switch: 5,
            port: 2,
            mac: MAC_B,
        });
        hive.emit(DetachPort {
            vnet: 1,
            mac: MAC_B,
        });
        hive.emit(VnetPacket {
            vnet: 1,
            switch: 5,
            src_mac: MAC_A,
            dst_mac: MAC_B,
        });
        hive.step_until_quiescent(1000);
        assert!(cap.lock().rules.is_empty());
    }
}
