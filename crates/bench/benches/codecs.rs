//! Codec benchmarks: the beehive-wire serde format and the OpenFlow 1.0
//! codec — both sit on every inter-hive / controller-switch byte.

use beehive_openflow::{Action, FlowStatsEntry, Match, OfMessage};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Payload {
    id: u64,
    name: String,
    values: Vec<u64>,
    tags: Vec<(String, String)>,
}

fn payload(n: usize) -> Payload {
    Payload {
        id: 42,
        name: "beehive-message".into(),
        values: (0..n as u64).collect(),
        tags: (0..4)
            .map(|i| (format!("key{i}"), format!("value{i}")))
            .collect(),
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for n in [8usize, 128, 2048] {
        let p = payload(n);
        let encoded = beehive_wire::to_vec(&p).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &p, |b, p| {
            b.iter(|| criterion::black_box(beehive_wire::to_vec(p).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, bytes| {
            b.iter(|| criterion::black_box(beehive_wire::from_slice::<Payload>(bytes).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("encoded_len", n), &p, |b, p| {
            b.iter(|| criterion::black_box(beehive_wire::encoded_len(p).unwrap()));
        });
    }
    group.finish();
}

fn stats_reply(flows: usize) -> OfMessage {
    OfMessage::FlowStatsReply {
        xid: 1,
        flows: (0..flows)
            .map(|i| FlowStatsEntry {
                table_id: 0,
                match_: Match::nw_pair(i as u32, (i + 1) as u32),
                duration_sec: 10,
                priority: 1,
                cookie: i as u64,
                packet_count: 1000 + i as u64,
                byte_count: 64_000 + i as u64,
                actions: vec![Action::Output {
                    port: 1,
                    max_len: 0,
                }],
            })
            .collect(),
    }
}

fn bench_openflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("openflow");
    // The dominant message of the TE evaluation: a 100-flow stats reply.
    for flows in [1usize, 100] {
        let msg = stats_reply(flows);
        let encoded = msg.encode();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("stats_encode", flows), &msg, |b, m| {
            b.iter(|| criterion::black_box(m.encode()));
        });
        group.bench_with_input(
            BenchmarkId::new("stats_decode", flows),
            &encoded,
            |b, bytes| {
                b.iter(|| criterion::black_box(OfMessage::decode(bytes).unwrap()));
            },
        );
    }
    group.bench_function("flow_mod_roundtrip", |b| {
        let m = OfMessage::FlowMod {
            xid: 7,
            match_: Match::dl_dst_exact([1, 2, 3, 4, 5, 6]),
            cookie: 9,
            command: beehive_openflow::FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 10,
            actions: vec![Action::Output {
                port: 3,
                max_len: 0,
            }],
        };
        b.iter(|| {
            let bytes = m.encode();
            criterion::black_box(OfMessage::decode(&bytes).unwrap())
        });
    });
    group.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("openflow/table");
    for flows in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("lookup", flows), &flows, |b, &flows| {
            let mut sw = beehive_openflow::SwitchModel::new(1, 4);
            for i in 0..flows {
                sw.handle(OfMessage::FlowMod {
                    xid: 0,
                    match_: Match::nw_pair(i as u32, i as u32),
                    cookie: 0,
                    command: beehive_openflow::FlowModCommand::Add,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    priority: 1,
                    actions: vec![Action::Output {
                        port: 1,
                        max_len: 0,
                    }],
                });
            }
            // Worst case: match the lowest-priority (last) flow.
            let target = Match {
                wildcards: 0,
                nw_src: (flows - 1) as u32,
                nw_dst: (flows - 1) as u32,
                dl_type: 0,
                ..Default::default()
            };
            b.iter(|| criterion::black_box(sw.account_traffic(&target, 1, 64)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_openflow, bench_flow_table);
criterion_main!(benches);
