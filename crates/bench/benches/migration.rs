//! Live-migration latency vs colony/state size (an ablation for DESIGN.md's
//! "migration = stop → snapshot → ship → reinstall → drain" design): how
//! much virtual protocol work and real CPU a migration costs as the bee's
//! state grows.

use beehive_core::prelude::*;
use beehive_sim::{ClusterConfig, SimCluster};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Put {
    key: String,
    field: String,
    value: Vec<u8>,
}
beehive_core::impl_message!(Put);

fn kv_app() -> App {
    App::builder("kv")
        .handle::<Put>(
            |m| Mapped::cell("data", &m.key),
            |m, ctx| {
                ctx.put("data", format!("{}:{}", m.key, m.field), &m.value)
                    .map_err(|e| e.to_string())
            },
        )
        .build()
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("migration");
    group.sample_size(10);
    for entries in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("roundtrip_entries", entries),
            &entries,
            |b, &entries| {
                // One cluster per iteration batch; migrate back and forth.
                let mut cluster = SimCluster::new(
                    ClusterConfig {
                        hives: 2,
                        voters: 2,
                        ..Default::default()
                    },
                    |h| h.install(kv_app()),
                );
                cluster.elect_registry(120_000).unwrap();
                for i in 0..entries {
                    cluster.hive_mut(HiveId(1)).emit(Put {
                        key: "big".into(),
                        field: format!("f{i}"),
                        value: vec![0xAB; 64],
                    });
                }
                cluster.advance(5_000, 50);
                let cell = beehive_core::Cell::new("data", "big");
                let bee = cluster
                    .hive(HiveId(1))
                    .registry_view()
                    .owner("kv", &cell)
                    .unwrap();

                let mut at_one = true;
                b.iter(|| {
                    let (from, to) = if at_one {
                        (HiveId(1), HiveId(2))
                    } else {
                        (HiveId(2), HiveId(1))
                    };
                    at_one = !at_one;
                    cluster
                        .hive_mut(from)
                        .request_migration("kv", bee, from, to);
                    // Drive virtual time until the move committed and landed.
                    let mut guard = 0;
                    while cluster.hive(to).registry_view().hive_of(bee) != Some(to) && guard < 200 {
                        cluster.advance(100, 50);
                        guard += 1;
                    }
                    assert!(guard < 200, "migration did not complete");
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
