//! Parallel executor throughput: messages/second versus worker count, on a
//! disjoint-cell workload (every key its own colony — embarrassingly
//! parallel, the paper's motivating case) and an overlapping-cell workload
//! (every message also touches one shared hot cell, forcing a single colony
//! — the executor degrades to sequential plus round overhead).
//!
//! Besides the criterion groups, the bench writes a hand-rolled JSON summary
//! to `BENCH_parallel.json` at the repo root so CI can track the perf
//! trajectory across PRs (see `src/bin/bench-diff.rs` and the bench-gate CI
//! job); the `speedup_disjoint_w4` field is the headline number (expected
//! ≥ 2 on a 4-core machine). Setting `BEEHIVE_BENCH_SUMMARY_ONLY=1` skips
//! criterion and only produces the summary — CI quick mode.

use std::sync::Arc;
use std::time::Instant;

use beehive_core::prelude::*;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

/// Per-message handler CPU work (wrapping multiplies). Large enough that a
/// batch dominates checkout/check-in overhead, small enough to keep the
/// bench quick: ~a few microseconds per message.
const SPIN: u64 = 2_000;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Work {
    key: String,
    /// When set, the message also maps the shared hot cell, collapsing all
    /// traffic into one colony (worst case for the parallel executor).
    shared: bool,
}
beehive_core::impl_message!(Work);

fn spin(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..SPIN {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn work_app() -> App {
    App::builder("work")
        .handle::<Work>(
            |m| {
                if m.shared {
                    Mapped::cells([Cell::new("c", &m.key), Cell::new("c", "hot")])
                } else {
                    Mapped::cell("c", &m.key)
                }
            },
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                std::hint::black_box(spin(n + 1));
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn hive_with(workers: usize) -> Hive {
    let mut cfg = beehive_core::HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.workers = workers;
    let mut hive = Hive::new(
        cfg,
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(work_app());
    hive
}

/// Messages/second for `msgs` messages spread over `keys` keys.
fn throughput(workers: usize, keys: usize, msgs: usize, shared: bool) -> f64 {
    let mut hive = hive_with(workers);
    // Pre-create the bees so we measure steady-state execution, not
    // registry-proposal routing.
    for k in 0..keys {
        hive.emit(Work {
            key: format!("k{k}"),
            shared,
        });
    }
    if shared {
        hive.emit(Work {
            key: "hot".to_string(),
            shared: true,
        });
    }
    hive.step_until_quiescent(1_000_000);

    let started = Instant::now();
    for i in 0..msgs {
        hive.emit(Work {
            key: format!("k{}", i % keys),
            shared,
        });
    }
    hive.step_until_quiescent(10_000_000);
    let secs = started.elapsed().as_secs_f64();
    msgs as f64 / secs.max(1e-9)
}

fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    const KEYS: usize = 64;
    const MSGS: usize = 2_000;
    for &workers in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements(MSGS as u64));
        group.bench_with_input(
            BenchmarkId::new("disjoint", workers),
            &workers,
            |b, &workers| {
                b.iter(|| criterion::black_box(throughput(workers, KEYS, MSGS, false)));
            },
        );
    }
    for &workers in &[1usize, 4] {
        group.throughput(Throughput::Elements(MSGS as u64));
        group.bench_with_input(
            BenchmarkId::new("overlapping", workers),
            &workers,
            |b, &workers| {
                b.iter(|| criterion::black_box(throughput(workers, KEYS, MSGS, true)));
            },
        );
    }
    group.finish();
}

/// Hand-rolled JSON (the workspace's wire format is a custom binary serde;
/// no JSON crate is available).
fn json_summary() -> String {
    const KEYS: usize = 64;
    const MSGS: usize = 20_000;
    let d1 = throughput(1, KEYS, MSGS, false);
    let d2 = throughput(2, KEYS, MSGS, false);
    let d4 = throughput(4, KEYS, MSGS, false);
    let o1 = throughput(1, KEYS, MSGS, true);
    let o4 = throughput(4, KEYS, MSGS, true);
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel\",\n",
            "  \"provisional\": false,\n",
            "  \"keys\": {},\n",
            "  \"messages\": {},\n",
            "  \"spin_per_msg\": {},\n",
            "  \"disjoint_msgs_per_sec\": {{ \"w1\": {:.0}, \"w2\": {:.0}, \"w4\": {:.0} }},\n",
            "  \"overlapping_msgs_per_sec\": {{ \"w1\": {:.0}, \"w4\": {:.0} }},\n",
            "  \"speedup_disjoint_w4\": {:.3},\n",
            "  \"speedup_overlapping_w4\": {:.3}\n",
            "}}\n"
        ),
        KEYS,
        MSGS,
        SPIN,
        d1,
        d2,
        d4,
        o1,
        o4,
        d4 / d1.max(1e-9),
        o4 / o1.max(1e-9),
    )
}

fn write_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let json = json_summary();
    print!("{json}");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_workers);

fn main() {
    // `cargo test` runs benches with `--test`; keep that (and `--list`)
    // fast by skipping both criterion and the summary measurement.
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--list");
    if quick {
        // Smoke: one tiny measurement proves the executor path works.
        let tput = throughput(2, 8, 64, false);
        assert!(tput > 0.0);
        println!("parallel bench smoke ok ({tput:.0} msgs/s)");
        return;
    }
    // CI quick mode: only the JSON summary, no criterion sampling.
    if std::env::var_os("BEEHIVE_BENCH_SUMMARY_ONLY").is_some() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
