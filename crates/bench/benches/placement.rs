//! Placement-optimizer ablation: the greedy heuristic's cost as the number
//! of bees grows (the paper argues optimal placement is NP-hard; the greedy
//! pass must stay cheap enough to run every few seconds on aggregated data).

use std::collections::BTreeMap;

use beehive_core::optimizer::{plan_migrations, BeeLoad, OptimizerConfig};
use beehive_core::{BeeId, HiveId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn loads(bees: usize, hives: u32) -> Vec<BeeLoad> {
    (0..bees)
        .map(|i| {
            let current = (i as u32 % hives) + 1;
            let dominant = ((i as u32 + 1) % hives) + 1;
            let mut in_by_hive = BTreeMap::new();
            in_by_hive.insert(dominant, 90u64);
            in_by_hive.insert(current, 10u64);
            BeeLoad {
                app: format!("app{}", i % 8),
                bee: BeeId::new(HiveId(current), i as u32),
                hive: HiveId(current),
                pinned: i % 16 == 0,
                cells: 1 + (i % 50) as u64,
                in_by_hive,
                p99_runtime_us: (i as u64 % 7) * 1_000,
            }
        })
        .collect()
}

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/plan");
    for bees in [100usize, 1_000, 10_000] {
        let l = loads(bees, 40);
        let occupancy: BTreeMap<u32, usize> = (1..=40u32).map(|h| (h, bees / 40)).collect();
        group.throughput(Throughput::Elements(bees as u64));
        group.bench_with_input(BenchmarkId::new("bees", bees), &l, |b, l| {
            let cfg = OptimizerConfig::default();
            b.iter(|| criterion::black_box(plan_migrations(l, &occupancy, &cfg)));
        });
        // Ablation: with capacity limits the plan must track occupancy.
        group.bench_with_input(BenchmarkId::new("bees_capped", bees), &l, |b, l| {
            let cfg = OptimizerConfig {
                max_bees_per_hive: Some(bees / 40 + 5),
                ..Default::default()
            };
            b.iter(|| criterion::black_box(plan_migrations(l, &occupancy, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
