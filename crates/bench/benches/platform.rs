//! Microbenchmarks of the platform's hot paths: message dispatch + mapping +
//! rcv on the local fast path, state dictionary/transaction operations, and
//! the queen's routing table.

use std::sync::Arc;

use beehive_core::prelude::*;
use beehive_core::state::{BeeState, TxState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Bump {
    key: String,
}
beehive_core::impl_message!(Bump);

fn counter_app() -> App {
    App::builder("counter")
        .handle::<Bump>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn standalone_hive() -> Hive {
    let mut cfg = beehive_core::HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    let mut hive = Hive::new(
        cfg,
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(counter_app());
    hive
}

/// End-to-end local message cost: emit → map → route (fast path) → rcv with
/// a read-modify-write transaction.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    for keys in [1usize, 64, 1024] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("local_rmw", keys), &keys, |b, &keys| {
            let mut hive = standalone_hive();
            // Pre-create the bees so we measure the fast path.
            for k in 0..keys {
                hive.emit(Bump {
                    key: format!("k{k}"),
                });
            }
            hive.step_until_quiescent(1_000_000);
            let mut i = 0usize;
            b.iter(|| {
                hive.emit(Bump {
                    key: format!("k{}", i % keys),
                });
                i += 1;
                hive.step_until_quiescent(1_000);
            });
        });
    }
    group.finish();
}

/// Cold-path cost: the first message for a key (registry proposal + bee
/// creation) vs the steady path.
fn bench_bee_creation(c: &mut Criterion) {
    c.bench_function("dispatch/create_bee", |b| {
        let mut hive = standalone_hive();
        let mut i = 0u64;
        b.iter(|| {
            hive.emit(Bump {
                key: format!("fresh-{i}"),
            });
            i += 1;
            hive.step_until_quiescent(1_000);
        });
    });
}

fn bench_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("state");
    group.bench_function("dict_put_get", |b| {
        let mut state = BeeState::new();
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("k{}", i % 1000);
            state.dict_mut("d").put(&key, &i).unwrap();
            let v: Option<u64> = state.dict("d").unwrap().get(&key).unwrap();
            criterion::black_box(v);
            i += 1;
        });
    });
    group.bench_function("tx_commit_3_writes", |b| {
        let mut state = BeeState::new();
        let mut i = 0u64;
        b.iter(|| {
            let mut tx = TxState::begin(&mut state);
            tx.put("d", format!("a{}", i % 100), &i).unwrap();
            tx.put("d", format!("b{}", i % 100), &i).unwrap();
            tx.put("e", "shared", &i).unwrap();
            criterion::black_box(tx.commit());
            i += 1;
        });
    });
    group.bench_function("tx_rollback_3_writes", |b| {
        let mut state = BeeState::new();
        let mut i = 0u64;
        b.iter(|| {
            let mut tx = TxState::begin(&mut state);
            tx.put("d", format!("a{}", i % 100), &i).unwrap();
            tx.put("d", format!("b{}", i % 100), &i).unwrap();
            tx.put("e", "shared", &i).unwrap();
            criterion::black_box(tx.rollback());
            i += 1;
        });
    });
    // Ablation: snapshot cost vs colony size — the dominant term of
    // migration latency.
    for entries in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::new("snapshot", entries),
            &entries,
            |b, &entries| {
                let mut state = BeeState::new();
                for i in 0..entries {
                    state
                        .dict_mut("d")
                        .put(format!("k{i}"), &(i as u64))
                        .unwrap();
                }
                b.iter(|| criterion::black_box(state.snapshot().unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_bee_creation, bench_state);
criterion_main!(benches);
