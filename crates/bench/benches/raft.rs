//! Raft benchmarks: proposal→commit throughput (the registry's write path)
//! and election latency, in deterministic virtual time.

use beehive_raft::harness::Cluster;
use beehive_raft::{Config, KvCounter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_commit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft/commit");
    for n in [1usize, 3, 5] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            let mut cluster = Cluster::new(n, Config::default(), 7, KvCounter::default);
            let leader = cluster.run_until_leader(5_000).unwrap();
            b.iter(|| {
                let target = cluster.node(leader).unwrap().state_machine().applied + 1;
                cluster.propose(leader, vec![1]).unwrap();
                // Tick until the proposal is applied everywhere.
                let ok = cluster.run_until(1_000, |c| {
                    c.nodes().all(|nd| nd.state_machine().applied >= target)
                });
                assert!(ok);
            });
        });
    }
    group.finish();
}

fn bench_batched_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft/batched");
    group.throughput(Throughput::Elements(64));
    group.bench_function("64_proposals_3_nodes", |b| {
        let mut cluster = Cluster::new(3, Config::default(), 9, KvCounter::default);
        let leader = cluster.run_until_leader(5_000).unwrap();
        b.iter(|| {
            let target = cluster.node(leader).unwrap().state_machine().applied + 64;
            for _ in 0..64 {
                cluster.propose(leader, vec![1]).unwrap();
            }
            let ok = cluster.run_until(5_000, |c| {
                c.nodes().all(|nd| nd.state_machine().applied >= target)
            });
            assert!(ok);
        });
    });
    group.finish();
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft/election");
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cluster = Cluster::new(n, Config::default(), seed, KvCounter::default);
                let leader = cluster.run_until_leader(10_000).unwrap();
                criterion::black_box(leader);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_throughput,
    bench_batched_commit,
    bench_election
);
criterion_main!(benches);
