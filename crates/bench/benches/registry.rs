//! Registry ablation: the cost of consistency. The paper's §6 discussion
//! ("Can't we simply use a distributed database?") argues for an integrated
//! registry; this bench quantifies our design's knob — the Raft quorum size
//! — against the latency of routing a message to a *fresh* key (which needs
//! a committed `LookupOrCreate`) and to a *known* key (local-mirror fast
//! path, no consensus on the critical path).

use beehive_core::prelude::*;
use beehive_sim::{ClusterConfig, SimCluster};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Hit {
    key: String,
}
beehive_core::impl_message!(Hit);

fn kv() -> App {
    App::builder("kv")
        .handle::<Hit>(
            |m| Mapped::cell("d", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("d", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("d", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

fn cluster(hives: usize, voters: usize) -> SimCluster {
    let mut c = SimCluster::new(
        ClusterConfig {
            hives,
            voters,
            tick_interval_ms: 0,
            ..Default::default()
        },
        |h| h.install(kv()),
    );
    c.elect_registry(120_000).expect("leader");
    c
}

/// Virtual milliseconds until a freshly keyed message lands in a bee.
fn route_fresh_key(c: &mut SimCluster, key: &str) -> u64 {
    let start = c.clock.now_ms();
    // Emit on a NON-leader, non-voter hive when possible (worst case:
    // forward to leader, commit, apply).
    let src = c.ids().into_iter().last().unwrap();
    c.hive_mut(src).emit(Hit {
        key: key.to_string(),
    });
    let cell = Cell::new("d", key);
    for _ in 0..10_000 {
        c.clock.advance(5);
        c.settle(10_000);
        let routed = c.ids().iter().any(|&h| {
            let m = c.hive(h).registry_view();
            m.owner("kv", &cell)
                .and_then(|b| m.hive_of(b))
                .map(|owner| {
                    c.hive(owner)
                        .peek_state::<u64>("kv", m.owner("kv", &cell).unwrap(), "d", key)
                        .is_some()
                })
                .unwrap_or(false)
        });
        if routed {
            return c.clock.now_ms() - start;
        }
    }
    panic!("fresh key never routed");
}

fn bench_quorum_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/fresh_key_route");
    group.sample_size(10);
    for (hives, voters) in [(3usize, 1usize), (3, 3), (9, 3), (9, 5), (9, 9)] {
        group.bench_with_input(
            BenchmarkId::new(format!("hives{hives}"), format!("voters{voters}")),
            &(hives, voters),
            |b, &(hives, voters)| {
                let mut cluster = cluster(hives, voters);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    criterion::black_box(route_fresh_key(&mut cluster, &format!("k{i}")));
                });
            },
        );
    }
    group.finish();
}

fn bench_known_key_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry/known_key_route");
    group.sample_size(10);
    for voters in [1usize, 5] {
        group.bench_with_input(BenchmarkId::new("voters", voters), &voters, |b, &voters| {
            let mut cluster = cluster(5.max(voters), voters);
            // Warm the key so the mirror everywhere knows the owner.
            route_fresh_key(&mut cluster, "hot");
            cluster.advance(2_000, 50);
            b.iter(|| {
                cluster.hive_mut(HiveId(1)).emit(Hit { key: "hot".into() });
                cluster.settle(10_000);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quorum_sweep, bench_known_key_fast_path);
criterion_main!(benches);
