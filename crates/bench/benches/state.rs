//! Transaction-engine microbenchmarks: the cost of the copy-on-write state
//! engine (`beehive_core::state`) on the hot paths the executors exercise —
//! single-op and 64-op transactions, a 64-message mailbox drain executed
//! per-message vs batched under savepoints, and rollback cost as the
//! dictionary grows.
//!
//! The per-message baseline is a faithful reenactment of the clone-based
//! engine this repo shipped before the COW rewrite (buffered op overlay,
//! value clones on read and commit), so the headline `drain_speedup_64`
//! measures exactly what the PR claims: batched drains on the COW engine vs
//! per-message drains on the engine they replaced.
//!
//! Besides the criterion groups, the bench writes a hand-rolled JSON summary
//! to `BENCH_state.json` at the repo root so CI can track the perf
//! trajectory (see `src/bin/bench-diff.rs` and the bench-gate CI job).
//! Setting `BEEHIVE_BENCH_SUMMARY_ONLY=1` skips criterion and only produces
//! the summary — CI quick mode.

use std::collections::HashMap;
use std::time::Instant;

use beehive_core::{BeeState, JournalOp, TxJournal, TxState};
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

/// Payload size of every dictionary value in the drain scenarios. Large
/// enough that the old engine's per-read/per-commit value clones are
/// visible, small in absolute terms (a flow-table entry, not a blob).
const VALUE_BYTES: usize = 1024;
/// Keys pre-populated in the drain dictionary (steady state, no inserts).
const DICT_KEYS: usize = 256;
/// Mailbox batch size of the drain comparison — the acceptance case.
const DRAIN_MSGS: usize = 64;

fn value(i: usize) -> Vec<u8> {
    let mut v = vec![0xA5u8; VALUE_BYTES];
    v[0] = (i & 0xFF) as u8;
    v[1] = ((i >> 8) & 0xFF) as u8;
    v
}

fn key(i: usize) -> String {
    format!("k{:04}", i % DICT_KEYS)
}

fn seeded_state() -> BeeState {
    let mut s = BeeState::new();
    for i in 0..DICT_KEYS {
        s.dict_mut("d").put_raw(key(i), value(i));
    }
    s
}

// ---------------------------------------------------------------------------
// Pre-COW engine reenactment
// ---------------------------------------------------------------------------

/// The clone-based transaction engine this repo used before the COW rewrite:
/// writes buffer into an op overlay keyed by `(dict, key)`, reads clone the
/// value out of the overlay or the base state, and commit applies every
/// buffered op to the base (cloning the value again into the journal).
struct PreCowTx {
    ops: HashMap<(String, String), Option<Vec<u8>>>,
    order: Vec<(String, String)>,
}

impl PreCowTx {
    fn begin() -> Self {
        PreCowTx {
            ops: HashMap::new(),
            order: Vec::new(),
        }
    }

    fn get_raw(&self, base: &BeeState, dict: &str, key: &str) -> Option<Vec<u8>> {
        if let Some(op) = self.ops.get(&(dict.to_string(), key.to_string())) {
            return op.clone();
        }
        base.dict(dict)
            .and_then(|d| d.get_raw(key))
            .map(|v| v.to_vec())
    }

    fn put_raw(&mut self, dict: &str, key: &str, value: Vec<u8>) {
        let k = (dict.to_string(), key.to_string());
        if !self.ops.contains_key(&k) {
            self.order.push(k.clone());
        }
        self.ops.insert(k, Some(value));
    }

    fn commit(self, base: &mut BeeState) -> TxJournal {
        let mut journal = TxJournal::default();
        for (dict, key) in self.order {
            match self
                .ops
                .get(&(dict.clone(), key.clone()))
                .cloned()
                .flatten()
            {
                Some(v) => {
                    base.dict_mut(&dict).put_raw(key.clone(), v.clone());
                    journal.ops.push(JournalOp::Put {
                        dict,
                        key,
                        value: v.into(),
                    });
                }
                None => {
                    base.dict_mut(&dict).del(&key);
                    journal.ops.push(JournalOp::Del { dict, key });
                }
            }
        }
        journal
    }
}

// ---------------------------------------------------------------------------
// Drain scenarios: 64 messages, each reads one key and writes another
// ---------------------------------------------------------------------------

// Every simulated handler invocation reads one 1 KiB value and writes
// another — a read-modify-write, the common handler shape.

fn encoded_len(j: &TxJournal) -> usize {
    beehive_wire::to_vec(j).map(|b| b.len()).unwrap_or(0)
}

/// Per-message drain on the pre-COW engine: one full transaction (begin,
/// read, write, commit-with-apply, journal encode) per message.
fn drain_per_message_pre_cow(state: &mut BeeState) -> usize {
    let mut bytes = 0;
    for m in 0..DRAIN_MSGS {
        let mut tx = PreCowTx::begin();
        let v = tx.get_raw(state, "d", &key(m)).expect("seeded");
        tx.put_raw("d", &key(m + 1), v);
        let journal = tx.commit(state);
        bytes += encoded_len(&journal);
    }
    bytes
}

/// Per-message drain on the COW engine: still one transaction per message.
fn drain_per_message_cow(state: &mut BeeState) -> usize {
    let mut bytes = 0;
    for m in 0..DRAIN_MSGS {
        let mut tx = TxState::begin(state);
        let v = tx.get_raw("d", &key(m)).expect("seeded");
        tx.put_raw("d", key(m + 1), v);
        let journal = tx.commit();
        bytes += encoded_len(&journal);
    }
    bytes
}

/// Batched drain on the COW engine: ONE open transaction, a savepoint per
/// message, per-message journal extraction — exactly what both executors do.
fn drain_batched_cow(state: &mut BeeState) -> usize {
    let mut bytes = 0;
    let mut tx = TxState::begin(state);
    for m in 0..DRAIN_MSGS {
        let sp = tx.savepoint();
        let v = tx.get_raw("d", &key(m)).expect("seeded");
        tx.put_raw("d", key(m + 1), v);
        let journal = tx.take_journal_since(&sp);
        bytes += encoded_len(&journal);
    }
    let residue = tx.commit();
    assert!(residue.is_empty());
    bytes
}

/// Messages/second of a drain function over `rounds` repetitions.
fn drain_throughput(rounds: usize, f: fn(&mut BeeState) -> usize) -> f64 {
    let mut state = seeded_state();
    // Warm once so both engines run against identical steady-state dicts.
    std::hint::black_box(f(&mut state));
    let started = Instant::now();
    for _ in 0..rounds {
        std::hint::black_box(f(&mut state));
    }
    let secs = started.elapsed().as_secs_f64();
    (rounds * DRAIN_MSGS) as f64 / secs.max(1e-9)
}

// ---------------------------------------------------------------------------
// Rollback cost vs dict size
// ---------------------------------------------------------------------------

fn rollback_state(keys: usize) -> BeeState {
    let mut s = BeeState::new();
    for i in 0..keys {
        s.dict_mut("d")
            .put_raw(format!("k{i:06}"), vec![0x5Au8; 64]);
    }
    s
}

/// Touch 8 keys, then roll the transaction back. On the COW engine this is
/// O(touched keys) regardless of how large the dictionary is.
fn rollback_touch8(state: &mut BeeState, keys: usize) {
    let mut tx = TxState::begin(state);
    for i in 0..8 {
        tx.put_raw("d", format!("k{:06}", i * (keys / 8).max(1)), vec![1u8; 64]);
    }
    tx.rollback();
}

/// Mean nanoseconds per touch-8 rollback on a `keys`-entry dict.
fn rollback_ns(keys: usize, rounds: usize) -> f64 {
    let mut state = rollback_state(keys);
    let started = Instant::now();
    for _ in 0..rounds {
        rollback_touch8(&mut state, keys);
    }
    started.elapsed().as_nanos() as f64 / rounds as f64
}

// ---------------------------------------------------------------------------
// Criterion groups
// ---------------------------------------------------------------------------

fn bench_tx(c: &mut Criterion) {
    let mut group = c.benchmark_group("tx");
    group.bench_function("single_op", |b| {
        let mut state = seeded_state();
        let mut i = 0usize;
        b.iter(|| {
            let mut tx = TxState::begin(&mut state);
            tx.put_raw("d", key(i), value(i));
            i += 1;
            criterion::black_box(tx.commit())
        });
    });
    group.bench_function("64_ops", |b| {
        let mut state = seeded_state();
        b.iter(|| {
            let mut tx = TxState::begin(&mut state);
            for i in 0..64 {
                tx.put_raw("d", key(i), value(i));
            }
            criterion::black_box(tx.commit())
        });
    });
    group.finish();
}

fn bench_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("drain");
    group.throughput(Throughput::Elements(DRAIN_MSGS as u64));
    group.bench_function("per_message_pre_cow", |b| {
        let mut state = seeded_state();
        b.iter(|| criterion::black_box(drain_per_message_pre_cow(&mut state)));
    });
    group.bench_function("per_message_cow", |b| {
        let mut state = seeded_state();
        b.iter(|| criterion::black_box(drain_per_message_cow(&mut state)));
    });
    group.bench_function("batched_cow", |b| {
        let mut state = seeded_state();
        b.iter(|| criterion::black_box(drain_batched_cow(&mut state)));
    });
    group.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback");
    for &keys in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("touch8", keys), &keys, |b, &keys| {
            let mut state = rollback_state(keys);
            b.iter(|| rollback_touch8(&mut state, keys));
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Summary JSON
// ---------------------------------------------------------------------------

/// Hand-rolled JSON (the workspace's wire format is a custom binary serde;
/// no JSON crate is available).
fn json_summary() -> String {
    const ROUNDS: usize = 2_000;
    let pre_cow = drain_throughput(ROUNDS, drain_per_message_pre_cow);
    let per_msg = drain_throughput(ROUNDS, drain_per_message_cow);
    let batched = drain_throughput(ROUNDS, drain_batched_cow);

    let single_rounds = 200_000usize;
    let mut state = seeded_state();
    let started = Instant::now();
    for i in 0..single_rounds {
        let mut tx = TxState::begin(&mut state);
        tx.put_raw("d", key(i), value(i));
        std::hint::black_box(tx.commit());
    }
    let single_ns = started.elapsed().as_nanos() as f64 / single_rounds as f64;

    let batch_rounds = 10_000usize;
    let started = Instant::now();
    for _ in 0..batch_rounds {
        let mut tx = TxState::begin(&mut state);
        for i in 0..64 {
            tx.put_raw("d", key(i), value(i));
        }
        std::hint::black_box(tx.commit());
    }
    let tx64_ns = started.elapsed().as_nanos() as f64 / batch_rounds as f64;

    let rb_1k = rollback_ns(1_000, 50_000);
    let rb_10k = rollback_ns(10_000, 50_000);
    let rb_100k = rollback_ns(100_000, 50_000);

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"state\",\n",
            "  \"provisional\": false,\n",
            "  \"value_bytes\": {},\n",
            "  \"dict_keys\": {},\n",
            "  \"drain_messages\": {},\n",
            "  \"tx_single_op_ns\": {:.0},\n",
            "  \"tx_64_op_ns\": {:.0},\n",
            "  \"drain_msgs_per_sec\": {{ \"per_message_pre_cow\": {:.0}, ",
            "\"per_message_cow\": {:.0}, \"batched_cow\": {:.0} }},\n",
            "  \"drain_speedup_64\": {:.3},\n",
            "  \"cow_speedup_per_message\": {:.3},\n",
            "  \"rollback_touch8_ns\": {{ \"d1k\": {:.0}, \"d10k\": {:.0}, ",
            "\"d100k\": {:.0} }}\n",
            "}}\n"
        ),
        VALUE_BYTES,
        DICT_KEYS,
        DRAIN_MSGS,
        single_ns,
        tx64_ns,
        pre_cow,
        per_msg,
        batched,
        batched / pre_cow.max(1e-9),
        per_msg / pre_cow.max(1e-9),
        rb_1k,
        rb_10k,
        rb_100k,
    )
}

fn write_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_state.json");
    let json = json_summary();
    print!("{json}");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_tx, bench_drain, bench_rollback);

fn main() {
    // `cargo test` runs benches with `--test`; keep that (and `--list`)
    // fast by skipping both criterion and the summary measurement.
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--list");
    if quick {
        // Smoke: each drain variant must run and mutate identically.
        let mut a = seeded_state();
        let mut b = seeded_state();
        let mut c = seeded_state();
        drain_per_message_pre_cow(&mut a);
        drain_per_message_cow(&mut b);
        drain_batched_cow(&mut c);
        assert_eq!(a, b, "COW per-message drain must match the old engine");
        assert_eq!(b, c, "batched drain must match per-message execution");
        println!("state bench smoke ok");
        return;
    }
    // CI quick mode: only the JSON summary, no criterion sampling.
    if std::env::var_os("BEEHIVE_BENCH_SUMMARY_ONLY").is_some() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
