//! Transport throughput: frames/second through real loopback TCP, threaded
//! engine versus the non-blocking reactor.
//!
//! The reactor's claim is that lock-cheap ring enqueues plus vectored
//! batched flushes beat one blocking `write` per frame, most visibly on
//! small frames fanned out to many peers (the SDN control-plane shape:
//! thousands of tiny OpenFlow events). The bench measures four shapes per
//! engine: small frames to 1 peer, small frames to 8 peers, large frames
//! to 1 peer (where the wire dominates and batching matters less), and a
//! send-one-wait-one ping mode that deliberately denies the reactor any
//! batching (its ratio should hover near 1x — batching, not magic, is the
//! win).
//!
//! Besides the criterion groups, the bench writes a hand-rolled JSON
//! summary to `BENCH_transport.json` at the repo root so CI can track the
//! perf trajectory across PRs (see `src/bin/bench-diff.rs` and the
//! bench-gate CI job); `reactor_speedup_small_8peer` is the headline
//! number (expected ≥ 5 per the reactor's acceptance bar). Setting
//! `BEEHIVE_BENCH_SUMMARY_ONLY=1` skips criterion and only produces the
//! summary — CI quick mode.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use beehive_core::transport::{Frame, Transport, TransportPreference};
use beehive_core::HiveId;
use beehive_net::bind_tcp;
use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

const SMALL: usize = 32;
const LARGE: usize = 64 * 1024;

/// A receiving hive: its transport lives on a dedicated thread that counts
/// inbound frames (parking on the transport waker) until `expect` arrive.
struct Sink {
    id: HiveId,
    addr: SocketAddr,
    count: Arc<AtomicUsize>,
    handle: std::thread::JoinHandle<()>,
}

fn spawn_sink(pref: TransportPreference, id: HiveId, expect: usize) -> Sink {
    let (t, addr, _counters) = bind_tcp(pref, id, "127.0.0.1:0".parse().unwrap(), HashMap::new())
        .expect("bind sink transport");
    let count = Arc::new(AtomicUsize::new(0));
    let counter = count.clone();
    let handle = std::thread::spawn(move || {
        let mut t = t;
        let me = std::thread::current();
        t.set_waker(Arc::new(move || me.unpark()));
        while counter.load(Ordering::Relaxed) < expect {
            match t.try_recv() {
                Some(_) => {
                    counter.fetch_add(1, Ordering::Release);
                }
                None => std::thread::park_timeout(Duration::from_millis(1)),
            }
        }
    });
    Sink {
        id,
        addr,
        count,
        handle,
    }
}

fn wait_count(sink: &Sink, target: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while sink.count.load(Ordering::Acquire) < target {
        assert!(
            Instant::now() < deadline,
            "sink {} stuck at {}/{} frames",
            sink.id,
            sink.count.load(Ordering::Acquire),
            target
        );
        std::thread::yield_now();
    }
}

/// Frames/second for `frames_per_peer` frames of `payload` bytes to each of
/// `n_peers` sinks. `batched: false` waits for every frame before sending
/// the next — the no-batching control case.
fn run_case(
    pref: TransportPreference,
    payload: usize,
    n_peers: usize,
    frames_per_peer: usize,
    batched: bool,
) -> f64 {
    // +1 for the warmup frame that forces the connection up before timing.
    let expect = frames_per_peer + 1;
    let sinks: Vec<Sink> = (1..=n_peers)
        .map(|i| spawn_sink(pref, HiveId(i as u32), expect))
        .collect();
    let (sender, _addr, _counters) = bind_tcp(
        pref,
        HiveId(100),
        "127.0.0.1:0".parse().unwrap(),
        HashMap::new(),
    )
    .expect("bind sender transport");
    for s in &sinks {
        sender.connect_peer(s.id, &s.addr.to_string());
        sender.send(s.id, Frame::app(vec![0u8; payload]));
    }
    for s in &sinks {
        wait_count(s, 1);
    }

    let started = Instant::now();
    if batched {
        for _ in 0..frames_per_peer {
            for s in &sinks {
                sender.send(s.id, Frame::app(vec![0u8; payload]));
            }
        }
        for s in &sinks {
            wait_count(s, expect);
        }
    } else {
        for f in 0..frames_per_peer {
            for s in &sinks {
                sender.send(s.id, Frame::app(vec![0u8; payload]));
                wait_count(s, f + 2);
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();
    for s in sinks {
        s.handle.join().expect("sink thread");
    }
    (frames_per_peer * n_peers) as f64 / secs.max(1e-9)
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    group.sample_size(10);
    let engines = [
        ("threaded", TransportPreference::Threaded),
        ("reactor", TransportPreference::Reactor),
    ];
    for (name, pref) in engines {
        group.throughput(Throughput::Elements(2_000));
        group.bench_with_input(BenchmarkId::new(name, "small_1peer"), &pref, |b, &pref| {
            b.iter(|| criterion::black_box(run_case(pref, SMALL, 1, 2_000, true)));
        });
        group.throughput(Throughput::Elements(8 * 500));
        group.bench_with_input(BenchmarkId::new(name, "small_8peer"), &pref, |b, &pref| {
            b.iter(|| criterion::black_box(run_case(pref, SMALL, 8, 500, true)));
        });
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(BenchmarkId::new(name, "large_1peer"), &pref, |b, &pref| {
            b.iter(|| criterion::black_box(run_case(pref, LARGE, 1, 200, true)));
        });
        group.throughput(Throughput::Elements(500));
        group.bench_with_input(BenchmarkId::new(name, "single_wait"), &pref, |b, &pref| {
            b.iter(|| criterion::black_box(run_case(pref, SMALL, 1, 500, false)));
        });
    }
    group.finish();
}

/// Hand-rolled JSON (the workspace's wire format is a custom binary serde;
/// no JSON crate is available). The single-frame ratio is deliberately NOT
/// named `*speedup*`: it hovers near 1x by design and would be pure noise
/// under bench-diff's regression tracking.
fn json_summary() -> String {
    let t_small_1 = run_case(TransportPreference::Threaded, SMALL, 1, 20_000, true);
    let r_small_1 = run_case(TransportPreference::Reactor, SMALL, 1, 20_000, true);
    let t_small_8 = run_case(TransportPreference::Threaded, SMALL, 8, 2_500, true);
    let r_small_8 = run_case(TransportPreference::Reactor, SMALL, 8, 2_500, true);
    let t_large_1 = run_case(TransportPreference::Threaded, LARGE, 1, 1_000, true);
    let r_large_1 = run_case(TransportPreference::Reactor, LARGE, 1, 1_000, true);
    let t_single = run_case(TransportPreference::Threaded, SMALL, 1, 2_000, false);
    let r_single = run_case(TransportPreference::Reactor, SMALL, 1, 2_000, false);
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"transport\",\n",
            "  \"provisional\": false,\n",
            "  \"small_bytes\": {},\n",
            "  \"large_bytes\": {},\n",
            "  \"threaded_frames_per_sec\": {{ \"small_1peer\": {:.0}, \"small_8peer\": {:.0}, ",
            "\"large_1peer\": {:.0}, \"small_1peer_single\": {:.0} }},\n",
            "  \"reactor_frames_per_sec\": {{ \"small_1peer\": {:.0}, \"small_8peer\": {:.0}, ",
            "\"large_1peer\": {:.0}, \"small_1peer_single\": {:.0} }},\n",
            "  \"reactor_speedup_small_1peer\": {:.3},\n",
            "  \"reactor_speedup_small_8peer\": {:.3},\n",
            "  \"reactor_speedup_large_1peer\": {:.3},\n",
            "  \"reactor_single_frame_ratio\": {:.3}\n",
            "}}\n"
        ),
        SMALL,
        LARGE,
        t_small_1,
        t_small_8,
        t_large_1,
        t_single,
        r_small_1,
        r_small_8,
        r_large_1,
        r_single,
        r_small_1 / t_small_1.max(1e-9),
        r_small_8 / t_small_8.max(1e-9),
        r_large_1 / t_large_1.max(1e-9),
        r_single / t_single.max(1e-9),
    )
}

fn write_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    let json = json_summary();
    print!("{json}");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_transport);

fn main() {
    // `cargo test` runs benches with `--test`; keep that (and `--list`)
    // fast by skipping both criterion and the summary measurement.
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--test" || a == "--list");
    if quick {
        // Smoke: a tiny burst through each engine proves both paths work.
        let threaded = run_case(TransportPreference::Threaded, SMALL, 1, 32, true);
        let reactor = run_case(TransportPreference::Reactor, SMALL, 1, 32, true);
        assert!(threaded > 0.0 && reactor > 0.0);
        println!("transport bench smoke ok (threaded {threaded:.0} f/s, reactor {reactor:.0} f/s)");
        return;
    }
    // CI quick mode: only the JSON summary, no criterion sampling.
    if std::env::var_os("BEEHIVE_BENCH_SUMMARY_ONLY").is_some() {
        write_summary();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    write_summary();
}
