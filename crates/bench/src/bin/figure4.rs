//! Regenerates the Beehive HotNets'14 paper's Figure 4.
//!
//! ```text
//! figure4 [--panel a|b|c|d|e|f|all] [--small] [--seconds N] [--hives N]
//!         [--switches N] [--out DIR] [--check naive-collocation|optimized-equivalence]
//! ```
//!
//! Panels a/d run the naive TE, b/e the decoupled TE, c/f the decoupled TE
//! with all cells pinned to hive 1 and the runtime optimizer enabled.
//! Matrices (a–c) print as ASCII heatmaps + CSV; bandwidth series (d–f)
//! print as per-second rows + CSV.

use std::path::PathBuf;

use beehive_bench::report::{bw_chart, heatmap, summary_row, write_matrix_csv, write_series_csv};
use beehive_bench::{run_figure4, Figure4Config, Figure4Result, TeVariant};

struct Args {
    panel: String,
    small: bool,
    seconds: Option<u64>,
    hives: Option<usize>,
    switches: Option<usize>,
    out: PathBuf,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        panel: "all".into(),
        small: false,
        seconds: None,
        hives: None,
        switches: None,
        out: PathBuf::from("target/figure4"),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--panel" => {
                let v = it.next().expect("--panel needs a value");
                if !["a", "b", "c", "d", "e", "f", "all"].contains(&v.as_str()) {
                    eprintln!("unknown panel {v:?} (expected a-f or all)");
                    std::process::exit(2);
                }
                args.panel = v;
            }
            "--small" => args.small = true,
            "--seconds" => args.seconds = Some(it.next().unwrap().parse().unwrap()),
            "--hives" => args.hives = Some(it.next().unwrap().parse().unwrap()),
            "--switches" => args.switches = Some(it.next().unwrap().parse().unwrap()),
            "--out" => args.out = PathBuf::from(it.next().unwrap()),
            "--check" => args.check = Some(it.next().expect("--check needs a value")),
            "--help" | "-h" => {
                println!(
                    "usage: figure4 [--panel a|b|c|d|e|f|all] [--small] [--seconds N] \
                     [--hives N] [--switches N] [--out DIR] [--check NAME]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn config_for(variant: TeVariant, args: &Args) -> Figure4Config {
    let mut cfg = if args.small {
        Figure4Config::small(variant)
    } else {
        Figure4Config {
            variant,
            ..Default::default()
        }
    };
    if let Some(s) = args.seconds {
        cfg.seconds = s;
    }
    if let Some(h) = args.hives {
        cfg.hives = h;
        cfg.voters = cfg.voters.min(h);
    }
    if let Some(s) = args.switches {
        cfg.switches = s;
    }
    cfg
}

fn run_variant(variant: TeVariant, args: &Args) -> Figure4Result {
    let cfg = config_for(variant, args);
    eprintln!(
        "running {variant:?}: {} hives, ≥{} switches, {} flows/switch, {}s …",
        cfg.hives, cfg.switches, cfg.flows_per_switch, cfg.seconds
    );
    let started = std::time::Instant::now();
    let result = run_figure4(&cfg);
    eprintln!("  done in {:.1}s wall", started.elapsed().as_secs_f64());
    result
}

fn emit_matrix(panel: char, label: &str, r: &Figure4Result, out: &std::path::Path) {
    println!("\n=== Figure 4{panel}: inter-hive message matrix — {label} ===");
    println!("{}", heatmap(&r.msg_matrix));
    println!("{}", summary_row(&format!("4{panel}"), r));
    let path = out.join(format!("fig4{panel}_matrix.csv"));
    write_matrix_csv(&path, &r.msg_matrix).expect("write matrix csv");
    println!("(csv: {})", path.display());
}

fn emit_series(panel: char, label: &str, r: &Figure4Result, out: &std::path::Path) {
    println!("\n=== Figure 4{panel}: control-channel bandwidth — {label} ===");
    print!("{}", bw_chart(&r.bw_series));
    println!("{}", summary_row(&format!("4{panel}"), r));
    let path = out.join(format!("fig4{panel}_bw.csv"));
    write_series_csv(&path, &r.bw_by_kind).expect("write series csv");
    println!("(csv: {})", path.display());
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    if let Some(check) = &args.check {
        if check == "voters-ablation" {
            run_voters_ablation(&args);
            return;
        }
        run_check(check, &args);
        return;
    }

    let wants = |p: char| args.panel == "all" || args.panel == p.to_string();
    let mut naive = None;
    let mut decoupled = None;
    let mut optimized = None;

    if wants('a') || wants('d') {
        naive = Some(run_variant(TeVariant::Naive, &args));
    }
    if wants('b') || wants('e') {
        decoupled = Some(run_variant(TeVariant::Decoupled, &args));
    }
    if wants('c') || wants('f') {
        optimized = Some(run_variant(TeVariant::Optimized, &args));
    }

    if let Some(r) = &naive {
        if wants('a') {
            emit_matrix('a', "naive TE (centralized)", r, &args.out);
        }
        if wants('d') {
            emit_series('d', "naive TE (centralized)", r, &args.out);
        }
        for fb in &r.feedback {
            println!("\n--- platform feedback ---\n{fb}");
        }
    }
    if let Some(r) = &decoupled {
        if wants('b') {
            emit_matrix('b', "decoupled TE", r, &args.out);
        }
        if wants('e') {
            emit_series('e', "decoupled TE", r, &args.out);
        }
    }
    if let Some(r) = &optimized {
        if wants('c') {
            emit_matrix('c', "decoupled TE + runtime optimization", r, &args.out);
        }
        if wants('f') {
            emit_series('f', "decoupled TE + runtime optimization", r, &args.out);
        }
    }

    // Cross-panel summary (who wins, by how much) when everything ran.
    if let (Some(a), Some(b), Some(c)) = (&naive, &decoupled, &optimized) {
        println!("\n=== Summary (paper-shape checks) ===");
        println!("{}", summary_row("naive    ", a));
        println!("{}", summary_row("decoupled", b));
        println!("{}", summary_row("optimized", c));
        let improvement = a.total_bytes as f64 / b.total_bytes.max(1) as f64;
        println!(
            "decoupling cuts control-channel bytes by {improvement:.1}x; \
             optimizer performed {} migrations; locality naive→decoupled→optimized: \
             {:.0}% → {:.0}% → {:.0}%",
            c.migrations,
            a.locality * 100.0,
            b.locality * 100.0,
            c.locality * 100.0
        );
    }
}

/// Design-choice ablation (DESIGN.md §3.5): how does the registry Raft
/// quorum size affect control-channel overhead? Runs the decoupled TE
/// scenario with increasing voter counts and reports the Raft share.
fn run_voters_ablation(args: &Args) {
    println!("=== Ablation: registry quorum size (decoupled TE) ===");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>8}",
        "voters", "app+ctl B", "raft B", "total B", "raft %"
    );
    for voters in [1usize, 3, 5, 9] {
        let mut cfg = config_for(TeVariant::Decoupled, args);
        if voters > cfg.hives {
            continue;
        }
        cfg.voters = voters;
        let r = run_figure4(&cfg);
        let raft: u64 = r.bw_by_kind.iter().map(|&(_, _, _, raft)| raft).sum();
        let appctl = r.total_bytes;
        let total = appctl + raft;
        println!(
            "{voters:>7} {appctl:>12} {raft:>12} {total:>12} {:>7.1}%",
            raft as f64 / total.max(1) as f64 * 100.0
        );
    }
}

fn run_check(check: &str, args: &Args) {
    match check {
        // §5 claim: "Collect and Query are always invoked by the same bee
        // because of sharing cells with Route" — i.e. exactly one TE bee.
        "naive-collocation" => {
            let r = run_variant(TeVariant::Naive, args);
            let total: usize = r.te_bees_per_hive.values().sum();
            println!("naive TE bees cluster-wide: {total} (expect 1)");
            assert_eq!(total, 1, "naive TE must collocate on one bee");
            println!("CHECK PASSED");
        }
        // §5 claim: "after optimization, application's behavior is identical
        // to Figures 4e and 4b" — steady-state bandwidth converges to the
        // decoupled level and bees spread out.
        "optimized-equivalence" => {
            let d = run_variant(TeVariant::Decoupled, args);
            let o = run_variant(TeVariant::Optimized, args);
            let (ds, os) = (d.steady_bw().max(1), o.steady_bw());
            println!(
                "steady bandwidth: decoupled {:.1} KB/s, optimized {:.1} KB/s (ratio {:.2})",
                ds as f64 / 1000.0,
                os as f64 / 1000.0,
                os as f64 / ds as f64
            );
            println!(
                "bees per hive: decoupled on {} hives, optimized on {} hives",
                d.te_bees_per_hive.len(),
                o.te_bees_per_hive.len()
            );
            assert!(o.migrations > 0, "optimizer must migrate");
            assert!(
                os as f64 <= ds as f64 * 3.0,
                "optimized steady state should approach the decoupled level"
            );
            println!("CHECK PASSED");
        }
        other => {
            eprintln!("unknown check {other:?}");
            std::process::exit(2);
        }
    }
}
