#![warn(missing_docs)]

//! `beehive-bench` — the evaluation harness regenerating the Beehive
//! HotNets'14 paper's Figure 4, plus Criterion microbenchmarks of the
//! platform's moving parts.
//!
//! The paper's whole quantitative evaluation is Figure 4 (a–f): inter-hive
//! traffic matrices and control-channel bandwidth over time for the Traffic
//! Engineering app in three configurations — naive, decoupled, and
//! runtime-optimized. [`scenario::run_figure4`] reproduces the experiment:
//! 40 hives, 400 switches in a tree, 100 fixed-rate flows per switch with
//! 10% elephants, 60 virtual seconds.

pub mod report;
pub mod scenario;

pub use scenario::{run_figure4, Figure4Config, Figure4Result, TeVariant};
