//! Rendering of experiment results: ASCII heatmaps, CSV files and summary
//! rows — the textual equivalents of the paper's Figure 4 panels.

use std::io::Write;
use std::path::Path;

use crate::scenario::Figure4Result;

/// Renders the message matrix as an ASCII heatmap (log-scaled shades).
pub fn heatmap(matrix: &[Vec<u64>]) -> String {
    let max = matrix.iter().flatten().copied().max().unwrap_or(0);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let mut out = String::new();
    for row in matrix {
        for &v in row {
            let c = if v == 0 || max == 0 {
                shades[0]
            } else {
                // log scale: 1..=max → 1..=6
                let level = ((v as f64).ln() / (max as f64).ln().max(1.0) * 6.0).ceil() as usize;
                shades[level.clamp(1, 6)]
            };
            out.push(c);
        }
        out.push('\n');
    }
    out
}

/// Writes the matrix as CSV (`src,dst,msgs` triples, nonzero only).
pub fn write_matrix_csv(path: &Path, matrix: &[Vec<u64>]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "src_hive,dst_hive,msgs")?;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v > 0 {
                writeln!(f, "{},{},{}", i + 1, j + 1, v)?;
            }
        }
    }
    Ok(())
}

/// Writes the bandwidth series as CSV.
pub fn write_series_csv(path: &Path, by_kind: &[(u64, u64, u64, u64)]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "second,total_bytes,app_bytes,control_bytes,raft_bytes")?;
    for &(t, app, control, raft) in by_kind {
        writeln!(
            f,
            "{},{},{},{},{}",
            t / 1000,
            app + control,
            app,
            control,
            raft
        )?;
    }
    Ok(())
}

/// Renders the bandwidth series as a small ASCII bar chart (KB/s).
pub fn bw_chart(series: &[(u64, u64)]) -> String {
    let max = series.iter().map(|&(_, b)| b).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for &(t, b) in series {
        let bar_len = (b * 50 / max) as usize;
        out.push_str(&format!(
            "{:>4}s {:>10.1} KB/s |{}\n",
            t / 1000,
            b as f64 / 1000.0,
            "█".repeat(bar_len)
        ));
    }
    out
}

/// One-line summary for a panel, suitable for EXPERIMENTS.md tables.
pub fn summary_row(label: &str, r: &Figure4Result) -> String {
    format!(
        "{label}: locality={:.1}% hot_hive={} peak={:.1}KB/s steady={:.1}KB/s total={:.1}MB migrations={}",
        r.locality * 100.0,
        r.hot_hive
            .map(|(h, s)| format!("{h}@{:.0}%", s * 100.0))
            .unwrap_or_else(|| "-".into()),
        r.peak_bw() as f64 / 1000.0,
        r.steady_bw() as f64 / 1000.0,
        r.total_bytes as f64 / 1e6,
        r.migrations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shades_scale() {
        let m = vec![vec![0, 1], vec![10, 1000]];
        let h = heatmap(&m);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().next(), Some(' '), "zero is blank");
        assert_eq!(lines[1].chars().nth(1), Some('@'), "max is densest");
    }

    #[test]
    fn csv_roundtrip_shapes() {
        let dir = std::env::temp_dir().join(format!("bh-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mpath = dir.join("m.csv");
        write_matrix_csv(&mpath, &[vec![0, 5], vec![3, 0]]).unwrap();
        let text = std::fs::read_to_string(&mpath).unwrap();
        assert!(text.contains("1,2,5"));
        assert!(text.contains("2,1,3"));
        assert_eq!(text.lines().count(), 3, "header + 2 nonzero cells");

        let spath = dir.join("s.csv");
        write_series_csv(&spath, &[(0, 100, 20, 5), (1000, 50, 10, 5)]).unwrap();
        let text = std::fs::read_to_string(&spath).unwrap();
        assert!(text.contains("0,120,100,20,5"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chart_renders_rows() {
        let chart = bw_chart(&[(0, 1000), (1000, 500)]);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains("1.0 KB/s"));
    }
}
