//! The Figure-4 experiment: the paper's §5 evaluation, end to end.
//!
//! "We have simulated a cluster of 40 controllers and 400 switches in a
//! simple tree topology. We initiate 100 fixed-rate flows from each switch,
//! and instrument the TE application. Here, 10% of these flows have a rate
//! more than a user-defined re-routing threshold (i.e., δ in Figure 2)."

use std::collections::BTreeMap;
use std::sync::Arc;

use beehive_core::optimizer::OptimizerConfig;
use beehive_core::{collector_app, optimizer_app, Cell, FrameKind, HiveId};
use beehive_openflow::driver::{driver_app, DRIVER_APP};
use beehive_sim::{
    generate_flows, ClusterConfig, SimCluster, SwitchFleet, Topology, WorkloadConfig,
};

use beehive_apps::te::{
    decoupled_te_apps, naive_te_app, TeConfig, NAIVE_TE_APP, TE_COLLECT_APP, TE_ROUTE_APP,
};

/// Which TE design runs (the paper's three configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeVariant {
    /// Figure 4a/4d: the naive design — `Route` maps whole dictionaries, the
    /// whole app centralizes on one bee.
    Naive,
    /// Figure 4b/4e: `Route` decoupled behind aggregated `MatrixUpdate`s;
    /// collection runs next to each switch's master hive.
    Decoupled,
    /// Figure 4c/4f: decoupled design, but all cells artificially pinned to
    /// hive 1 at start; the runtime optimizer migrates the bees next to
    /// their switches' drivers during the run.
    Optimized,
}

/// Experiment parameters. Defaults reproduce the paper's setup.
#[derive(Debug, Clone)]
pub struct Figure4Config {
    /// Which design to run.
    pub variant: TeVariant,
    /// Number of hives (paper: 40).
    pub hives: usize,
    /// Registry Raft voters (first k hives).
    pub voters: usize,
    /// Tree fanout (7 with ~400 target gives exactly 400 switches).
    pub fanout: u32,
    /// Minimum number of switches (paper: 400).
    pub switches: usize,
    /// Flows per switch (paper: 100).
    pub flows_per_switch: usize,
    /// Elephant fraction (paper: 10%).
    pub elephant_fraction: f64,
    /// Virtual seconds of measurement.
    pub seconds: u64,
    /// Re-routing threshold δ (B/s).
    pub delta: u64,
    /// Optimizer cadence: run every N ticks (Optimized variant).
    pub optimize_every: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Figure4Config {
    fn default() -> Self {
        Figure4Config {
            variant: TeVariant::Naive,
            hives: 40,
            voters: 5,
            fanout: 7,
            switches: 400,
            flows_per_switch: 100,
            elephant_fraction: 0.1,
            seconds: 60,
            delta: 50_000,
            optimize_every: 5,
            seed: 0xBEE,
        }
    }
}

impl Figure4Config {
    /// A scaled-down configuration for tests and smoke runs.
    pub fn small(variant: TeVariant) -> Self {
        Figure4Config {
            variant,
            hives: 5,
            voters: 3,
            fanout: 3,
            switches: 13,
            flows_per_switch: 10,
            seconds: 20,
            ..Default::default()
        }
    }
}

/// Everything the experiment measures.
#[derive(Debug, Clone)]
pub struct Figure4Result {
    /// Hive ids, in matrix order.
    pub hives: Vec<HiveId>,
    /// Figure 4a–c: bee-to-bee message matrix `[src][dst]` (includes the
    /// diagonal — locally processed messages).
    pub msg_matrix: Vec<Vec<u64>>,
    /// Figure 4d–f: per-second control-channel bytes (App + Control frames).
    pub bw_series: Vec<(u64, u64)>,
    /// Same, broken out by frame kind: (second, app, control, raft).
    pub bw_by_kind: Vec<(u64, u64, u64, u64)>,
    /// Share of off-diagonal messages touching the busiest hive.
    pub hot_hive: Option<(HiveId, f64)>,
    /// Fraction of messages processed locally (the diagonal mass).
    pub locality: f64,
    /// Bees per hive for the TE collection app at the end.
    pub te_bees_per_hive: BTreeMap<u32, usize>,
    /// Total migrations that completed during the run.
    pub migrations: u64,
    /// Design feedback for the TE app(s).
    pub feedback: Vec<String>,
    /// Total inter-hive bytes (App + Control).
    pub total_bytes: u64,
}

impl Figure4Result {
    /// Peak of the bandwidth series (B/s).
    pub fn peak_bw(&self) -> u64 {
        self.bw_series.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Mean bandwidth over the steady tail (last quarter of the run), B/s.
    pub fn steady_bw(&self) -> u64 {
        let n = self.bw_series.len();
        if n == 0 {
            return 0;
        }
        let tail = &self.bw_series[n - (n / 4).max(1)..];
        tail.iter().map(|&(_, b)| b).sum::<u64>() / tail.len() as u64
    }
}

/// Runs the experiment.
pub fn run_figure4(cfg: &Figure4Config) -> Figure4Result {
    let topo = Topology::tree_with_about(cfg.switches, cfg.fanout);
    let cluster_cfg = ClusterConfig {
        hives: cfg.hives,
        voters: cfg.voters.min(cfg.hives),
        tick_interval_ms: 1000,
        raft_tick_ms: 50,
        bucket_ms: 1000,
        pending_retry_ms: 1000,
        replication_factor: 1,
        workers: 1,
    };

    // Build the cluster first (apps are installed below, once the fleet
    // exists — the driver needs the fleet as its SwitchIo).
    let mut cluster = SimCluster::new(cluster_cfg, |_h| {});

    let masters = topo.assign_masters(&cluster.ids());
    let handles: Vec<_> = cluster
        .ids()
        .iter()
        .map(|&id| cluster.hive(id).handle())
        .collect();
    let fleet = Arc::new(SwitchFleet::new(
        topo.switches.iter().map(|s| (s.dpid, s.ports)),
        masters,
        handles,
    ));

    // Install the applications on every hive.
    let te_cfg = TeConfig {
        delta_bytes_per_sec: cfg.delta,
    };
    let mut feedback = Vec::new();
    for id in cluster.ids() {
        let hive = cluster.hive_mut(id);
        hive.install(driver_app(fleet.clone()));
        match cfg.variant {
            TeVariant::Naive => {
                let app = naive_te_app(te_cfg);
                if id.0 == 1 {
                    feedback.push(beehive_core::feedback::design_feedback(&app).to_string());
                }
                hive.install(app);
            }
            TeVariant::Decoupled | TeVariant::Optimized => {
                let (collect, route) = decoupled_te_apps(te_cfg);
                if id.0 == 1 {
                    feedback.push(beehive_core::feedback::design_feedback(&collect).to_string());
                    feedback.push(beehive_core::feedback::design_feedback(&route).to_string());
                }
                hive.install(collect);
                hive.install(route);
            }
        }
        if cfg.variant == TeVariant::Optimized {
            let instr = hive.instrumentation();
            hive.install(collector_app(instr));
            hive.install(optimizer_app(
                OptimizerConfig {
                    min_messages: 5,
                    frozen_apps: vec![DRIVER_APP.to_string()],
                    ..Default::default()
                },
                cfg.optimize_every,
            ));
        }
    }

    // Bring up the registry.
    cluster.elect_registry(120_000).expect("registry leader");

    // The paper's optimization demo: "we artificially assign the cells of
    // all switches to the bees on the first hive".
    if cfg.variant == TeVariant::Optimized {
        let cells: Vec<Cell> = topo
            .dpids()
            .iter()
            .map(|d| Cell::new("S", d.to_string()))
            .collect();
        for cell in cells {
            cluster
                .hive_mut(HiveId(1))
                .preclaim(TE_COLLECT_APP, vec![cell]);
        }
        let fleet2 = fleet.clone();
        cluster.advance_with(2_000, 100, || fleet2.pump());
    }

    // OpenFlow handshakes; default routes; settle.
    fleet.connect_all();
    {
        let fleet2 = fleet.clone();
        cluster.advance_with(3_000, 100, || fleet2.pump());
    }

    let flows = generate_flows(
        &topo.dpids(),
        &WorkloadConfig {
            flows_per_switch: cfg.flows_per_switch,
            elephant_fraction: cfg.elephant_fraction,
            seed: cfg.seed,
            ..Default::default()
        },
    );
    fleet.install_default_routes(&flows);

    // Discard setup traffic: measurement starts now.
    cluster.fabric.reset_matrix();

    // Measurement loop: one virtual second at a time.
    for _sec in 0..cfg.seconds {
        fleet.advance_traffic(&flows, 1);
        let fleet2 = fleet.clone();
        cluster.advance_with(1_000, 100, || fleet2.pump());
    }

    // ----- harvest -----
    let hives = cluster.ids();
    let n = hives.len();

    // Bee-message matrix summed over every hive's instrumentation.
    let mut msg_matrix = vec![vec![0u64; n]; n];
    for id in &hives {
        let instr = cluster.hive(*id).instrumentation();
        let instr = instr.lock();
        for (&(src, dst), &count) in &instr.msg_matrix {
            if src >= 1 && dst >= 1 && (src as usize) <= n && (dst as usize) <= n {
                msg_matrix[(src - 1) as usize][(dst - 1) as usize] += count;
            }
        }
    }
    let total_msgs: u64 = msg_matrix.iter().flatten().sum();
    let diagonal: u64 = (0..n).map(|i| msg_matrix[i][i]).sum();
    let locality = if total_msgs == 0 {
        0.0
    } else {
        diagonal as f64 / total_msgs as f64
    };

    // Hot hive over off-diagonal messages.
    let mut hot_hive = None;
    let off_total: u64 = total_msgs - diagonal;
    if off_total > 0 {
        let mut best = (HiveId(1), 0u64);
        for (i, &h) in hives.iter().enumerate() {
            let touched: u64 = (0..n)
                .map(|j| {
                    if j != i {
                        msg_matrix[i][j] + msg_matrix[j][i]
                    } else {
                        0
                    }
                })
                .sum();
            if touched > best.1 {
                best = (h, touched);
            }
        }
        hot_hive = Some((best.0, best.1 as f64 / (off_total * 2) as f64 * 2.0));
    }

    let matrix = cluster.matrix();
    let bw_series = matrix.series(&[FrameKind::App, FrameKind::Control]);
    let app_series = matrix.series(&[FrameKind::App]);
    let control_series = matrix.series(&[FrameKind::Control]);
    let raft_series = matrix.series(&[FrameKind::Raft]);
    let lookup = |series: &[(u64, u64)], t: u64| {
        series
            .iter()
            .find(|&&(ts, _)| ts == t)
            .map(|&(_, b)| b)
            .unwrap_or(0)
    };
    let bw_by_kind = bw_series
        .iter()
        .map(|&(t, _)| {
            (
                t,
                lookup(&app_series, t),
                lookup(&control_series, t),
                lookup(&raft_series, t),
            )
        })
        .collect();

    let te_app = match cfg.variant {
        TeVariant::Naive => NAIVE_TE_APP,
        _ => TE_COLLECT_APP,
    };
    let te_bees_per_hive: BTreeMap<u32, usize> = hives
        .iter()
        .map(|&h| (h.0, cluster.hive(h).local_bee_count(te_app)))
        .filter(|&(_, c)| c > 0)
        .collect();
    let migrations: u64 = hives
        .iter()
        .map(|&h| cluster.hive(h).counters().migrations_in)
        .sum();

    let _ = TE_ROUTE_APP; // referenced for docs completeness

    Figure4Result {
        hives,
        msg_matrix,
        bw_series,
        bw_by_kind,
        hot_hive,
        locality,
        te_bees_per_hive,
        migrations,
        feedback,
        total_bytes: matrix.total(&[FrameKind::App, FrameKind::Control]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_naive_centralizes() {
        let r = run_figure4(&Figure4Config::small(TeVariant::Naive));
        // One TE bee in the whole cluster.
        assert_eq!(r.te_bees_per_hive.values().sum::<usize>(), 1);
        // Most off-diagonal traffic touches one hive.
        let (_, share) = r.hot_hive.expect("cross-hive traffic exists");
        assert!(
            share > 0.8,
            "naive TE should centralize, hot share = {share}"
        );
    }

    #[test]
    fn small_decoupled_localizes() {
        let r = run_figure4(&Figure4Config::small(TeVariant::Decoupled));
        // Collection bees spread across hives.
        assert!(
            r.te_bees_per_hive.len() > 1,
            "bees on multiple hives: {:?}",
            r.te_bees_per_hive
        );
        // Most messages are processed locally.
        assert!(
            r.locality > 0.7,
            "decoupled TE should be local, locality = {}",
            r.locality
        );
    }

    #[test]
    fn small_optimized_migrates_and_localizes() {
        let r = run_figure4(&Figure4Config::small(TeVariant::Optimized));
        assert!(r.migrations > 0, "optimizer should have migrated bees");
        // After migration, collection bees are spread out again.
        assert!(
            r.te_bees_per_hive.len() > 1,
            "bees should leave hive 1: {:?}",
            r.te_bees_per_hive
        );
    }
}
