//! Application analytics over merged instrumentation data (paper §3: "This
//! merged instrumentation data is further used to find the optimal placement
//! of bees and is also utilized for application analytics.").
//!
//! Builds human-readable reports from [`HiveMetrics`] windows: per-app load
//! distribution, message provenance ("packet out messages are emitted …
//! upon receiving 80% of packet in's"), and hive load balance.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::id::HiveId;
use crate::metrics::{
    ExecutorStats, HiveMetrics, LatencyHistogram, MsgLatency, ProvenanceKey, LATENCY_BUCKETS_US,
};

/// Short type name (drop module path) for display.
pub(crate) fn short_type(ty: &str) -> &str {
    ty.rsplit("::").next().unwrap_or(ty)
}

/// Aggregated analytics across any number of metrics windows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Analytics {
    /// Per-app totals: (messages, bytes, handler nanos, errors).
    per_app: BTreeMap<String, AppLoad>,
    /// Provenance counters.
    provenance: BTreeMap<ProvenanceKey, u64>,
    /// Typed-input counters per app+type (provenance denominators), summed
    /// from each app's message counts.
    msgs_per_hive: BTreeMap<u32, u64>,
    /// Per (app, bee) message counts (for skew analysis).
    per_bee: BTreeMap<(String, u64), u64>,
    /// Parallel-executor counters per hive (empty for sequential hives).
    executor_per_hive: BTreeMap<u32, ExecutorStats>,
    /// Queue-wait / runtime histograms per (app, message type).
    latency: BTreeMap<(String, String), MsgLatency>,
    /// Handler failures by kind across all hives: `[errors, panics]`.
    handler_failures: [u64; 2],
    /// Supervised redeliveries across all hives.
    redeliveries: u64,
    /// Dead-lettered messages across all hives.
    dead_letters: u64,
    /// Undecodable frames/payloads across all hives.
    decode_errors: u64,
    /// Latest quarantined-bees gauge per hive (last report wins).
    quarantined_per_hive: BTreeMap<u32, u64>,
    /// Reliable-channel retransmissions across all hives.
    retransmits: u64,
    /// Duplicate frames suppressed by receiver dedup across all hives.
    dups_suppressed: u64,
    /// Standalone channel ack frames across all hives.
    channel_acks: u64,
    /// Latest outbox-depth gauge per hive (last report wins).
    outbox_depth_per_hive: BTreeMap<u32, u64>,
    /// Latest registry snapshot-index gauge per hive (last report wins).
    snapshot_index_per_hive: BTreeMap<u32, u64>,
    /// Latest registry snapshot-lag gauge per hive (last report wins).
    snapshot_lag_per_hive: BTreeMap<u32, u64>,
    /// Registry snapshots installed from peers across all hives.
    snapshot_installs: u64,
    /// Torn journal tails truncated during recovery across all hives.
    journal_torn_truncations: u64,
    /// When this analytics instance was created (drives the uptime gauge).
    /// Not serialized: a deserialized instance reports zero uptime.
    #[serde(skip)]
    started: Option<std::time::Instant>,
}

/// One application's aggregate load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AppLoad {
    /// Messages processed.
    pub msgs: u64,
    /// Wire bytes received.
    pub bytes: u64,
    /// Nanoseconds spent in handlers.
    pub handler_nanos: u64,
    /// Handler errors (rolled-back transactions).
    pub errors: u64,
    /// Number of distinct bees observed.
    pub bees: u64,
}

impl Analytics {
    /// Empty analytics.
    pub fn new() -> Self {
        Analytics {
            started: Some(std::time::Instant::now()),
            ..Self::default()
        }
    }

    /// Seconds since [`Analytics::new`] was called (0.0 for deserialized or
    /// `Default`-constructed instances).
    pub fn uptime_seconds(&self) -> f64 {
        self.started.map_or(0.0, |s| s.elapsed().as_secs_f64())
    }

    /// Folds one metrics report in.
    pub fn ingest(&mut self, report: &HiveMetrics) {
        for snap in &report.bees {
            let load = self.per_app.entry(snap.app.clone()).or_default();
            load.msgs += snap.stats.msgs_in;
            load.bytes += snap.stats.bytes_in;
            load.handler_nanos += snap.stats.handler_nanos;
            load.errors += snap.stats.errors;
            *self.msgs_per_hive.entry(snap.hive.0).or_insert(0) += snap.stats.msgs_in;
            *self
                .per_bee
                .entry((snap.app.clone(), snap.bee.0))
                .or_insert(0) += snap.stats.msgs_in;
        }
        for (key, count) in &report.provenance {
            *self.provenance.entry(key.clone()).or_insert(0) += count;
        }
        if !report.executor.is_empty() {
            self.executor_per_hive
                .entry(report.hive.0)
                .or_default()
                .merge(&report.executor);
        }
        for (app, ty, lat) in &report.latency {
            self.latency
                .entry((app.clone(), ty.clone()))
                .or_default()
                .merge(lat);
        }
        self.handler_failures[0] += report.handler_failures[0];
        self.handler_failures[1] += report.handler_failures[1];
        self.redeliveries += report.redeliveries;
        self.dead_letters += report.dead_letters;
        self.decode_errors += report.decode_errors;
        self.quarantined_per_hive
            .insert(report.hive.0, report.quarantined);
        self.retransmits += report.retransmits;
        self.dups_suppressed += report.dups_suppressed;
        self.channel_acks += report.channel_acks;
        self.outbox_depth_per_hive
            .insert(report.hive.0, report.outbox_depth);
        self.snapshot_index_per_hive
            .insert(report.hive.0, report.snapshot_index);
        self.snapshot_lag_per_hive
            .insert(report.hive.0, report.snapshot_lag);
        self.snapshot_installs += report.snapshot_installs;
        self.journal_torn_truncations += report.journal_torn_truncations;
        // Recompute bee counts.
        let mut bees_per_app: BTreeMap<&String, u64> = BTreeMap::new();
        for (app, _) in self.per_bee.keys() {
            *bees_per_app.entry(app).or_insert(0) += 1;
        }
        let counts: Vec<(String, u64)> = bees_per_app
            .into_iter()
            .map(|(a, c)| (a.clone(), c))
            .collect();
        for (app, count) in counts {
            if let Some(load) = self.per_app.get_mut(&app) {
                load.bees = count;
            }
        }
    }

    /// Per-app loads.
    pub fn apps(&self) -> impl Iterator<Item = (&String, &AppLoad)> {
        self.per_app.iter()
    }

    /// The load of one app.
    pub fn app(&self, name: &str) -> Option<AppLoad> {
        self.per_app.get(name).copied()
    }

    /// Message skew for an app: the share of its messages processed by its
    /// busiest bee (1.0 = fully centralized, 1/n = perfectly balanced).
    pub fn skew(&self, app: &str) -> Option<f64> {
        let counts: Vec<u64> = self
            .per_bee
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|(_, &c)| c)
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        counts.iter().max().map(|&m| m as f64 / total as f64)
    }

    /// Parallel-executor counters per hive (hives that ran sequentially for
    /// the whole window are absent).
    pub fn executor_per_hive(&self) -> impl Iterator<Item = (HiveId, &ExecutorStats)> {
        self.executor_per_hive.iter().map(|(&h, s)| (HiveId(h), s))
    }

    /// Latency histograms per (app, message type).
    pub fn latency(&self) -> impl Iterator<Item = (&(String, String), &MsgLatency)> {
        self.latency.iter()
    }

    /// The worst p99 handler runtime across an app's message types, in µs.
    pub fn p99_runtime_us(&self, app: &str) -> Option<u64> {
        self.latency
            .iter()
            .filter(|((a, _), _)| a == app)
            .filter_map(|(_, l)| l.runtime.p99_us())
            .max()
    }

    /// The worst p99 queue wait across an app's message types, in µs.
    pub fn p99_queue_wait_us(&self, app: &str) -> Option<u64> {
        self.latency
            .iter()
            .filter(|((a, _), _)| a == app)
            .filter_map(|(_, l)| l.queue_wait.p99_us())
            .max()
    }

    /// Handler failures by kind across all hives: `[errors, panics]`.
    pub fn handler_failures(&self) -> [u64; 2] {
        self.handler_failures
    }

    /// Supervised redeliveries across all hives.
    pub fn redeliveries(&self) -> u64 {
        self.redeliveries
    }

    /// Dead-lettered messages across all hives.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Undecodable frames/payloads across all hives.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Currently quarantined bees, summed over the latest gauge from each
    /// hive.
    pub fn quarantined_bees(&self) -> u64 {
        self.quarantined_per_hive.values().sum()
    }

    /// Reliable-channel retransmissions across all hives.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Duplicate frames suppressed by receiver dedup across all hives.
    pub fn dups_suppressed(&self) -> u64 {
        self.dups_suppressed
    }

    /// Standalone channel ack frames emitted across all hives.
    pub fn channel_acks(&self) -> u64 {
        self.channel_acks
    }

    /// Unacked envelopes buffered for resend, summed over the latest gauge
    /// from each hive.
    pub fn outbox_depth(&self) -> u64 {
        self.outbox_depth_per_hive.values().sum()
    }

    /// Highest registry compaction index reported by any hive.
    pub fn snapshot_index(&self) -> u64 {
        self.snapshot_index_per_hive
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Worst (largest) registry snapshot lag across the latest gauge from
    /// each hive — applied entries not yet covered by a durable snapshot.
    pub fn snapshot_lag(&self) -> u64 {
        self.snapshot_lag_per_hive
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Registry snapshots installed from peers across all hives.
    pub fn snapshot_installs(&self) -> u64 {
        self.snapshot_installs
    }

    /// Torn journal tails truncated during recovery across all hives.
    pub fn journal_torn_truncations(&self) -> u64 {
        self.journal_torn_truncations
    }

    /// Renders everything as Prometheus text exposition format. Each metric
    /// family header appears exactly once; histograms use cumulative `le`
    /// buckets in seconds per Prometheus convention. Message-type labels use
    /// short type names (module paths stripped).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP beehive_build_info Build metadata; the value is always 1.\n");
        out.push_str("# TYPE beehive_build_info gauge\n");
        push_sample(
            &mut out,
            "beehive_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                (
                    "git_sha",
                    option_env!("BEEHIVE_GIT_SHA").unwrap_or("unknown"),
                ),
            ],
            1.0,
        );
        out.push_str("# HELP beehive_uptime_seconds Seconds since analytics started.\n");
        out.push_str("# TYPE beehive_uptime_seconds gauge\n");
        push_sample(
            &mut out,
            "beehive_uptime_seconds",
            &[],
            self.uptime_seconds(),
        );
        out.push_str("# HELP beehive_app_messages_total Messages processed per application.\n");
        out.push_str("# TYPE beehive_app_messages_total counter\n");
        for (app, load) in &self.per_app {
            push_sample(
                &mut out,
                "beehive_app_messages_total",
                &[("app", app)],
                load.msgs as f64,
            );
        }
        out.push_str("# HELP beehive_app_bytes_total Wire bytes received per application.\n");
        out.push_str("# TYPE beehive_app_bytes_total counter\n");
        for (app, load) in &self.per_app {
            push_sample(
                &mut out,
                "beehive_app_bytes_total",
                &[("app", app)],
                load.bytes as f64,
            );
        }
        out.push_str("# HELP beehive_app_handler_seconds_total Time spent in rcv functions.\n");
        out.push_str("# TYPE beehive_app_handler_seconds_total counter\n");
        for (app, load) in &self.per_app {
            push_sample(
                &mut out,
                "beehive_app_handler_seconds_total",
                &[("app", app)],
                load.handler_nanos as f64 / 1e9,
            );
        }
        out.push_str("# HELP beehive_app_errors_total Rolled-back handler invocations.\n");
        out.push_str("# TYPE beehive_app_errors_total counter\n");
        for (app, load) in &self.per_app {
            push_sample(
                &mut out,
                "beehive_app_errors_total",
                &[("app", app)],
                load.errors as f64,
            );
        }
        out.push_str("# HELP beehive_app_bees Distinct bees observed per application.\n");
        out.push_str("# TYPE beehive_app_bees gauge\n");
        for (app, load) in &self.per_app {
            push_sample(
                &mut out,
                "beehive_app_bees",
                &[("app", app)],
                load.bees as f64,
            );
        }
        out.push_str("# HELP beehive_hive_messages_total Messages processed per hive.\n");
        out.push_str("# TYPE beehive_hive_messages_total counter\n");
        for (hive, msgs) in &self.msgs_per_hive {
            let h = hive.to_string();
            push_sample(
                &mut out,
                "beehive_hive_messages_total",
                &[("hive", &h)],
                *msgs as f64,
            );
        }
        out.push_str(
            "# HELP beehive_provenance_emissions_total Emissions of out_type caused by in_type.\n",
        );
        out.push_str("# TYPE beehive_provenance_emissions_total counter\n");
        for (k, count) in &self.provenance {
            push_sample(
                &mut out,
                "beehive_provenance_emissions_total",
                &[
                    ("app", &k.app),
                    ("in_type", short_type(&k.in_type)),
                    ("out_type", short_type(&k.out_type)),
                ],
                *count as f64,
            );
        }
        out.push_str("# HELP beehive_executor_rounds_total Parallel executor rounds per hive.\n");
        out.push_str("# TYPE beehive_executor_rounds_total counter\n");
        for (hive, ex) in &self.executor_per_hive {
            let h = hive.to_string();
            push_sample(
                &mut out,
                "beehive_executor_rounds_total",
                &[("hive", &h)],
                ex.rounds as f64,
            );
        }
        out.push_str("# HELP beehive_executor_busy_seconds_total Worker busy time per hive.\n");
        out.push_str("# TYPE beehive_executor_busy_seconds_total counter\n");
        for (hive, ex) in &self.executor_per_hive {
            let h = hive.to_string();
            let busy: u64 = ex.workers.iter().map(|w| w.busy_nanos).sum();
            push_sample(
                &mut out,
                "beehive_executor_busy_seconds_total",
                &[("hive", &h)],
                busy as f64 / 1e9,
            );
        }
        // Fault-containment families render unconditionally (zeros visible)
        // so dashboards and smoke tests can rely on their presence.
        out.push_str("# HELP beehive_handler_failures_total Failed handler invocations by kind.\n");
        out.push_str("# TYPE beehive_handler_failures_total counter\n");
        push_sample(
            &mut out,
            "beehive_handler_failures_total",
            &[("kind", "error")],
            self.handler_failures[0] as f64,
        );
        push_sample(
            &mut out,
            "beehive_handler_failures_total",
            &[("kind", "panic")],
            self.handler_failures[1] as f64,
        );
        out.push_str("# HELP beehive_redeliveries_total Supervised redelivery attempts.\n");
        out.push_str("# TYPE beehive_redeliveries_total counter\n");
        push_sample(
            &mut out,
            "beehive_redeliveries_total",
            &[],
            self.redeliveries as f64,
        );
        out.push_str(
            "# HELP beehive_dead_letters_total Messages recorded in dead-letter queues.\n",
        );
        out.push_str("# TYPE beehive_dead_letters_total counter\n");
        push_sample(
            &mut out,
            "beehive_dead_letters_total",
            &[],
            self.dead_letters as f64,
        );
        out.push_str("# HELP beehive_decode_errors_total Undecodable frames or payloads.\n");
        out.push_str("# TYPE beehive_decode_errors_total counter\n");
        push_sample(
            &mut out,
            "beehive_decode_errors_total",
            &[],
            self.decode_errors as f64,
        );
        out.push_str("# HELP beehive_quarantined_bees Bees currently quarantined.\n");
        out.push_str("# TYPE beehive_quarantined_bees gauge\n");
        push_sample(
            &mut out,
            "beehive_quarantined_bees",
            &[],
            self.quarantined_bees() as f64,
        );
        // Reliable-channel families also render unconditionally, so smoke
        // tests can grep for zeros as well as for activity.
        out.push_str(
            "# HELP beehive_retransmits_total Channel frames retransmitted after an ack timeout.\n",
        );
        out.push_str("# TYPE beehive_retransmits_total counter\n");
        push_sample(
            &mut out,
            "beehive_retransmits_total",
            &[],
            self.retransmits as f64,
        );
        out.push_str(
            "# HELP beehive_dups_suppressed_total Duplicate frames absorbed by receiver dedup.\n",
        );
        out.push_str("# TYPE beehive_dups_suppressed_total counter\n");
        push_sample(
            &mut out,
            "beehive_dups_suppressed_total",
            &[],
            self.dups_suppressed as f64,
        );
        out.push_str("# HELP beehive_channel_acks_total Standalone channel ack frames emitted.\n");
        out.push_str("# TYPE beehive_channel_acks_total counter\n");
        push_sample(
            &mut out,
            "beehive_channel_acks_total",
            &[],
            self.channel_acks as f64,
        );
        out.push_str(
            "# HELP beehive_outbox_depth Unacked envelopes buffered for resend across hives.\n",
        );
        out.push_str("# TYPE beehive_outbox_depth gauge\n");
        push_sample(
            &mut out,
            "beehive_outbox_depth",
            &[],
            self.outbox_depth() as f64,
        );
        // Durability families render unconditionally too: the restart-storm
        // smoke job greps these for snapshot installs and corruption counts.
        out.push_str(
            "# HELP beehive_snapshot_index Highest registry log index covered by a durable snapshot.\n",
        );
        out.push_str("# TYPE beehive_snapshot_index gauge\n");
        push_sample(
            &mut out,
            "beehive_snapshot_index",
            &[],
            self.snapshot_index() as f64,
        );
        out.push_str(
            "# HELP beehive_snapshot_lag Applied registry entries not yet covered by a snapshot (worst hive).\n",
        );
        out.push_str("# TYPE beehive_snapshot_lag gauge\n");
        push_sample(
            &mut out,
            "beehive_snapshot_lag",
            &[],
            self.snapshot_lag() as f64,
        );
        out.push_str(
            "# HELP beehive_snapshot_installs_total Registry snapshots installed from peers.\n",
        );
        out.push_str("# TYPE beehive_snapshot_installs_total counter\n");
        push_sample(
            &mut out,
            "beehive_snapshot_installs_total",
            &[],
            self.snapshot_installs as f64,
        );
        out.push_str(
            "# HELP beehive_journal_torn_truncations_total Torn journal tails truncated during recovery.\n",
        );
        out.push_str("# TYPE beehive_journal_torn_truncations_total counter\n");
        push_sample(
            &mut out,
            "beehive_journal_torn_truncations_total",
            &[],
            self.journal_torn_truncations as f64,
        );
        push_histogram_family(
            &mut out,
            "beehive_queue_wait_seconds",
            "Local queue wait before the handler ran.",
            self.latency.iter().map(|(k, l)| (k, &l.queue_wait)),
        );
        push_histogram_family(
            &mut out,
            "beehive_handler_runtime_seconds",
            "Time inside the rcv function.",
            self.latency.iter().map(|(k, l)| (k, &l.runtime)),
        );
        out
    }

    /// Hive balance: (busiest hive, its share of all messages).
    pub fn hot_hive(&self) -> Option<(HiveId, f64)> {
        let total: u64 = self.msgs_per_hive.values().sum();
        if total == 0 {
            return None;
        }
        self.msgs_per_hive
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&h, &c)| (HiveId(h), c as f64 / total as f64))
    }

    /// Provenance ratios: for each `(app, in_type, out_type)`, emissions per
    /// delivered input of that type (requires the denominators shipped in
    /// the same reports via `BeeStats::msgs_in`; we use per-app totals when
    /// exact per-type counts are unavailable in the aggregate).
    pub fn provenance_rows(&self) -> Vec<ProvenanceRow> {
        self.provenance
            .iter()
            .map(|(k, &count)| {
                let denom = self.per_app.get(&k.app).map(|l| l.msgs).unwrap_or(0).max(1);
                ProvenanceRow {
                    app: k.app.clone(),
                    in_type: short_type(&k.in_type).to_string(),
                    out_type: short_type(&k.out_type).to_string(),
                    emissions: count,
                    per_app_input_ratio: count as f64 / denom as f64,
                }
            })
            .collect()
    }
}

/// Escapes a Prometheus label value.
fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Appends one `name{labels} value` exposition line.
fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_value(value));
    out.push('\n');
}

/// Formats a sample value: integers without a fraction, everything else via
/// `{}` (shortest roundtrip form).
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends one histogram family: cumulative `_bucket{le=...}` lines plus
/// `_sum` and `_count` per (app, message type) series, bounds in seconds.
fn push_histogram_family<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    series: impl Iterator<Item = (&'a (String, String), &'a LatencyHistogram)>,
) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} histogram\n"));
    for ((app, ty), hist) in series {
        let ty = short_type(ty);
        let mut cumulative = 0u64;
        for (i, &count) in hist.buckets.iter().enumerate() {
            cumulative += count;
            let le = match LATENCY_BUCKETS_US.get(i) {
                Some(&bound) => format_value(bound as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            push_sample(
                out,
                &format!("{name}_bucket"),
                &[("app", app), ("msg", ty), ("le", &le)],
                cumulative as f64,
            );
        }
        push_sample(
            out,
            &format!("{name}_sum"),
            &[("app", app), ("msg", ty)],
            hist.sum_us as f64 / 1e6,
        );
        push_sample(
            out,
            &format!("{name}_count"),
            &[("app", app), ("msg", ty)],
            hist.count as f64,
        );
    }
}

/// One provenance line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceRow {
    /// Application.
    pub app: String,
    /// Input message type (short name).
    pub in_type: String,
    /// Output message type (short name).
    pub out_type: String,
    /// Total emissions observed.
    pub emissions: u64,
    /// Emissions per message the app processed.
    pub per_app_input_ratio: f64,
}

impl fmt::Display for Analytics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "application analytics:")?;
        for (app, load) in &self.per_app {
            writeln!(
                f,
                "  {app}: {} msgs, {} bytes, {:.1} ms in handlers, {} errors, {} bees{}",
                load.msgs,
                load.bytes,
                load.handler_nanos as f64 / 1e6,
                load.errors,
                load.bees,
                self.skew(app)
                    .map(|s| format!(", top-bee share {:.0}%", s * 100.0))
                    .unwrap_or_default()
            )?;
        }
        if let Some((hive, share)) = self.hot_hive() {
            writeln!(
                f,
                "  busiest hive: {hive} ({:.0}% of messages)",
                share * 100.0
            )?;
        }
        let fault_total = self.handler_failures[0]
            + self.handler_failures[1]
            + self.redeliveries
            + self.dead_letters
            + self.decode_errors
            + self.quarantined_bees();
        if fault_total != 0 {
            writeln!(
                f,
                "  faults: {} handler errors, {} panics, {} redeliveries, {} dead letters, \
                 {} decode errors, {} quarantined bees",
                self.handler_failures[0],
                self.handler_failures[1],
                self.redeliveries,
                self.dead_letters,
                self.decode_errors,
                self.quarantined_bees(),
            )?;
        }
        for (hive, ex) in self.executor_per_hive() {
            let busy_ms: u64 = ex.workers.iter().map(|w| w.busy_nanos).sum::<u64>() / 1_000_000;
            writeln!(
                f,
                "  executor on {hive}: {} rounds, {} bees fanned out (max depth {}), {} workers, {} ms busy",
                ex.rounds,
                ex.queued_bees,
                ex.max_queue_depth,
                ex.workers.len(),
                busy_ms,
            )?;
        }
        for ((app, ty), lat) in &self.latency {
            let (Some(wait), Some(run)) = (lat.queue_wait.p99_us(), lat.runtime.p99_us()) else {
                continue;
            };
            writeln!(
                f,
                "  latency {app}/{}: p99 wait {wait}us, p99 run {run}us ({} msgs)",
                short_type(ty),
                lat.runtime.count,
            )?;
        }
        let rows = self.provenance_rows();
        if !rows.is_empty() {
            writeln!(f, "  provenance:")?;
            for r in rows {
                writeln!(
                    f,
                    "    {}: {} -> {} ({} emissions, {:.2} per input)",
                    r.app, r.in_type, r.out_type, r.emissions, r.per_app_input_ratio
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::BeeId;
    use crate::metrics::{BeeStats, BeeStatsSnapshot};

    fn report(hive: u32, app: &str, bee: u32, msgs: u64) -> HiveMetrics {
        let mut stats = BeeStats::default();
        for _ in 0..msgs {
            stats.record_in(HiveId(hive), Some(BeeId::new(HiveId(9), 9)), 100);
        }
        HiveMetrics {
            hive: HiveId(hive),
            seq: 1,
            now_ms: 1000,
            bees: vec![BeeStatsSnapshot {
                app: app.into(),
                bee: BeeId::new(HiveId(hive), bee),
                hive: HiveId(hive),
                pinned: false,
                cells: 1,
                stats,
            }],
            provenance: vec![(
                ProvenanceKey {
                    app: app.into(),
                    in_type: "mod::PacketIn".into(),
                    out_type: "mod::PacketOut".into(),
                },
                msgs * 8 / 10,
            )],
            executor: ExecutorStats::default(),
            latency: Vec::new(),
            handler_failures: [0, 0],
            redeliveries: 0,
            dead_letters: 0,
            decode_errors: 0,
            quarantined: 0,
            retransmits: 0,
            dups_suppressed: 0,
            channel_acks: 0,
            outbox_depth: 0,
            snapshot_index: 0,
            snapshot_lag: 0,
            snapshot_installs: 0,
            journal_torn_truncations: 0,
        }
    }

    #[test]
    fn executor_stats_aggregate_per_hive() {
        let mut a = Analytics::new();
        let mut r = report(1, "ls", 1, 10);
        r.executor.record_round(4);
        r.executor.record_batch(0, 10, 1_000);
        a.ingest(&r);
        a.ingest(&report(2, "ls", 2, 10)); // sequential hive: no executor row
        let rows: Vec<_> = a.executor_per_hive().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, HiveId(1));
        assert_eq!(rows[0].1.rounds, 1);
        assert!(a.to_string().contains("executor on"));
    }

    #[test]
    fn ingest_accumulates_loads() {
        let mut a = Analytics::new();
        a.ingest(&report(1, "ls", 1, 10));
        a.ingest(&report(2, "ls", 2, 30));
        let load = a.app("ls").unwrap();
        assert_eq!(load.msgs, 40);
        assert_eq!(load.bytes, 4000);
        assert_eq!(load.bees, 2);
    }

    #[test]
    fn skew_detects_imbalance() {
        let mut a = Analytics::new();
        a.ingest(&report(1, "ls", 1, 90));
        a.ingest(&report(2, "ls", 2, 10));
        assert!((a.skew("ls").unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(a.skew("nope"), None);
    }

    #[test]
    fn hot_hive_share() {
        let mut a = Analytics::new();
        a.ingest(&report(1, "ls", 1, 75));
        a.ingest(&report(2, "ls", 2, 25));
        let (h, share) = a.hot_hive().unwrap();
        assert_eq!(h, HiveId(1));
        assert!((share - 0.75).abs() < 1e-9);
    }

    #[test]
    fn latency_histograms_aggregate_and_render() {
        let mut r = report(1, "te", 1, 3);
        let mut lat = MsgLatency::default();
        lat.queue_wait.observe(900); // → 1ms bucket
        lat.queue_wait.observe(40);
        lat.queue_wait.observe(40);
        lat.runtime.observe(400);
        lat.runtime.observe(400);
        lat.runtime.observe(9_000);
        r.latency.push(("te".into(), "mod::StatReply".into(), lat));
        let mut a = Analytics::new();
        a.ingest(&r);
        a.ingest(&r); // two windows fold together
        assert_eq!(a.p99_runtime_us("te"), Some(10_000));
        assert_eq!(a.p99_queue_wait_us("te"), Some(1_000));
        assert_eq!(a.p99_runtime_us("nope"), None);

        let text = a.render_prometheus();
        // Families appear exactly once.
        for family in [
            "beehive_app_messages_total",
            "beehive_queue_wait_seconds",
            "beehive_handler_runtime_seconds",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} ")).count(),
                1,
                "family {family} duplicated:\n{text}"
            );
        }
        // Histogram counts match observations across both windows; labels
        // use short type names; +Inf closes the bucket series.
        assert!(
            text.contains("beehive_handler_runtime_seconds_count{app=\"te\",msg=\"StatReply\"} 6"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\"} 6"), "{text}");
        assert!(text.contains(
            "beehive_queue_wait_seconds_bucket{app=\"te\",msg=\"StatReply\",le=\"0.00005\"} 4"
        ));
        assert!(text.contains("beehive_app_messages_total{app=\"te\"} 6"));
        // The Display report cites p99s too.
        assert!(a.to_string().contains("p99"), "{a}");
    }

    #[test]
    fn fault_counters_aggregate_and_render_unconditionally() {
        let mut a = Analytics::new();
        // Zero-state exposition still carries every fault family.
        let text = a.render_prometheus();
        assert!(
            text.contains("beehive_handler_failures_total{kind=\"error\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("beehive_handler_failures_total{kind=\"panic\"} 0"),
            "{text}"
        );
        assert!(text.contains("beehive_redeliveries_total 0"), "{text}");
        assert!(text.contains("beehive_dead_letters_total 0"), "{text}");
        assert!(text.contains("beehive_decode_errors_total 0"), "{text}");
        assert!(text.contains("beehive_quarantined_bees 0"), "{text}");

        let mut r1 = report(1, "ls", 1, 5);
        r1.handler_failures = [2, 1];
        r1.redeliveries = 3;
        r1.dead_letters = 1;
        r1.decode_errors = 4;
        r1.quarantined = 1;
        a.ingest(&r1);
        // Counters accumulate; the per-hive gauge is replaced, not summed.
        let mut r1b = report(1, "ls", 1, 5);
        r1b.handler_failures = [1, 0];
        r1b.quarantined = 0;
        a.ingest(&r1b);
        let mut r2 = report(2, "ls", 2, 5);
        r2.quarantined = 2;
        a.ingest(&r2);

        assert_eq!(a.handler_failures(), [3, 1]);
        assert_eq!(a.redeliveries(), 3);
        assert_eq!(a.dead_letters(), 1);
        assert_eq!(a.decode_errors(), 4);
        assert_eq!(a.quarantined_bees(), 2, "hive 1 recovered, hive 2 has two");

        let text = a.render_prometheus();
        assert!(
            text.contains("beehive_handler_failures_total{kind=\"error\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("beehive_handler_failures_total{kind=\"panic\"} 1"),
            "{text}"
        );
        assert!(text.contains("beehive_quarantined_bees 2"), "{text}");
        assert!(a.to_string().contains("faults: 3 handler errors"), "{a}");
    }

    #[test]
    fn channel_counters_aggregate_and_render_unconditionally() {
        let mut a = Analytics::new();
        // Zero-state exposition still carries every channel family, so CI
        // can grep for zeros before any traffic flows.
        let text = a.render_prometheus();
        assert!(text.contains("beehive_retransmits_total 0"), "{text}");
        assert!(text.contains("beehive_dups_suppressed_total 0"), "{text}");
        assert!(text.contains("beehive_channel_acks_total 0"), "{text}");
        assert!(text.contains("beehive_outbox_depth 0"), "{text}");

        let mut r1 = report(1, "ls", 1, 5);
        r1.retransmits = 4;
        r1.dups_suppressed = 2;
        r1.channel_acks = 3;
        r1.outbox_depth = 6;
        a.ingest(&r1);
        // Counters accumulate; the depth gauge is replaced per hive.
        let mut r1b = report(1, "ls", 1, 5);
        r1b.retransmits = 1;
        r1b.outbox_depth = 0;
        a.ingest(&r1b);
        let mut r2 = report(2, "ls", 2, 5);
        r2.outbox_depth = 2;
        a.ingest(&r2);

        assert_eq!(a.retransmits(), 5);
        assert_eq!(a.dups_suppressed(), 2);
        assert_eq!(a.channel_acks(), 3);
        assert_eq!(a.outbox_depth(), 2, "hive 1 drained, hive 2 holds two");

        let text = a.render_prometheus();
        assert!(text.contains("beehive_retransmits_total 5"), "{text}");
        assert!(text.contains("beehive_dups_suppressed_total 2"), "{text}");
        assert!(text.contains("beehive_channel_acks_total 3"), "{text}");
        assert!(text.contains("beehive_outbox_depth 2"), "{text}");
    }

    #[test]
    fn durability_counters_aggregate_and_render_unconditionally() {
        let mut a = Analytics::new();
        // Zero-state exposition still carries every durability family, so
        // the restart-storm smoke job can grep before any snapshot exists.
        let text = a.render_prometheus();
        assert!(text.contains("beehive_snapshot_index 0"), "{text}");
        assert!(text.contains("beehive_snapshot_lag 0"), "{text}");
        assert!(text.contains("beehive_snapshot_installs_total 0"), "{text}");
        assert!(
            text.contains("beehive_journal_torn_truncations_total 0"),
            "{text}"
        );

        let mut r1 = report(1, "ls", 1, 5);
        r1.snapshot_index = 32;
        r1.snapshot_lag = 4;
        r1.snapshot_installs = 1;
        r1.journal_torn_truncations = 1;
        a.ingest(&r1);
        // Counters accumulate; the gauges are replaced per hive and the
        // cluster view takes the worst (max) hive.
        let mut r1b = report(1, "ls", 1, 5);
        r1b.snapshot_index = 64;
        r1b.snapshot_lag = 0;
        a.ingest(&r1b);
        let mut r2 = report(2, "ls", 2, 5);
        r2.snapshot_index = 40;
        r2.snapshot_lag = 7;
        r2.snapshot_installs = 2;
        a.ingest(&r2);

        assert_eq!(a.snapshot_index(), 64);
        assert_eq!(a.snapshot_lag(), 7, "worst hive wins");
        assert_eq!(a.snapshot_installs(), 3);
        assert_eq!(a.journal_torn_truncations(), 1);

        let text = a.render_prometheus();
        assert!(text.contains("beehive_snapshot_index 64"), "{text}");
        assert!(text.contains("beehive_snapshot_lag 7"), "{text}");
        assert!(text.contains("beehive_snapshot_installs_total 3"), "{text}");
        assert!(
            text.contains("beehive_journal_torn_truncations_total 1"),
            "{text}"
        );
    }

    #[test]
    fn provenance_rows_report_the_papers_example() {
        // "packet out messages are emitted … upon receiving 80% of packet in's"
        let mut a = Analytics::new();
        a.ingest(&report(1, "learning-switch", 1, 100));
        let rows = a.provenance_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].in_type, "PacketIn");
        assert_eq!(rows[0].out_type, "PacketOut");
        assert!((rows[0].per_app_input_ratio - 0.8).abs() < 1e-9);
        let text = a.to_string();
        assert!(text.contains("PacketIn -> PacketOut"));
    }
}
