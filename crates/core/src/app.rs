//! The programming abstraction: applications as sets of stateful functions
//! triggered by asynchronous messages (paper §2).
//!
//! An application declares, per message type, how the message **maps** to
//! state cells and what the **rcv** function does. The map declaration is
//! data ([`MapSpec`]), which is exactly what lets the platform infer the
//! paper's "how applications maintain their state": whole-dictionary access
//! is statically visible, so dictionaries become *monolithic* and the
//! feedback system can point at the handler responsible.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::cell::{Cell, Mapped};
use crate::control::ControlMsg;
use crate::error::Result;
use crate::id::{AppName, BeeId, HiveId};
use crate::message::{cast, Dst, Envelope, Message, MessageRegistry, Source, TypedMessage};
use crate::state::TxState;
use crate::trace::TraceContext;

/// Outcome of a rcv function. An `Err` rolls back the state transaction and
/// discards emitted messages.
pub type HandlerResult = std::result::Result<(), String>;

/// How a handler maps messages to cells.
#[allow(clippy::type_complexity)]
pub enum MapSpec {
    /// Compute per-message cells from the payload (`with S[msg.key]`).
    Custom(Box<dyn Fn(&dyn Message) -> Mapped + Send + Sync>),
    /// The handler needs these dictionaries *in their entirety*
    /// (`with S and T`). Declaring this makes every listed dictionary
    /// monolithic for the whole application.
    WholeDicts(Vec<String>),
    /// Process on a pinned, hive-local singleton bee (drivers, per-hive
    /// platform functions).
    LocalSingleton,
    /// Deliver to every existing local bee of the application
    /// (`foreach` clauses, e.g. periodic timers iterating local keys).
    LocalBroadcast,
}

impl std::fmt::Debug for MapSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapSpec::Custom(_) => write!(f, "Custom(..)"),
            MapSpec::WholeDicts(d) => write!(f, "WholeDicts({d:?})"),
            MapSpec::LocalSingleton => write!(f, "LocalSingleton"),
            MapSpec::LocalBroadcast => write!(f, "LocalBroadcast"),
        }
    }
}

type RcvFn = Box<dyn Fn(&dyn Message, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync>;

/// One `on <Message>` clause: a map declaration plus a rcv function.
pub struct HandlerDef {
    /// Human-readable handler name (feedback reports).
    pub name: String,
    /// Wire name of the message type this handler is triggered by.
    pub msg_type: &'static str,
    /// The map declaration.
    pub map: MapSpec,
    rcv: RcvFn,
}

impl HandlerDef {
    /// Runs the rcv function.
    pub fn rcv(&self, msg: &dyn Message, ctx: &mut RcvCtx<'_>) -> HandlerResult {
        (self.rcv)(msg, ctx)
    }
}

/// A control application.
pub struct App {
    name: AppName,
    handlers: Vec<HandlerDef>,
    /// msg type → handler indices.
    by_type: HashMap<&'static str, Vec<u16>>,
    monolithic: HashSet<String>,
    registrations: Vec<fn(&mut MessageRegistry)>,
}

impl App {
    /// Starts building an application.
    pub fn builder(name: impl Into<AppName>) -> AppBuilder {
        AppBuilder {
            name: name.into(),
            handlers: Vec::new(),
            registrations: Vec::new(),
        }
    }

    /// The application's name.
    pub fn name(&self) -> &AppName {
        &self.name
    }

    /// All handlers.
    pub fn handlers(&self) -> &[HandlerDef] {
        &self.handlers
    }

    /// The handler at `idx`.
    pub fn handler(&self, idx: u16) -> Option<&HandlerDef> {
        self.handlers.get(idx as usize)
    }

    /// Indices of handlers triggered by `msg_type`.
    pub fn handlers_for(&self, msg_type: &str) -> &[u16] {
        self.by_type.get(msg_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `dict` is monolithic (some handler maps it whole).
    pub fn is_monolithic(&self, dict: &str) -> bool {
        self.monolithic.contains(dict)
    }

    /// The monolithic dictionaries.
    pub fn monolithic_dicts(&self) -> impl Iterator<Item = &String> {
        self.monolithic.iter()
    }

    /// Evaluates handler `idx`'s map for `msg`, canonicalized against the
    /// application's monolithic dictionaries.
    pub fn map(&self, idx: u16, msg: &dyn Message) -> Mapped {
        let h = &self.handlers[idx as usize];
        let mapped = match &h.map {
            MapSpec::Custom(f) => f(msg),
            MapSpec::WholeDicts(dicts) => Mapped::Cells(dicts.iter().map(Cell::whole).collect()),
            MapSpec::LocalSingleton => Mapped::LocalSingleton,
            MapSpec::LocalBroadcast => Mapped::LocalBroadcast,
        };
        mapped.canonicalize(|d| self.is_monolithic(d))
    }

    /// Registers this app's message decoders into a hive's registry.
    pub fn register_messages(&self, registry: &mut MessageRegistry) {
        for f in &self.registrations {
            f(registry);
        }
    }

    /// Handlers that statically declare whole-dict access, per dictionary —
    /// the raw material for design feedback.
    pub fn whole_dict_handlers(&self) -> BTreeMap<String, Vec<String>> {
        let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for h in &self.handlers {
            if let MapSpec::WholeDicts(dicts) = &h.map {
                for d in dicts {
                    out.entry(d.clone()).or_default().push(h.name.clone());
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("handlers", &self.handlers.len())
            .field("monolithic", &self.monolithic)
            .finish()
    }
}

/// Fluent constructor for [`App`]s.
pub struct AppBuilder {
    name: AppName,
    handlers: Vec<HandlerDef>,
    registrations: Vec<fn(&mut MessageRegistry)>,
}

impl AppBuilder {
    fn push<M: TypedMessage>(
        &mut self,
        name: Option<String>,
        map: MapSpec,
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) {
        let msg_type = M::wire_name();
        let default_name = format!(
            "on<{}>#{}",
            msg_type.rsplit("::").next().unwrap_or(msg_type),
            self.handlers.len()
        );
        self.handlers.push(HandlerDef {
            name: name.unwrap_or(default_name),
            msg_type,
            map,
            rcv: Box::new(move |msg, ctx| {
                let typed = cast::<M>(msg).expect("handler invoked with wrong message type");
                rcv(typed, ctx)
            }),
        });
        self.registrations.push(|r| r.register::<M>());
    }

    /// `on M: with <cells from map(msg)>` — per-message cell mapping.
    pub fn handle<M: TypedMessage>(
        mut self,
        map: impl Fn(&M) -> Mapped + Send + Sync + 'static,
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) -> Self {
        self.push::<M>(
            None,
            MapSpec::Custom(Box::new(move |msg| {
                map(cast::<M>(msg).expect("map invoked with wrong message type"))
            })),
            rcv,
        );
        self
    }

    /// Like [`AppBuilder::handle`], with an explicit handler name for
    /// instrumentation and feedback reports.
    pub fn handle_named<M: TypedMessage>(
        mut self,
        name: impl Into<String>,
        map: impl Fn(&M) -> Mapped + Send + Sync + 'static,
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) -> Self {
        self.push::<M>(
            Some(name.into()),
            MapSpec::Custom(Box::new(move |msg| {
                map(cast::<M>(msg).expect("map invoked with wrong message type"))
            })),
            rcv,
        );
        self
    }

    /// `on M: with D1 and D2 (whole dictionaries)` — marks every listed
    /// dictionary monolithic for the whole app.
    pub fn handle_whole<M: TypedMessage>(
        mut self,
        name: impl Into<String>,
        dicts: &[&str],
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) -> Self {
        self.push::<M>(
            Some(name.into()),
            MapSpec::WholeDicts(dicts.iter().map(|s| s.to_string()).collect()),
            rcv,
        );
        self
    }

    /// `on M` handled by a pinned hive-local singleton bee.
    pub fn handle_local<M: TypedMessage>(
        mut self,
        name: impl Into<String>,
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) -> Self {
        self.push::<M>(Some(name.into()), MapSpec::LocalSingleton, rcv);
        self
    }

    /// `on M: foreach local bee` — e.g. periodic ticks iterating local keys.
    pub fn handle_broadcast<M: TypedMessage>(
        mut self,
        name: impl Into<String>,
        rcv: impl Fn(&M, &mut RcvCtx<'_>) -> HandlerResult + Send + Sync + 'static,
    ) -> Self {
        self.push::<M>(Some(name.into()), MapSpec::LocalBroadcast, rcv);
        self
    }

    /// Finalizes the application.
    pub fn build(self) -> App {
        let mut by_type: HashMap<&'static str, Vec<u16>> = HashMap::new();
        let mut monolithic = HashSet::new();
        for (i, h) in self.handlers.iter().enumerate() {
            by_type.entry(h.msg_type).or_default().push(i as u16);
            if let MapSpec::WholeDicts(dicts) = &h.map {
                monolithic.extend(dicts.iter().cloned());
            }
        }
        App {
            name: self.name,
            handlers: self.handlers,
            by_type,
            monolithic,
            registrations: self.registrations,
        }
    }
}

/// Everything a rcv function can do: transactional state access, emitting
/// messages, and platform operations. Created by the hive per invocation.
pub struct RcvCtx<'a> {
    pub(crate) hive: HiveId,
    pub(crate) app: AppName,
    pub(crate) bee: BeeId,
    pub(crate) src: Source,
    pub(crate) now_ms: u64,
    pub(crate) trace: TraceContext,
    pub(crate) deliveries: u32,
    pub(crate) tx: TxState<'a>,
    pub(crate) outbox: Vec<Envelope>,
    pub(crate) control_out: Vec<(HiveId, ControlMsg)>,
    pub(crate) retire: bool,
}

impl RcvCtx<'_> {
    /// The hive this invocation runs on.
    pub fn hive(&self) -> HiveId {
        self.hive
    }

    /// The bee executing this invocation.
    pub fn bee(&self) -> BeeId {
        self.bee
    }

    /// The application's name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The source of the message being processed.
    pub fn src(&self) -> Source {
        self.src
    }

    /// Current platform time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// The causal trace context of the message being processed. Emitted
    /// messages automatically become children of this span.
    pub fn trace(&self) -> TraceContext {
        self.trace
    }

    /// How many times this message has already failed and been redelivered.
    /// 0 on the first attempt. Handlers can use this to change behavior on
    /// retry (e.g. degrade gracefully before the message dead-letters).
    pub fn deliveries(&self) -> u32 {
        self.deliveries
    }

    // ----- state (transactional) -----

    /// Typed read of `dict[key]` through the transaction.
    pub fn get<T: serde::de::DeserializeOwned>(&self, dict: &str, key: &str) -> Result<Option<T>> {
        self.tx.get(dict, key)
    }

    /// Typed buffered write of `dict[key]`.
    pub fn put<T: serde::Serialize>(
        &mut self,
        dict: &str,
        key: impl Into<String>,
        value: &T,
    ) -> Result<()> {
        self.tx.put(dict, key, value)
    }

    /// Buffered delete of `dict[key]`.
    pub fn del(&mut self, dict: &str, key: &str) {
        self.tx.del(dict, key)
    }

    /// Whether `dict[key]` is visible.
    pub fn contains(&self, dict: &str, key: &str) -> bool {
        self.tx.contains(dict, key)
    }

    /// Keys of `dict` owned by this bee (through the transaction overlay).
    /// This is the `foreach` iteration surface: a bee sees only its colony.
    pub fn keys(&self, dict: &str) -> Vec<String> {
        self.tx.keys(dict)
    }

    // ----- messaging -----

    /// Emits a message to the whole control plane: every application whose
    /// handlers are triggered by this type will map and process it.
    pub fn emit<M: Message>(&mut self, msg: M) {
        self.outbox.push(Envelope {
            msg: Arc::new(msg),
            src: Source::Bee {
                bee: self.bee,
                hive: self.hive,
            },
            dst: Dst::Broadcast,
            trace: self.trace.child(self.hive),
            deliveries: 0,
        });
    }

    /// Emits a message only to one application.
    pub fn emit_to_app<M: Message>(&mut self, app: impl Into<AppName>, msg: M) {
        self.outbox.push(Envelope {
            msg: Arc::new(msg),
            src: Source::Bee {
                bee: self.bee,
                hive: self.hive,
            },
            dst: Dst::App(app.into()),
            trace: self.trace.child(self.hive),
            deliveries: 0,
        });
    }

    /// Sends a message directly to a specific bee of an application (replies).
    pub fn send_to_bee<M: Message>(&mut self, app: impl Into<AppName>, bee: BeeId, msg: M) {
        self.outbox.push(Envelope {
            msg: Arc::new(msg),
            src: Source::Bee {
                bee: self.bee,
                hive: self.hive,
            },
            dst: Dst::Bee {
                app: app.into(),
                bee,
                handler: None,
                fence: 0,
            },
            trace: self.trace.child(self.hive),
            deliveries: 0,
        });
    }

    // ----- platform operations -----

    /// Orders a live migration of `bee` (of app `app`, currently on
    /// `current`) to hive `to`. Used by the placement optimizer; available to
    /// applications implementing custom optimization strategies (paper §3:
    /// "it is straightforward to implement other optimization strategies").
    pub fn order_migration(
        &mut self,
        app: impl Into<AppName>,
        bee: BeeId,
        current: HiveId,
        to: HiveId,
    ) {
        self.control_out.push((
            current,
            ControlMsg::RequestMigration {
                app: app.into(),
                bee,
                to,
            },
        ));
    }

    /// Retires this bee once the current transaction commits **and** its
    /// state is empty: the colony is deleted from the registry and the bee
    /// is garbage-collected. Use after deleting the last entry of a
    /// fine-grained cell (e.g. a RIB prefix withdrawal) so empty colonies
    /// don't accumulate. A retire request on a bee with remaining state is
    /// ignored. Pinned (local singleton) bees never retire.
    pub fn retire(&mut self) {
        self.retire = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct MsgA {
        key: String,
    }
    crate::impl_message!(MsgA);

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct MsgB;
    crate::impl_message!(MsgB);

    fn sample_app() -> App {
        App::builder("test")
            .handle::<MsgA>(|m| Mapped::cell("S", &m.key), |_m, _ctx| Ok(()))
            .handle_whole::<MsgB>("route", &["S", "T"], |_m, _ctx| Ok(()))
            .handle_broadcast::<MsgB>("query", |_m, _ctx| Ok(()))
            .build()
    }

    #[test]
    fn builder_indexes_handlers_by_type() {
        let app = sample_app();
        assert_eq!(app.handlers_for(MsgA::wire_name()).len(), 1);
        assert_eq!(app.handlers_for(MsgB::wire_name()).len(), 2);
        assert!(app.handlers_for("unknown").is_empty());
    }

    #[test]
    fn whole_dict_declaration_makes_dict_monolithic() {
        let app = sample_app();
        assert!(app.is_monolithic("S"));
        assert!(app.is_monolithic("T"));
        assert!(!app.is_monolithic("U"));
    }

    #[test]
    fn per_key_maps_canonicalize_to_whole_when_monolithic() {
        let app = sample_app();
        let idx = app.handlers_for(MsgA::wire_name())[0];
        let mapped = app.map(idx, &MsgA { key: "sw1".into() });
        assert_eq!(mapped, Mapped::Cells(vec![Cell::whole("S")]));
    }

    #[test]
    fn per_key_maps_stay_per_key_without_monolithic_declaration() {
        let app = App::builder("clean")
            .handle::<MsgA>(|m| Mapped::cell("S", &m.key), |_m, _ctx| Ok(()))
            .build();
        let idx = app.handlers_for(MsgA::wire_name())[0];
        let mapped = app.map(idx, &MsgA { key: "sw1".into() });
        assert_eq!(mapped, Mapped::Cells(vec![Cell::new("S", "sw1")]));
    }

    #[test]
    fn whole_dict_handlers_reported_for_feedback() {
        let app = sample_app();
        let report = app.whole_dict_handlers();
        assert_eq!(report["S"], vec!["route".to_string()]);
        assert_eq!(report["T"], vec!["route".to_string()]);
    }

    #[test]
    fn map_evaluates_specs() {
        let app = sample_app();
        let b_handlers = app.handlers_for(MsgB::wire_name());
        assert_eq!(
            app.map(b_handlers[0], &MsgB),
            Mapped::Cells(vec![Cell::whole("S"), Cell::whole("T")])
        );
        assert_eq!(app.map(b_handlers[1], &MsgB), Mapped::LocalBroadcast);
    }

    #[test]
    fn app_registers_its_message_types() {
        let app = sample_app();
        let mut reg = MessageRegistry::new();
        app.register_messages(&mut reg);
        assert!(reg.knows(MsgA::wire_name()));
        assert!(reg.knows(MsgB::wire_name()));
    }
}
