//! Cells and mapped cells — the unit of state ownership and the routing key.
//!
//! A **cell** is one `(dictionary, key)` pair of an application's state. The
//! set of cells a message needs (its **mapped cells**) is what the platform
//! uses to route the message: messages whose mapped cells intersect are
//! guaranteed to be processed by the same bee (paper §3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Reserved key representing "the whole dictionary". Produced only by the
/// platform when an application statically declares whole-dictionary access;
/// applications cannot use it as an ordinary key.
pub const WHOLE_DICT_KEY: &str = "*";

/// A single `(dict, key)` cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Dictionary name.
    pub dict: String,
    /// Entry key ([`WHOLE_DICT_KEY`] for whole-dictionary cells).
    pub key: String,
}

impl Cell {
    /// A per-key cell. Panics if `key` is the reserved whole-dict marker —
    /// whole-dictionary access must be declared statically via
    /// [`crate::app::MapSpec::WholeDicts`] so the platform can canonicalize
    /// consistently from the first message on.
    pub fn new(dict: impl Into<String>, key: impl Into<String>) -> Self {
        let key = key.into();
        assert_ne!(
            key, WHOLE_DICT_KEY,
            "the key {WHOLE_DICT_KEY:?} is reserved; declare whole-dict access with MapSpec::WholeDicts"
        );
        Cell {
            dict: dict.into(),
            key,
        }
    }

    /// The whole-dictionary cell for `dict` (platform use).
    pub fn whole(dict: impl Into<String>) -> Self {
        Cell {
            dict: dict.into(),
            key: WHOLE_DICT_KEY.to_string(),
        }
    }

    /// Whether this is a whole-dictionary cell.
    pub fn is_whole(&self) -> bool {
        self.key == WHOLE_DICT_KEY
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.dict, self.key)
    }
}

/// The routing decision of a handler's `map` for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mapped {
    /// This handler is not interested in the message.
    Skip,
    /// Process on a hive-local singleton bee. The bee is pinned to its hive
    /// and never migrated (used by drivers and per-hive platform functions).
    LocalSingleton,
    /// Deliver a copy to every *existing local* bee of the application —
    /// the `foreach` clause of the abstraction (e.g. a timer tick that makes
    /// each bee iterate its own keys).
    LocalBroadcast,
    /// Route by cells: all messages with intersecting cells reach the same
    /// bee, wherever it lives.
    Cells(Vec<Cell>),
}

impl Mapped {
    /// Convenience constructor from an iterator of cells. An empty set is
    /// treated as [`Mapped::Skip`].
    pub fn cells<I: IntoIterator<Item = Cell>>(cells: I) -> Self {
        let v: Vec<Cell> = cells.into_iter().collect();
        if v.is_empty() {
            Mapped::Skip
        } else {
            Mapped::Cells(v)
        }
    }

    /// A single-cell mapping.
    pub fn cell(dict: impl Into<String>, key: impl Into<String>) -> Self {
        Mapped::Cells(vec![Cell::new(dict, key)])
    }

    /// Canonicalizes cells: any cell in a monolithic dictionary collapses to
    /// the whole-dictionary cell, and duplicates are removed (order-stable).
    pub fn canonicalize(self, is_monolithic: impl Fn(&str) -> bool) -> Mapped {
        match self {
            Mapped::Cells(cells) => {
                let mut seen = std::collections::BTreeSet::new();
                let mut out = Vec::with_capacity(cells.len());
                for c in cells {
                    let c = if is_monolithic(&c.dict) {
                        Cell::whole(&c.dict)
                    } else {
                        c
                    };
                    if seen.insert(c.clone()) {
                        out.push(c);
                    }
                }
                if out.is_empty() {
                    Mapped::Skip
                } else {
                    Mapped::Cells(out)
                }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_constructors() {
        let c = Cell::new("S", "sw1");
        assert!(!c.is_whole());
        let w = Cell::whole("S");
        assert!(w.is_whole());
        assert_eq!(w.to_string(), "(S, *)");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn star_key_is_rejected() {
        let _ = Cell::new("S", "*");
    }

    #[test]
    fn empty_cells_become_skip() {
        assert_eq!(Mapped::cells(Vec::new()), Mapped::Skip);
    }

    #[test]
    fn canonicalize_collapses_monolithic_dicts() {
        let m = Mapped::Cells(vec![
            Cell::new("S", "sw1"),
            Cell::new("S", "sw2"),
            Cell::new("T", "l1"),
        ]);
        let canon = m.canonicalize(|d| d == "S");
        match canon {
            Mapped::Cells(cells) => {
                assert_eq!(cells, vec![Cell::whole("S"), Cell::new("T", "l1")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonicalize_dedups_but_keeps_order() {
        let m = Mapped::Cells(vec![
            Cell::new("T", "b"),
            Cell::new("T", "a"),
            Cell::new("T", "b"),
        ]);
        match m.canonicalize(|_| false) {
            Mapped::Cells(cells) => {
                assert_eq!(cells, vec![Cell::new("T", "b"), Cell::new("T", "a")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonicalize_passes_through_other_variants() {
        assert_eq!(Mapped::Skip.canonicalize(|_| true), Mapped::Skip);
        assert_eq!(
            Mapped::LocalSingleton.canonicalize(|_| true),
            Mapped::LocalSingleton
        );
        assert_eq!(
            Mapped::LocalBroadcast.canonicalize(|_| true),
            Mapped::LocalBroadcast
        );
    }
}
