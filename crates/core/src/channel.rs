//! Reliable inter-hive channels: per-peer sequencing, cumulative acks,
//! timeout-driven retransmission, and receiver-side dedup.
//!
//! The wire layer underneath ([`crate::transport`], `beehive_net`) is
//! fire-and-forget: the sim fabric injects drop/duplicate/reorder faults and
//! the TCP transport defers frames to dead peers. This module upgrades
//! application envelopes to *at-least-once with dedup* — effectively-once
//! per channel:
//!
//! * Every outbound envelope toward a peer gets a monotonically increasing
//!   per-peer sequence number and sits in a resend buffer until the peer's
//!   cumulative ack covers it. Retransmission is timeout-driven, reusing the
//!   deterministic exponential backoff shape from [`crate::supervision`].
//! * Acks are cumulative (`upto` = highest contiguous delivered sequence)
//!   and piggybacked on return data traffic; when a receiver has no return
//!   traffic, a standalone ack frame is flushed after a small coalescing
//!   delay, so an N-message one-way burst produces O(1) ack frames.
//! * The receiver tracks `(last_delivered, seen_ahead)` per peer: duplicated
//!   and reordered frames are absorbed exactly once. Out-of-order frames are
//!   delivered immediately (bee handlers order on the dispatcher queue, not
//!   on sequence numbers) and the contiguous prefix advances as gaps fill.
//! * Each sender incarnation is identified by an *epoch*. A durable restart
//!   (journal present) resumes the old epoch and sequence space; an amnesiac
//!   restart mints a fresh, larger epoch, telling receivers to reset their
//!   dedup state instead of suppressing the new incarnation's low sequences.
//!
//! When the hive has a storage directory, a durable outbox journal
//! ([`crate::outbox`]) underlies the channel: sends are journaled *before*
//! they reach the transport and deliveries *before* the handler runs, so a
//! crash-restart replays unacked envelopes and suppresses redeliveries of
//! already-handled ones. The only messages a crash can still lose are those
//! sitting in the dispatcher queue mid-handler at crash time — exactly what
//! the chaos crash ledger budgets for.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::events::{EventJournal, EventKind};
use crate::id::{BeeId, HiveId};
use crate::outbox::{JournalEntry, Outbox, OutboxState};
use crate::supervision::backoff_delay_ms;

/// Compact the journal after this many incremental appends.
const COMPACT_EVERY: u64 = 1024;

/// Strictly above every epoch this process has minted or restored. An
/// amnesiac restart must present receivers with a *larger* epoch than its
/// previous incarnation, or its low sequences are suppressed as duplicates
/// (equal epoch) or ghosted entirely (lower epoch). `now_ms` alone cannot
/// guarantee that when the restart lands in the same millisecond, the sim
/// clock has not advanced, or the wall clock regressed — so fresh epochs
/// also clear this floor. Across *processes* the guarantee still rests on a
/// monotonic wall clock; restarts faster than one tick of it need a storage
/// dir (durable restarts resume their journaled epoch and raise the floor).
static EPOCH_FLOOR: AtomicU64 = AtomicU64::new(0);

/// Mints a fresh incarnation epoch: `now_ms`, bumped past the floor.
fn mint_epoch(now_ms: u64) -> u64 {
    let prev = EPOCH_FLOOR
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(now_ms.max(1).max(cur + 1))
        })
        .expect("update closure never declines");
    now_ms.max(1).max(prev + 1)
}

/// Tuning knobs, lifted from `HiveConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelTuning {
    /// Base retransmission timeout in ms (exponential backoff on top).
    pub resend_ms: u64,
    /// How many unacked entries per peer the retransmit scan covers.
    pub window: usize,
    /// Coalescing delay before a standalone ack frame is flushed.
    pub ack_flush_ms: u64,
}

impl Default for ChannelTuning {
    fn default() -> Self {
        ChannelTuning {
            resend_ms: 200,
            window: 1024,
            ack_flush_ms: 5,
        }
    }
}

/// The channel-layer frame wrapping a serialized
/// [`crate::message::WireEnvelope`]. Travels as `FrameKind::App` payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelFrame {
    /// Sender's channel epoch (incarnation id).
    pub epoch: u64,
    /// Per-peer monotonic sequence number (starts at 1).
    pub seq: u64,
    /// Epoch the piggybacked ack refers to (0 = no ack).
    pub ack_epoch: u64,
    /// Cumulative ack: every sequence `<= ack` of `ack_epoch` was delivered.
    pub ack: u64,
    /// The serialized application envelope.
    pub env: Vec<u8>,
}

/// Outcome of feeding a received frame through the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelDelivery {
    /// First delivery of this sequence: hand the envelope to the dispatcher.
    Deliver(Vec<u8>),
    /// Duplicate (retransmission or fabric dup) — already delivered once.
    Duplicate,
    /// The payload did not decode as a [`ChannelFrame`].
    Malformed,
}

/// Retransmissions and standalone acks due now, produced by
/// [`ReliableChannels::poll`].
#[derive(Debug, Default)]
pub struct ChannelWork {
    /// Encoded [`ChannelFrame`]s to re-send as `FrameKind::App`.
    pub retransmits: Vec<(HiveId, Vec<u8>)>,
    /// Standalone cumulative acks `(peer, ack_epoch, upto)` to send as
    /// control messages.
    pub acks: Vec<(HiveId, u64, u64)>,
}

/// Cumulative channel statistics (audited by the chaos invariants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Envelopes sequenced toward peers (Σ per-peer `next_seq - 1`).
    pub sent: u64,
    /// Envelopes delivered exactly once from peers (contiguous prefix +
    /// out-of-order deliveries + deliveries retired by epoch resets).
    pub delivered: u64,
    /// Frames retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Duplicate frames suppressed by receiver dedup.
    pub dups_suppressed: u64,
    /// Standalone ack frames emitted (piggybacked acks not counted).
    pub acks_sent: u64,
    /// Unacked envelopes currently buffered for resend, across all peers.
    pub outbox_depth: u64,
    /// Unacked envelopes abandoned because their peer left the cluster
    /// ([`ReliableChannels::retire_peer`]). These were counted in `sent` but
    /// will never be delivered; the hive dead-letters them instead, and the
    /// conservation audit subtracts them from in-transit.
    pub expired: u64,
}

/// Increments since the last [`ReliableChannels::take_delta`], pushed into
/// the hive's [`crate::metrics::Instrumentation`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelDelta {
    /// New retransmissions.
    pub retransmits: u64,
    /// New duplicates suppressed.
    pub dups_suppressed: u64,
    /// New standalone acks emitted.
    pub acks_sent: u64,
}

impl ChannelDelta {
    /// True when nothing happened since the last take.
    pub fn is_empty(&self) -> bool {
        self.retransmits == 0 && self.dups_suppressed == 0 && self.acks_sent == 0
    }
}

/// One unacked envelope in a peer's resend buffer.
#[derive(Debug)]
struct Unacked {
    seq: u64,
    env: Vec<u8>,
    /// Last transmission time; 0 for journal-replayed entries so the first
    /// poll retransmits immediately.
    sent_ms: u64,
    /// Transmission attempts so far (drives the backoff exponent).
    attempts: u32,
}

#[derive(Debug, Default)]
struct PeerSend {
    /// Next sequence to assign (starts at 1).
    next_seq: u64,
    /// Highest contiguous acked sequence.
    acked: u64,
    /// Unacked envelopes in sequence order.
    unacked: VecDeque<Unacked>,
}

#[derive(Debug, Default)]
struct PeerRecv {
    /// The sender epoch this state tracks.
    epoch: u64,
    /// Contiguous delivered prefix (cumulative ack value).
    last_delivered: u64,
    /// Out-of-order sequences already delivered.
    seen_ahead: BTreeSet<u64>,
    /// Deliveries under earlier epochs of this peer (keeps `delivered`
    /// monotonic across amnesiac sender restarts).
    retired: u64,
    /// When a pending standalone ack must flush (coalescing deadline).
    ack_due: Option<u64>,
}

/// Per-hive reliable channel state, one instance owned by the `Hive`.
#[derive(Debug)]
pub struct ReliableChannels {
    id: HiveId,
    epoch: u64,
    tuning: ChannelTuning,
    send: BTreeMap<u32, PeerSend>,
    recv: BTreeMap<u32, PeerRecv>,
    journal: Option<Outbox>,
    retransmits: u64,
    dups_suppressed: u64,
    acks_sent: u64,
    /// Sent/delivered counters of peers retired by membership removal, kept
    /// so the cumulative stats stay monotonic after their per-peer state is
    /// dropped.
    retired_sent: u64,
    retired_delivered: u64,
    /// Unacked envelopes abandoned by [`ReliableChannels::retire_peer`].
    expired: u64,
    delta: ChannelDelta,
    /// Flight-recorder journal for epoch-mint and compaction events.
    /// `None` for bare channels (unit tests).
    events: Option<Arc<EventJournal>>,
    /// Whether this incarnation's epoch was freshly minted (as opposed to
    /// restored from a durable journal) — reported by the
    /// [`ReliableChannels::set_events`] mint event.
    minted_fresh: bool,
    /// Set when the outbox journal exists but failed checksum validation
    /// (interior corruption). The hive polls this right after construction
    /// and fail-stops: running in memory on top of a corrupt journal would
    /// re-deliver envelopes the old incarnation already acked.
    storage_fault: Option<String>,
    /// Torn tail records truncated during this incarnation's recovery.
    torn_truncations: u64,
}

impl ReliableChannels {
    /// Creates the channel state for hive `id`. With a `storage_dir`, the
    /// outbox journal `hive-{id}.outbox` inside it is replayed (durable
    /// restart: same epoch, unacked sends re-buffered, dedup state
    /// restored). Without one — or if the journal cannot be opened — the
    /// channel runs in memory with a fresh epoch: `now_ms`, bumped past
    /// every epoch this process has already minted or restored so a new
    /// incarnation is always strictly newer in receivers' eyes.
    pub fn new(
        id: HiveId,
        tuning: ChannelTuning,
        storage_dir: Option<&Path>,
        now_ms: u64,
    ) -> ReliableChannels {
        let mut journal = None;
        let mut restored = OutboxState::default();
        let mut storage_fault = None;
        if let Some(dir) = storage_dir {
            let path = dir.join(format!("hive-{}.outbox", id.0));
            match Outbox::open(&path) {
                Ok((ob, state)) => {
                    journal = Some(ob);
                    restored = state;
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // Interior corruption: the journal exists but cannot be
                    // trusted. Falling back to memory would mint a fresh
                    // epoch and re-deliver history the old incarnation
                    // already acked — the hive must halt instead.
                    storage_fault = Some(e.to_string());
                }
                Err(e) => {
                    eprintln!(
                        "beehive: hive {} outbox unavailable ({e}); channel running in memory",
                        id.0
                    );
                }
            }
        }
        let fresh = restored.epoch.is_none();
        let epoch = match restored.epoch {
            Some(e) => {
                // Keep the floor above journaled epochs too, so a later
                // amnesiac restart of any hive in this process still mints
                // strictly higher.
                EPOCH_FLOOR.fetch_max(e, Ordering::Relaxed);
                e
            }
            None => mint_epoch(now_ms),
        };
        let mut ch = ReliableChannels {
            id,
            epoch,
            tuning,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            journal,
            retransmits: 0,
            dups_suppressed: 0,
            acks_sent: 0,
            retired_sent: restored.retired_sent,
            retired_delivered: restored.retired_delivered,
            expired: restored.expired,
            delta: ChannelDelta::default(),
            events: None,
            minted_fresh: fresh,
            storage_fault,
            torn_truncations: restored.torn_truncations,
        };
        if fresh {
            ch.journal_append(JournalEntry::Epoch { epoch });
        }
        for (peer, s) in restored.send {
            let mut ps = PeerSend {
                next_seq: s.next_seq.max(1),
                acked: s.acked,
                unacked: VecDeque::new(),
            };
            for (seq, env) in s.unacked {
                ps.unacked.push_back(Unacked {
                    seq,
                    env,
                    sent_ms: 0,
                    attempts: 0,
                });
            }
            ch.send.insert(peer, ps);
        }
        for (peer, r) in restored.recv {
            ch.recv.insert(
                peer,
                PeerRecv {
                    epoch: r.epoch,
                    last_delivered: r.last_delivered,
                    seen_ahead: r.seen_ahead,
                    retired: r.retired,
                    ack_due: None,
                },
            );
        }
        ch
    }

    /// This incarnation's channel epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Interior corruption detected in the outbox journal at recovery, if
    /// any. The hive treats this as fatal (fail-stop) right after wiring the
    /// event journal.
    pub fn storage_fault(&self) -> Option<&str> {
        self.storage_fault.as_deref()
    }

    /// Torn tail records truncated off the outbox journal during this
    /// incarnation's recovery.
    pub fn torn_truncations(&self) -> u64 {
        self.torn_truncations
    }

    /// Hands the channel the hive's event journal. The epoch is minted (or
    /// restored) in [`ReliableChannels::new`], before the journal exists, so
    /// the mint event is emitted here, once, on wiring.
    pub fn set_events(&mut self, events: Arc<EventJournal>) {
        events.record(
            EventKind::ChannelEpochMint,
            format!(
                "epoch {} ({})",
                self.epoch,
                if self.minted_fresh {
                    "freshly minted"
                } else {
                    "restored from outbox journal"
                }
            ),
        );
        if self.torn_truncations > 0 {
            events.record(
                EventKind::JournalTornTail,
                format!(
                    "outbox journal lost {} torn tail record(s) to a crash mid-append",
                    self.torn_truncations
                ),
            );
        }
        self.events = Some(events);
    }

    /// Sequences `env_bytes` toward `to`, journals it, buffers it for
    /// resend, and returns the encoded [`ChannelFrame`] to put on the wire.
    /// A cumulative ack for `to` is piggybacked, cancelling any pending
    /// standalone ack toward that peer.
    pub fn wrap(&mut self, to: HiveId, env_bytes: Vec<u8>, now_ms: u64) -> Vec<u8> {
        let (ack_epoch, ack) = self.piggyback_ack(to);
        let s = self.send.entry(to.0).or_insert_with(|| PeerSend {
            next_seq: 1,
            ..PeerSend::default()
        });
        let seq = s.next_seq;
        s.next_seq += 1;
        let frame = ChannelFrame {
            epoch: self.epoch,
            seq,
            ack_epoch,
            ack,
            env: env_bytes,
        };
        let bytes = beehive_wire::to_vec(&frame).expect("channel frame serializes");
        // Buffer before journaling: journal_append may compact, and the
        // compaction snapshot is taken from in-memory state — it must
        // already contain this entry, or the rewritten journal keeps the
        // advanced next_seq while losing the payload. Journal-before-wire
        // still holds, since the bytes only leave once we return.
        let s = self.send.get_mut(&to.0).expect("just inserted");
        s.unacked.push_back(Unacked {
            seq,
            env: frame.env.clone(),
            sent_ms: now_ms,
            attempts: 1,
        });
        self.journal_append(JournalEntry::Send {
            to: to.0,
            seq,
            env: frame.env,
        });
        bytes
    }

    /// Processes a received `FrameKind::App` payload: applies the
    /// piggybacked ack, then runs receiver dedup.
    pub fn on_frame(&mut self, from: HiveId, bytes: &[u8], now_ms: u64) -> ChannelDelivery {
        let frame: ChannelFrame = match beehive_wire::from_slice(bytes) {
            Ok(f) => f,
            Err(_) => return ChannelDelivery::Malformed,
        };
        if frame.ack_epoch != 0 {
            self.on_ack(from, frame.ack_epoch, frame.ack);
        }
        let r = self.recv.entry(from.0).or_insert_with(|| PeerRecv {
            epoch: frame.epoch,
            ..PeerRecv::default()
        });
        if frame.epoch < r.epoch {
            // Ghost from a dead incarnation (fabric delay across an
            // amnesiac restart): never deliver, never ack.
            self.dups_suppressed += 1;
            self.delta.dups_suppressed += 1;
            return ChannelDelivery::Duplicate;
        }
        if frame.epoch > r.epoch {
            // The sender restarted without its journal: reset dedup state
            // for the new incarnation, folding old deliveries into the
            // retired accumulator so `delivered` stays monotonic.
            let retired = r.last_delivered + r.seen_ahead.len() as u64;
            r.epoch = frame.epoch;
            r.last_delivered = 0;
            r.seen_ahead.clear();
            r.retired += retired;
            self.journal_append(JournalEntry::RecvReset {
                from: from.0,
                epoch: frame.epoch,
                retired,
            });
        }
        let r = self.recv.get_mut(&from.0).expect("present");
        if frame.seq <= r.last_delivered || r.seen_ahead.contains(&frame.seq) {
            self.dups_suppressed += 1;
            self.delta.dups_suppressed += 1;
            // Re-ack so the sender stops retransmitting.
            Self::schedule_ack(r, now_ms, self.tuning.ack_flush_ms);
            return ChannelDelivery::Duplicate;
        }
        // First sighting: journal before the handler can run, then deliver
        // immediately (even out of order — dispatch order is a dispatcher
        // concern, dedup is ours) and advance the contiguous prefix.
        r.seen_ahead.insert(frame.seq);
        while r.seen_ahead.remove(&(r.last_delivered + 1)) {
            r.last_delivered += 1;
        }
        Self::schedule_ack(
            self.recv.get_mut(&from.0).expect("present"),
            now_ms,
            self.tuning.ack_flush_ms,
        );
        self.journal_append(JournalEntry::Delivered {
            from: from.0,
            epoch: frame.epoch,
            seq: frame.seq,
        });
        ChannelDelivery::Deliver(frame.env)
    }

    /// Applies a cumulative ack from `from` (piggybacked or standalone).
    /// Acks for other epochs — a previous incarnation of *this* hive — are
    /// ignored.
    pub fn on_ack(&mut self, from: HiveId, ack_epoch: u64, upto: u64) {
        if ack_epoch != self.epoch {
            return;
        }
        let Some(s) = self.send.get_mut(&from.0) else {
            return;
        };
        if upto <= s.acked {
            return;
        }
        s.acked = upto;
        while s.unacked.front().is_some_and(|u| u.seq <= upto) {
            s.unacked.pop_front();
        }
        self.journal_append(JournalEntry::Acked { to: from.0, upto });
    }

    /// Scans for due retransmissions (first `window` unacked entries per
    /// peer, deterministic exponential backoff per attempt) and due
    /// standalone acks. Retransmitted frames carry fresh piggybacked acks.
    pub fn poll(&mut self, now_ms: u64) -> ChannelWork {
        let mut work = ChannelWork::default();
        let peers: Vec<u32> = self.send.keys().copied().collect();
        for peer in peers {
            let (ack_epoch, ack) = self.piggyback_ack(HiveId(peer));
            let bee = BeeId::new(self.id, peer);
            let s = self.send.get_mut(&peer).expect("present");
            for u in s.unacked.iter_mut().take(self.tuning.window) {
                let wait = backoff_delay_ms(self.tuning.resend_ms, u.attempts.max(1), bee);
                if now_ms.saturating_sub(u.sent_ms) < wait {
                    continue;
                }
                let frame = ChannelFrame {
                    epoch: self.epoch,
                    seq: u.seq,
                    ack_epoch,
                    ack,
                    env: u.env.clone(),
                };
                u.sent_ms = now_ms;
                u.attempts = u.attempts.saturating_add(1);
                self.retransmits += 1;
                self.delta.retransmits += 1;
                work.retransmits.push((
                    HiveId(peer),
                    beehive_wire::to_vec(&frame).expect("channel frame serializes"),
                ));
            }
        }
        for (&peer, r) in self.recv.iter_mut() {
            if r.ack_due.is_some_and(|due| due <= now_ms) {
                r.ack_due = None;
                self.acks_sent += 1;
                self.delta.acks_sent += 1;
                work.acks.push((HiveId(peer), r.epoch, r.last_delivered));
            }
        }
        work
    }

    /// True when retransmissions or standalone acks are outstanding — the
    /// hive must not park for long.
    pub fn has_pending(&self) -> bool {
        self.send.values().any(|s| !s.unacked.is_empty())
            || self.recv.values().any(|r| r.ack_due.is_some())
    }

    /// Cumulative statistics snapshot. Counters of retired peers stay folded
    /// in, so `sent`/`delivered` remain monotonic across membership changes.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            sent: self
                .send
                .values()
                .map(|s| s.next_seq.saturating_sub(1))
                .sum::<u64>()
                + self.retired_sent,
            delivered: self
                .recv
                .values()
                .map(|r| r.last_delivered + r.seen_ahead.len() as u64 + r.retired)
                .sum::<u64>()
                + self.retired_delivered,
            retransmits: self.retransmits,
            dups_suppressed: self.dups_suppressed,
            acks_sent: self.acks_sent,
            outbox_depth: self.send.values().map(|s| s.unacked.len() as u64).sum(),
            expired: self.expired,
        }
    }

    /// Retires all channel state toward and from `peer` after it departed
    /// the cluster, returning the serialized envelopes that were still
    /// unacked (the caller dead-letters them — they will never be
    /// delivered). Counters fold into the retirement accumulators so
    /// [`ReliableChannels::stats`] stays monotonic, and the retirement is
    /// journaled so a durable restart does not resurrect the peer.
    /// Idempotent: retiring an unknown peer returns an empty vec.
    pub fn retire_peer(&mut self, peer: HiveId) -> Vec<Vec<u8>> {
        let mut undelivered = Vec::new();
        let mut sent = 0;
        let mut expired = 0;
        if let Some(s) = self.send.remove(&peer.0) {
            sent = s.next_seq.saturating_sub(1);
            expired = s.unacked.len() as u64;
            undelivered.extend(s.unacked.into_iter().map(|u| u.env));
        }
        let delivered = match self.recv.remove(&peer.0) {
            Some(r) => r.last_delivered + r.seen_ahead.len() as u64 + r.retired,
            None => 0,
        };
        if sent == 0 && delivered == 0 {
            return undelivered;
        }
        self.retired_sent += sent;
        self.retired_delivered += delivered;
        self.expired += expired;
        self.journal_append(JournalEntry::PeerRetired {
            peer: peer.0,
            sent,
            delivered,
            expired,
        });
        undelivered
    }

    /// Drains the increments accumulated since the last call (pushed into
    /// `Instrumentation` once per step).
    pub fn take_delta(&mut self) -> ChannelDelta {
        std::mem::take(&mut self.delta)
    }

    /// The cumulative ack to piggyback toward `to`, clearing any pending
    /// standalone ack (the data frame carries it instead).
    fn piggyback_ack(&mut self, to: HiveId) -> (u64, u64) {
        match self.recv.get_mut(&to.0) {
            Some(r) => {
                r.ack_due = None;
                (r.epoch, r.last_delivered)
            }
            None => (0, 0),
        }
    }

    /// Arms (or keeps) the coalescing deadline for a standalone ack. The
    /// deadline is never pushed later by new traffic — first-dirty wins.
    fn schedule_ack(r: &mut PeerRecv, now_ms: u64, flush_ms: u64) {
        let candidate = now_ms.saturating_add(flush_ms);
        r.ack_due = Some(r.ack_due.map_or(candidate, |d| d.min(candidate)));
    }

    /// Appends to the journal if one is open; IO failure degrades the
    /// channel to in-memory operation (logged once).
    fn journal_append(&mut self, entry: JournalEntry) {
        let Some(journal) = self.journal.as_mut() else {
            return;
        };
        if let Err(e) = journal.append(&entry) {
            eprintln!(
                "beehive: hive {} outbox append failed ({e}); channel degrading to memory",
                self.id.0
            );
            self.journal = None;
            return;
        }
        if journal.appends_since_compact() >= COMPACT_EVERY {
            let snapshot = self.snapshot_entries();
            if let Some(journal) = self.journal.as_mut() {
                match journal.compact(&snapshot) {
                    Ok(bytes) => {
                        if let Some(events) = &self.events {
                            events.record(
                                EventKind::OutboxCompaction,
                                format!(
                                    "rewrote journal to {} entries ({bytes} bytes)",
                                    snapshot.len()
                                ),
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("beehive: hive {} outbox compaction failed ({e}); channel degrading to memory", self.id.0);
                        self.journal = None;
                    }
                }
            }
        }
    }

    /// The journal snapshot equivalent to the current in-memory state.
    fn snapshot_entries(&self) -> Vec<JournalEntry> {
        let mut out = vec![JournalEntry::Epoch { epoch: self.epoch }];
        if self.retired_sent != 0 || self.retired_delivered != 0 || self.expired != 0 {
            // Cumulative accumulator record; emitted before per-peer state so
            // its replay-side state removal cannot clobber a live peer 0.
            out.push(JournalEntry::PeerRetired {
                peer: 0,
                sent: self.retired_sent,
                delivered: self.retired_delivered,
                expired: self.expired,
            });
        }
        for (&to, s) in &self.send {
            out.push(JournalEntry::SendState {
                to,
                next_seq: s.next_seq,
                acked: s.acked,
            });
            for u in &s.unacked {
                out.push(JournalEntry::Send {
                    to,
                    seq: u.seq,
                    env: u.env.clone(),
                });
            }
        }
        for (&from, r) in &self.recv {
            out.push(JournalEntry::RecvState {
                from,
                epoch: r.epoch,
                last_delivered: r.last_delivered,
                seen_ahead: r.seen_ahead.iter().copied().collect(),
                retired: r.retired,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(id: u32) -> ReliableChannels {
        ReliableChannels::new(HiveId(id), ChannelTuning::default(), None, 1)
    }

    fn deliver(ch: &mut ReliableChannels, from: u32, bytes: &[u8], now: u64) -> ChannelDelivery {
        ch.on_frame(HiveId(from), bytes, now)
    }

    #[test]
    fn in_order_delivery_then_duplicate_is_suppressed() {
        let mut a = mem(1);
        let mut b = mem(2);
        let f1 = a.wrap(HiveId(2), vec![10], 100);
        let f2 = a.wrap(HiveId(2), vec![20], 100);
        assert_eq!(
            deliver(&mut b, 1, &f1, 100),
            ChannelDelivery::Deliver(vec![10])
        );
        assert_eq!(
            deliver(&mut b, 1, &f2, 100),
            ChannelDelivery::Deliver(vec![20])
        );
        // Fabric duplicate of f1: absorbed, counted, re-ack scheduled.
        assert_eq!(deliver(&mut b, 1, &f1, 101), ChannelDelivery::Duplicate);
        let st = b.stats();
        assert_eq!(st.delivered, 2);
        assert_eq!(st.dups_suppressed, 1);
        assert_eq!(a.stats().sent, 2);
        assert_eq!(a.stats().outbox_depth, 2);
    }

    #[test]
    fn reordered_frames_deliver_once_and_ack_covers_both() {
        let mut a = mem(1);
        let mut b = mem(2);
        let f1 = a.wrap(HiveId(2), vec![1], 0);
        let f2 = a.wrap(HiveId(2), vec![2], 0);
        // Arrive out of order: both deliver immediately, exactly once.
        assert_eq!(
            deliver(&mut b, 1, &f2, 10),
            ChannelDelivery::Deliver(vec![2])
        );
        assert_eq!(
            deliver(&mut b, 1, &f1, 11),
            ChannelDelivery::Deliver(vec![1])
        );
        assert_eq!(deliver(&mut b, 1, &f2, 12), ChannelDelivery::Duplicate);
        // The standalone ack is cumulative over the collapsed prefix.
        let work = b.poll(11 + b.tuning.ack_flush_ms);
        assert_eq!(work.acks.len(), 1);
        let (peer, epoch, upto) = work.acks[0];
        assert_eq!(peer, HiveId(1));
        assert_eq!(upto, 2);
        a.on_ack(HiveId(2), epoch, upto);
        assert_eq!(a.stats().outbox_depth, 0);
        assert!(!a.has_pending());
    }

    #[test]
    fn unacked_frames_retransmit_with_growing_backoff_until_acked() {
        let mut a = mem(1);
        let _ = a.wrap(HiveId(2), vec![7], 0);
        // Too early: base backoff (200ms + jitter < 400ms) has not elapsed.
        assert!(a.poll(100).retransmits.is_empty());
        let w = a.poll(400);
        assert_eq!(w.retransmits.len(), 1);
        assert_eq!(w.retransmits[0].0, HiveId(2));
        assert_eq!(a.stats().retransmits, 1);
        // Second attempt backs off further: nothing due right away.
        assert!(a.poll(500).retransmits.is_empty());
        assert!(!a.poll(400 + 1200).retransmits.is_empty());
        // Ack clears the buffer; no more retransmissions ever.
        let epoch = a.epoch();
        a.on_ack(HiveId(2), epoch, 1);
        assert!(a.poll(100_000).retransmits.is_empty());
        assert_eq!(a.stats().outbox_depth, 0);
    }

    #[test]
    fn one_way_burst_coalesces_to_a_single_ack_frame() {
        let mut a = mem(1);
        let mut b = mem(2);
        let n = 50;
        let now = 1_000;
        for i in 0..n {
            let f = a.wrap(HiveId(2), vec![i as u8], now);
            assert!(matches!(
                deliver(&mut b, 1, &f, now),
                ChannelDelivery::Deliver(_)
            ));
        }
        // Before the flush delay: no ack frames at all.
        assert!(b.poll(now).acks.is_empty());
        // After it: exactly one cumulative ack for the whole burst.
        let work = b.poll(now + b.tuning.ack_flush_ms);
        assert_eq!(work.acks.len(), 1, "burst of {n} must coalesce to one ack");
        assert_eq!(work.acks[0].2, n);
        assert_eq!(b.stats().acks_sent, 1);
        // And it is not re-sent once flushed.
        assert!(b.poll(now + 10 * b.tuning.ack_flush_ms).acks.is_empty());
    }

    #[test]
    fn return_traffic_piggybacks_the_ack_and_cancels_the_standalone() {
        let mut a = mem(1);
        let mut b = mem(2);
        let f = a.wrap(HiveId(2), vec![9], 0);
        assert!(matches!(
            deliver(&mut b, 1, &f, 0),
            ChannelDelivery::Deliver(_)
        ));
        assert!(b.has_pending());
        // b sends data back before the flush delay elapses: the ack rides it.
        let back = b.wrap(HiveId(1), vec![4], 1);
        assert!(matches!(
            deliver(&mut a, 2, &back, 1),
            ChannelDelivery::Deliver(_)
        ));
        assert_eq!(
            a.stats().outbox_depth,
            0,
            "piggybacked ack cleared the resend buffer"
        );
        // The standalone ack was cancelled by the piggyback.
        assert!(b.poll(1_000).acks.is_empty());
        assert_eq!(b.stats().acks_sent, 0);
    }

    #[test]
    fn newer_epoch_resets_dedup_and_older_epoch_is_ghosted() {
        let mut b = mem(2);
        // Incarnation 1 of hive 1 delivers seq 1..=2.
        let mut a1 = ReliableChannels::new(HiveId(1), ChannelTuning::default(), None, 100);
        let f1 = a1.wrap(HiveId(2), vec![1], 100);
        let f2 = a1.wrap(HiveId(2), vec![2], 100);
        assert!(matches!(
            deliver(&mut b, 1, &f1, 100),
            ChannelDelivery::Deliver(_)
        ));
        assert!(matches!(
            deliver(&mut b, 1, &f2, 100),
            ChannelDelivery::Deliver(_)
        ));
        // Amnesiac restart: fresh epoch, sequences start over at 1 — must
        // NOT be suppressed.
        let mut a2 = ReliableChannels::new(HiveId(1), ChannelTuning::default(), None, 5_000);
        assert!(a2.epoch() > a1.epoch());
        let g1 = a2.wrap(HiveId(2), vec![3], 5_000);
        assert_eq!(
            deliver(&mut b, 1, &g1, 5_000),
            ChannelDelivery::Deliver(vec![3])
        );
        // Deliveries stay monotonic across the reset.
        assert_eq!(b.stats().delivered, 3);
        // A fabric-delayed ghost from the dead incarnation is suppressed.
        assert_eq!(deliver(&mut b, 1, &f1, 5_001), ChannelDelivery::Duplicate);
        assert_eq!(b.stats().delivered, 3);
    }

    #[test]
    fn retire_peer_returns_undelivered_and_keeps_stats_monotonic() {
        let mut a = mem(1);
        let e = a.epoch();
        let _ = a.wrap(HiveId(2), vec![1], 0);
        let _ = a.wrap(HiveId(2), vec![2], 0);
        let _ = a.wrap(HiveId(3), vec![9], 0);
        a.on_ack(HiveId(2), e, 1);
        // Receive something from peer 2 too, so recv state also retires.
        let mut b = mem(2);
        let f = b.wrap(HiveId(1), vec![7], 0);
        assert!(matches!(
            deliver(&mut a, 2, &f, 0),
            ChannelDelivery::Deliver(_)
        ));
        let before = a.stats();
        assert_eq!(before.sent, 3);
        assert_eq!(before.delivered, 1);
        let undelivered = a.retire_peer(HiveId(2));
        assert_eq!(undelivered, vec![vec![2]], "only the unacked env returns");
        let st = a.stats();
        assert_eq!(st.sent, 3, "sent stays monotonic after retirement");
        assert_eq!(st.delivered, 1, "delivered stays monotonic");
        assert_eq!(st.expired, 1);
        assert_eq!(st.outbox_depth, 1, "peer 3's buffer is untouched");
        // No retransmissions toward the retired peer ever again.
        assert!(a.poll(100_000).retransmits.iter().all(|(p, _)| p.0 == 3));
        // Idempotent.
        assert!(a.retire_peer(HiveId(2)).is_empty());
        assert_eq!(a.stats(), st);
    }

    #[test]
    fn retirement_survives_a_durable_restart() {
        let dir = tmp_dir("retire");
        let tuning = ChannelTuning::default();
        {
            let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 100);
            let _ = a.wrap(HiveId(2), vec![5], 100);
            let _ = a.wrap(HiveId(3), vec![6], 100);
            let dropped = a.retire_peer(HiveId(2));
            assert_eq!(dropped.len(), 1);
        }
        let a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 9_000);
        let st = a.stats();
        assert_eq!(st.sent, 2, "retired sent restored from the journal");
        assert_eq!(st.expired, 1);
        assert_eq!(st.outbox_depth, 1, "retired peer's buffer not resurrected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("beehive-channel-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_restart_replays_unacked_sends_and_keeps_the_epoch() {
        let dir = tmp_dir("sender");
        let tuning = ChannelTuning::default();
        let epoch;
        {
            let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 300);
            epoch = a.epoch();
            let _ = a.wrap(HiveId(2), vec![11], 300);
            let _ = a.wrap(HiveId(2), vec![22], 300);
            let e = a.epoch();
            a.on_ack(HiveId(2), e, 1);
            // Crash here: seq 2 journaled but unacked.
        }
        let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 9_000);
        assert_eq!(a.epoch(), epoch, "durable restart resumes the epoch");
        assert_eq!(a.stats().sent, 2);
        assert_eq!(a.stats().outbox_depth, 1);
        // The replayed entry retransmits on the first poll.
        let w = a.poll(9_000);
        assert_eq!(w.retransmits.len(), 1);
        let f: ChannelFrame = beehive_wire::from_slice(&w.retransmits[0].1).unwrap();
        assert_eq!(f.seq, 2);
        assert_eq!(f.env, vec![22]);
        assert_eq!(f.epoch, epoch);
        // New sends continue the sequence space.
        let g = a.wrap(HiveId(2), vec![33], 9_001);
        let g: ChannelFrame = beehive_wire::from_slice(&g).unwrap();
        assert_eq!(g.seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_restart_restores_dedup_and_suppresses_redelivery() {
        let dir = tmp_dir("receiver");
        let tuning = ChannelTuning::default();
        let mut a = mem(1);
        let f1 = a.wrap(HiveId(2), vec![5], 50);
        let f2 = a.wrap(HiveId(2), vec![6], 50);
        {
            let mut b = ReliableChannels::new(HiveId(2), tuning, Some(&dir), 50);
            assert!(matches!(
                deliver(&mut b, 1, &f1, 50),
                ChannelDelivery::Deliver(_)
            ));
            assert!(matches!(
                deliver(&mut b, 1, &f2, 50),
                ChannelDelivery::Deliver(_)
            ));
            // Crash before any ack reaches hive 1.
        }
        let mut b = ReliableChannels::new(HiveId(2), tuning, Some(&dir), 7_000);
        assert_eq!(
            b.stats().delivered,
            2,
            "dedup state restored from the journal"
        );
        // Hive 1 retransmits both; the restarted hive must not double-apply.
        assert_eq!(deliver(&mut b, 1, &f1, 7_000), ChannelDelivery::Duplicate);
        assert_eq!(deliver(&mut b, 1, &f2, 7_000), ChannelDelivery::Duplicate);
        assert_eq!(b.stats().delivered, 2);
        assert_eq!(b.stats().dups_suppressed, 2);
        // It still acks them so the sender can drain.
        let w = b.poll(7_000 + tuning.ack_flush_ms);
        assert_eq!(w.acks.len(), 1);
        assert_eq!(w.acks[0].2, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn amnesiac_restart_in_the_same_millisecond_mints_a_larger_epoch() {
        let a1 = mem(1);
        // Restart with the clock frozen: the epoch must still advance, or
        // receivers suppress the new incarnation's low sequences.
        let a2 = ReliableChannels::new(HiveId(1), ChannelTuning::default(), None, 1);
        assert!(a2.epoch() > a1.epoch());
        // Even a clock regression cannot mint an equal or smaller epoch.
        let a3 = ReliableChannels::new(HiveId(1), ChannelTuning::default(), None, 0);
        assert!(a3.epoch() > a2.epoch());
    }

    #[test]
    fn compaction_mid_send_keeps_the_triggering_payload_durable() {
        // The wrap() whose journal append trips COMPACT_EVERY must itself
        // survive the compaction snapshot: with no acks at all, every
        // sequence — including the triggering one — must replay after a
        // crash, or the receiver's cumulative ack stalls below it forever.
        let dir = tmp_dir("compact-unacked");
        let tuning = ChannelTuning::default();
        let n = COMPACT_EVERY + 10;
        {
            let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 10);
            for i in 0..n {
                let _ = a.wrap(HiveId(2), vec![(i % 251) as u8], 10);
            }
            // Crash with everything unacked.
        }
        let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 20);
        assert_eq!(a.stats().outbox_depth, n, "no payload lost to compaction");
        // Replayed entries have sent_ms = 0; poll well past the base
        // backoff so every windowed entry is due.
        let w = a.poll(10_000);
        assert_eq!(w.retransmits.len(), tuning.window.min(n as usize));
        for (i, (_, bytes)) in w.retransmits.iter().enumerate() {
            let f: ChannelFrame = beehive_wire::from_slice(bytes).unwrap();
            assert_eq!(f.seq, i as u64 + 1, "contiguous replay, no gap");
            assert_eq!(f.env, vec![(i as u64 % 251) as u8]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_compaction_keeps_channel_state_equivalent() {
        let dir = tmp_dir("compact");
        let tuning = ChannelTuning::default();
        {
            let mut a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 10);
            // Enough traffic to trip COMPACT_EVERY several times over.
            for i in 0..2_000u64 {
                let _ = a.wrap(HiveId(2), vec![(i % 251) as u8], 10 + i);
                let e = a.epoch();
                if i % 2 == 0 {
                    a.on_ack(HiveId(2), e, i / 2 + 1);
                }
            }
        }
        let a = ReliableChannels::new(HiveId(1), tuning, Some(&dir), 99_999);
        let st = a.stats();
        assert_eq!(st.sent, 2_000);
        assert_eq!(st.outbox_depth, 2_000 - 1_000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
