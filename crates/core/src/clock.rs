//! Time sources. Hives never read the system clock directly; they go through
//! a [`Clock`] so whole clusters can run in deterministic virtual time (the
//! simulator) or in real time (production).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary epoch.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time relative to process start.
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    /// A clock starting at 0 now.
    pub fn new() -> Self {
        SystemClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A manually advanced virtual clock, shareable across hives.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// A virtual clock at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }

    /// Sets the absolute time (must not go backwards).
    pub fn set(&self, ms: u64) {
        let prev = self.now.swap(ms, Ordering::SeqCst);
        debug_assert!(ms >= prev, "SimClock moved backwards: {prev} -> {ms}");
    }
}

impl Clock for SimClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_and_shares() {
        let c = SimClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ms(), 0);
        c.advance(250);
        assert_eq!(c2.now_ms(), 250);
        c2.set(1000);
        assert_eq!(c.now_ms(), 1000);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
