//! Platform-internal control messages exchanged between hives (migration
//! protocol, registry forwarding, colony merges).

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::id::{AppName, BeeId, HiveId};
use crate::registry::RegistryCommand;

/// Hive-to-hive platform traffic. Not visible to applications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ControlMsg {
    /// A registry command forwarded toward the current registry leader.
    RegistryForward(RegistryCommand),
    /// Asks the hive currently hosting `bee` to migrate it to `to`.
    RequestMigration {
        /// Owning application.
        app: AppName,
        /// The bee to move.
        bee: BeeId,
        /// Destination hive.
        to: HiveId,
    },
    /// Ships a migrating bee's cells to the destination hive.
    MigrateState {
        /// Owning application.
        app: AppName,
        /// The migrating bee.
        bee: BeeId,
        /// Serialized [`crate::state::BeeState`].
        state: Vec<u8>,
        /// The bee's colony.
        colony: Vec<Cell>,
        /// The bee's replication sequence (continues on the new owner).
        repl_seq: u64,
    },
    /// Ships a merged-away (loser) bee's cells to the winner's hive.
    MergeState {
        /// Owning application.
        app: AppName,
        /// The surviving bee.
        winner: BeeId,
        /// The absorbed bee.
        loser: BeeId,
        /// Serialized [`crate::state::BeeState`] of the loser.
        state: Vec<u8>,
    },
    /// Replicates a committed transaction journal to colony replicas
    /// (fault-tolerance extension).
    ReplicateTx {
        /// Owning application.
        app: AppName,
        /// The bee whose state changed.
        bee: BeeId,
        /// Monotonic per-bee sequence for gap detection.
        seq: u64,
        /// Serialized [`crate::state::TxJournal`].
        journal: Vec<u8>,
    },
    /// A replica detected a sequence gap and asks the owner for full state.
    ReplicaSyncRequest {
        /// Owning application.
        app: AppName,
        /// The bee.
        bee: BeeId,
    },
    /// The owner's full-state answer to [`ControlMsg::ReplicaSyncRequest`].
    ReplicaSyncState {
        /// Owning application.
        app: AppName,
        /// The bee.
        bee: BeeId,
        /// The owner's current replication sequence.
        seq: u64,
        /// Serialized [`crate::state::BeeState`].
        state: Vec<u8>,
    },
    /// Asks a hive for every retained trace span of `trace_id` (cross-hive
    /// trace assembly, [`crate::trace::TraceHub`]). Best-effort: a hive
    /// whose span ring already overwrote the trace returns an empty reply.
    TraceQuery {
        /// Correlates replies with the originating query.
        query_id: u64,
        /// The causal trace to collect.
        trace_id: u64,
    },
    /// A hive's answer to [`ControlMsg::TraceQuery`].
    TraceReply {
        /// Echoed from the query.
        query_id: u64,
        /// Echoed from the query.
        trace_id: u64,
        /// All spans of the trace retained by the replying hive.
        spans: Vec<crate::trace::TraceSpan>,
    },
    /// Standalone cumulative ack for the reliable channel layer
    /// ([`crate::channel`]): every application frame of `ack_epoch` with
    /// sequence `<= upto` was delivered by the sending hive. Emitted only
    /// when no return data traffic piggybacks the ack in time.
    ChannelAck {
        /// The receiver-tracked sender epoch the ack refers to.
        ack_epoch: u64,
        /// Highest contiguous delivered sequence.
        upto: u64,
    },
    /// Cluster membership lifecycle traffic (elastic scale-out/scale-in):
    /// join/promote/demote/remove requests routed toward the registry
    /// leader, the draining announcement, and the leader's final departure
    /// ack. The authoritative transitions travel through the registry Raft
    /// log as conf-change entries; these messages only request them or
    /// announce side states the log does not carry.
    MembershipChange {
        /// The hive whose membership is changing.
        node: HiveId,
        /// The hive's transport address (joins only; empty otherwise).
        addr: String,
        /// The lifecycle operation.
        op: MembershipOp,
    },
}

/// What a [`ControlMsg::MembershipChange`] asks for or announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipOp {
    /// `node` asks to be added to the registry group as a learner
    /// (routed toward the leader; `addr` tells peers how to reach it).
    JoinRequest,
    /// A caught-up learner asks to be promoted to voter.
    PromoteRequest,
    /// A draining voter asks to be demoted back to learner.
    DemoteRequest,
    /// A drained learner asks to be removed from the configuration.
    RemoveRequest,
    /// `node` announces it is draining: stop placing bees on it.
    Draining,
    /// The leader's final ack to a removed hive: its `RemoveNode` conf
    /// change committed and it may exit. Re-sent for stale
    /// [`MembershipOp::RemoveRequest`]s, so a lost ack is recovered by the
    /// drained hive's own retry.
    Departed,
}

impl ControlMsg {
    /// Encodes for a transport frame.
    pub fn encode(&self) -> crate::error::Result<Vec<u8>> {
        beehive_wire::to_vec(self).map_err(crate::error::Error::from)
    }

    /// Decodes from a transport frame.
    pub fn decode(bytes: &[u8]) -> crate::error::Result<Self> {
        beehive_wire::from_slice(bytes).map_err(crate::error::Error::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_roundtrip() {
        let m = ControlMsg::MigrateState {
            app: "te".into(),
            bee: BeeId::new(HiveId(1), 7),
            state: vec![1, 2, 3],
            colony: vec![Cell::new("S", "sw1")],
            repl_seq: 5,
        };
        let bytes = m.encode().unwrap();
        let back = ControlMsg::decode(&bytes).unwrap();
        match back {
            ControlMsg::MigrateState {
                app,
                bee,
                state,
                colony,
                repl_seq,
            } => {
                assert_eq!(app, "te");
                assert_eq!(bee, BeeId::new(HiveId(1), 7));
                assert_eq!(state, vec![1, 2, 3]);
                assert_eq!(colony, vec![Cell::new("S", "sw1")]);
                assert_eq!(repl_seq, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
