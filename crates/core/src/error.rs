//! Error types for the Beehive platform.

use std::fmt;

/// Result alias used across `beehive-core`.
pub type Result<T> = std::result::Result<T, Error>;

/// Platform-level errors.
#[derive(Debug)]
pub enum Error {
    /// A handler rejected a message; the enclosing state transaction was
    /// rolled back.
    Handler(String),
    /// A message type was received that no decoder is registered for.
    UnknownMessageType(String),
    /// Serialization failure (wire format).
    Wire(beehive_wire::Error),
    /// The referenced application is not installed on this hive.
    NoSuchApp(String),
    /// The referenced bee does not exist (anymore).
    NoSuchBee(crate::id::BeeId),
    /// A typed state read found a value that failed to decode.
    StateDecode {
        /// Dictionary name.
        dict: String,
        /// Entry key.
        key: String,
        /// The decode failure.
        source: beehive_wire::Error,
    },
    /// The transport failed to deliver a frame.
    Transport(String),
    /// The registry rejected an operation.
    Registry(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Handler(msg) => write!(f, "handler error: {msg}"),
            Error::UnknownMessageType(t) => {
                write!(f, "no decoder registered for message type {t:?}")
            }
            Error::Wire(e) => write!(f, "wire error: {e}"),
            Error::NoSuchApp(a) => write!(f, "application {a:?} is not installed"),
            Error::NoSuchBee(b) => write!(f, "bee {b} does not exist"),
            Error::StateDecode { dict, key, source } => {
                write!(
                    f,
                    "failed to decode state value at ({dict}, {key}): {source}"
                )
            }
            Error::Transport(msg) => write!(f, "transport error: {msg}"),
            Error::Registry(msg) => write!(f, "registry error: {msg}"),
            Error::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Wire(e) | Error::StateDecode { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<beehive_wire::Error> for Error {
    fn from(e: beehive_wire::Error) -> Self {
        Error::Wire(e)
    }
}

/// Convenience constructor for handler failures.
pub fn handler_err(msg: impl Into<String>) -> Error {
    Error::Handler(msg.into())
}
