//! Flight-recorder event journal: a typed, bounded ring of platform
//! lifecycle events.
//!
//! Causal traces ([`crate::trace`]) answer *"what happened to this
//! message?"*; the event journal answers *"what happened to this hive?"* —
//! bees spawning and retiring, migrations, quarantine transitions,
//! dead-letters, channel epoch mints, outbox compactions, registry Raft
//! term/leader changes and transport peer churn. Each event is stamped with
//! the hive id, the hive's virtual clock ([`crate::clock::Clock`]), a wall
//! clock for post-mortem correlation across machines, and the causal
//! `trace_id` when one is in scope.
//!
//! The ring follows the same shape as [`crate::trace::TraceCollector`] and
//! [`crate::supervision::DeadLetterStore`]: writers claim a slot with one
//! atomic fetch-add and take only that slot's mutex, so recording is O(1)
//! and emit sites never contend unless they collide on a wrapped slot.
//! Recording is observation-only: it reads the clock and never schedules
//! work, so enabling it cannot perturb deterministic simulation replay (the
//! chaos digests are byte-identical with and without the recorder — and the
//! chaos harness audits the journal's own well-formedness via
//! [`EventJournal::malformed`]).
//!
//! An optional JSONL sink ([`EventJournal::set_sink`]) appends one JSON
//! object per event for post-mortems; the HTTP status server
//! ([`crate::introspect`]) serves the in-memory ring live at `/events`.
//!
//! The `wall_ms` stamp is taken from the OS clock and is deliberately
//! excluded from every determinism audit. Under concurrent emitters (TCP
//! reader threads) `virt_ms` may be non-monotonic *across threads*; within
//! a single-threaded hive step — the only regime the chaos checker audits —
//! it is non-decreasing in `seq` order.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;
use crate::id::{BeeId, HiveId};

/// The lifecycle transition an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A bee was created on this hive (routed creation, singleton or
    /// staged-in shell).
    BeeSpawned,
    /// A bee was removed from this hive (retirement, merge-away or
    /// migration-out handoff).
    BeeRetired,
    /// This hive started shipping a bee to another hive.
    MigrationStart,
    /// A migrated bee's state was installed and activated here, or the
    /// source completed its handoff.
    MigrationCommit,
    /// A migration order could not proceed (bee missing or not movable).
    MigrationAbort,
    /// A bee's quarantine circuit breaker tripped open.
    QuarantineOpen,
    /// A quarantined bee's cooldown expired; its next message is the
    /// half-open probe.
    QuarantineHalfOpen,
    /// A probe succeeded and the breaker closed.
    QuarantineClose,
    /// A message was recorded in the dead-letter queue.
    DeadLettered,
    /// The reliable channel layer minted (or restored) its incarnation
    /// epoch.
    ChannelEpochMint,
    /// The durable outbox journal was rewritten from a state snapshot.
    OutboxCompaction,
    /// The registry Raft group moved to a new term.
    RaftTermChange,
    /// The registry Raft group elected (or learned of) a new leader.
    RaftLeaderChange,
    /// A transport connection to a peer was established (either direction).
    PeerConnect,
    /// A transport connection to a peer failed or was lost.
    PeerDisconnect,
    /// A frame was evicted from a full deferred queue (dropped before the
    /// wire).
    DeferredEvict,
    /// A replica detected a replication-sequence gap and requested a full
    /// state sync.
    ReplicaGap,
    /// Cluster membership changed: a hive joined as a learner, was promoted
    /// to voter, announced draining, was demoted, or was removed — the
    /// elastic scale-out/scale-in lifecycle.
    MembershipChange,
    /// A message addressed to a hive that has left the cluster was dropped
    /// to the dead-letter path instead of being retried forever.
    PeerDeparted,
    /// The registry Raft node installed a snapshot shipped by the leader
    /// (catch-up past the compaction horizon), or took one locally.
    SnapshotInstall,
    /// Durable storage failed (IO error or interior corruption). Recorded
    /// immediately before the hive fail-stops — the last entry a halted
    /// hive's flight recorder explains itself with.
    StorageFault,
    /// A journal recovery discarded a torn tail record (crash mid-append).
    /// Expected after a hard kill; benign, but counted.
    JournalTornTail,
}

impl EventKind {
    /// Every kind, in declaration order (stable for exposition and tests).
    pub const ALL: [EventKind; 22] = [
        EventKind::BeeSpawned,
        EventKind::BeeRetired,
        EventKind::MigrationStart,
        EventKind::MigrationCommit,
        EventKind::MigrationAbort,
        EventKind::QuarantineOpen,
        EventKind::QuarantineHalfOpen,
        EventKind::QuarantineClose,
        EventKind::DeadLettered,
        EventKind::ChannelEpochMint,
        EventKind::OutboxCompaction,
        EventKind::RaftTermChange,
        EventKind::RaftLeaderChange,
        EventKind::PeerConnect,
        EventKind::PeerDisconnect,
        EventKind::DeferredEvict,
        EventKind::ReplicaGap,
        EventKind::MembershipChange,
        EventKind::PeerDeparted,
        EventKind::SnapshotInstall,
        EventKind::StorageFault,
        EventKind::JournalTornTail,
    ];

    /// Stable snake_case label, used by the JSON exposition and metrics.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::BeeSpawned => "bee_spawned",
            EventKind::BeeRetired => "bee_retired",
            EventKind::MigrationStart => "migration_start",
            EventKind::MigrationCommit => "migration_commit",
            EventKind::MigrationAbort => "migration_abort",
            EventKind::QuarantineOpen => "quarantine_open",
            EventKind::QuarantineHalfOpen => "quarantine_half_open",
            EventKind::QuarantineClose => "quarantine_close",
            EventKind::DeadLettered => "dead_lettered",
            EventKind::ChannelEpochMint => "channel_epoch_mint",
            EventKind::OutboxCompaction => "outbox_compaction",
            EventKind::RaftTermChange => "raft_term_change",
            EventKind::RaftLeaderChange => "raft_leader_change",
            EventKind::PeerConnect => "peer_connect",
            EventKind::PeerDisconnect => "peer_disconnect",
            EventKind::DeferredEvict => "deferred_evict",
            EventKind::ReplicaGap => "replica_gap",
            EventKind::MembershipChange => "membership_change",
            EventKind::PeerDeparted => "peer_departed",
            EventKind::SnapshotInstall => "snapshot_install",
            EventKind::StorageFault => "storage_fault",
            EventKind::JournalTornTail => "journal_torn_tail",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Journal-local sequence, strictly increasing from 1 (survives ring
    /// wrap: overwritten events keep counting).
    pub seq: u64,
    /// The hive that recorded this event.
    pub hive: HiveId,
    /// The hive's [`crate::clock::Clock`] at recording time (virtual under
    /// simulation, monotonic-since-start in production).
    pub virt_ms: u64,
    /// OS wall clock (ms since the Unix epoch) for cross-machine
    /// correlation. Nondeterministic; never audited.
    pub wall_ms: u64,
    /// The causal trace in scope when the event fired, 0 when none.
    pub trace_id: u64,
    /// What happened.
    pub kind: EventKind,
    /// Owning application, empty when not app-scoped.
    pub app: String,
    /// The bee involved, if any.
    pub bee: Option<BeeId>,
    /// The peer hive involved, if any.
    pub peer: Option<HiveId>,
    /// Free-form context (kept short; panic payloads land here verbatim).
    pub detail: String,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline). The
    /// encoding is hand-rolled — the workspace deliberately has no JSON
    /// dependency — with full string escaping, so panic payloads containing
    /// quotes or newlines stay one line per event.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"hive\":");
        out.push_str(&self.hive.0.to_string());
        out.push_str(",\"virt_ms\":");
        out.push_str(&self.virt_ms.to_string());
        out.push_str(",\"wall_ms\":");
        out.push_str(&self.wall_ms.to_string());
        out.push_str(",\"trace_id\":");
        out.push_str(&self.trace_id.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.label());
        out.push_str("\",\"app\":\"");
        escape_json(&self.app, &mut out);
        out.push_str("\",\"bee\":");
        match self.bee {
            Some(b) => out.push_str(&b.0.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"peer\":");
        match self.peer {
            Some(p) => out.push_str(&p.0.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"detail\":\"");
        escape_json(&self.detail, &mut out);
        out.push_str("\"}");
        out
    }
}

///// JSON string escaping (same policy as the chrome-trace export): quotes,
/// backslashes and all control characters are escaped (`\u00xx`), so
/// newlines in panic payloads stay inside one event line and the JSONL sink
/// stays line-oriented.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A fixed-capacity ring of recent [`Event`]s with an optional JSONL sink.
pub struct EventJournal {
    hive: HiveId,
    clock: Arc<dyn Clock>,
    slots: Vec<Mutex<Option<Event>>>,
    head: AtomicUsize,
    next_seq: AtomicU64,
    recorded: AtomicU64,
    sink: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

impl EventJournal {
    /// A journal for `hive` retaining up to `capacity` events (minimum 1),
    /// stamping virtual time from `clock`.
    pub fn new(hive: HiveId, capacity: usize, clock: Arc<dyn Clock>) -> Self {
        let capacity = capacity.max(1);
        EventJournal {
            hive,
            clock,
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            next_seq: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            sink: Mutex::new(None),
        }
    }

    /// The hive this journal records for.
    pub fn hive(&self) -> HiveId {
        self.hive
    }

    /// Number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Opens (appending) a JSONL post-mortem sink at `path`: every event
    /// recorded from now on is also written as one JSON line. Flushed per
    /// event — the sink exists for crash forensics, not throughput.
    pub fn set_sink(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        *self.sink.lock() = Some(std::io::BufWriter::new(file));
        Ok(())
    }

    /// Records an event with no app/bee/peer/trace scope.
    pub fn record(&self, kind: EventKind, detail: impl Into<String>) {
        self.record_full(kind, 0, "", None, None, detail);
    }

    /// Records a fully scoped event. Stamps `seq`, virtual and wall time
    /// internally; emit sites only say what happened to whom.
    pub fn record_full(
        &self,
        kind: EventKind,
        trace_id: u64,
        app: &str,
        bee: Option<BeeId>,
        peer: Option<HiveId>,
        detail: impl Into<String>,
    ) {
        let event = Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            hive: self.hive,
            virt_ms: self.clock.now_ms(),
            wall_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            trace_id,
            kind,
            app: app.to_string(),
            bee,
            peer,
            detail: detail.into(),
        };
        if let Some(sink) = self.sink.lock().as_mut() {
            let _ = writeln!(sink, "{}", event.to_json());
            let _ = sink.flush();
        }
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock() = Some(event);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// All retained events in `seq` order (oldest first).
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The most recent `n` retained events, oldest of them first.
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let mut events = self.snapshot();
        let skip = events.len().saturating_sub(n);
        events.drain(..skip);
        events
    }

    /// Retained events of one causal trace, in `seq` order.
    pub fn events_for_trace(&self, trace_id: u64) -> Vec<Event> {
        let mut events = self.snapshot();
        events.retain(|e| e.trace_id == trace_id);
        events
    }

    /// Counts well-formedness violations in the retained ring: a `seq` that
    /// is not strictly increasing, a `virt_ms` that regresses in `seq`
    /// order, a `hive` stamp that isn't this journal's owner, or a retained
    /// count exceeding `recorded`. Deterministic — never inspects
    /// `wall_ms` — so the chaos harness can audit the recorder itself under
    /// fault schedules.
    pub fn malformed(&self) -> u64 {
        let events = self.snapshot();
        let mut bad = 0u64;
        if events.len() as u64 > self.recorded() {
            bad += 1;
        }
        for pair in events.windows(2) {
            if pair[1].seq <= pair[0].seq {
                bad += 1;
            }
            if pair[1].virt_ms < pair[0].virt_ms {
                bad += 1;
            }
        }
        for e in &events {
            if e.hive != self.hive {
                bad += 1;
            }
        }
        bad
    }

    /// Renders events as a JSON array (one line per event, for the status
    /// server's `/events` endpoint).
    pub fn to_json_array(events: &[Event]) -> String {
        let mut out = String::from("[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&e.to_json());
        }
        out.push_str("\n]\n");
        out
    }
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventJournal")
            .field("hive", &self.hive)
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    fn journal(capacity: usize) -> (Arc<SimClock>, EventJournal) {
        let clock = Arc::new(SimClock::new());
        let j = EventJournal::new(HiveId(3), capacity, clock.clone());
        (clock, j)
    }

    #[test]
    fn ring_overwrites_oldest_but_seq_and_recorded_keep_counting() {
        let (clock, j) = journal(3);
        for i in 0..5u64 {
            clock.advance(10);
            j.record(EventKind::BeeSpawned, format!("bee {i}"));
        }
        assert_eq!(j.recorded(), 5);
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        // The survivors are the three newest, in strictly increasing seq
        // order with non-decreasing virtual time.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert!(events.windows(2).all(|p| p[1].virt_ms >= p[0].virt_ms));
        assert_eq!(events[0].detail, "bee 2");
        assert_eq!(j.malformed(), 0);
    }

    #[test]
    fn recent_returns_the_tail_in_order() {
        let (_, j) = journal(8);
        for i in 0..6u64 {
            j.record(EventKind::BeeSpawned, format!("e{i}"));
        }
        let tail = j.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "e4");
        assert_eq!(tail[1].detail, "e5");
        assert_eq!(j.recent(100).len(), 6);
    }

    #[test]
    fn scoped_fields_roundtrip_and_filter_by_trace() {
        let (_, j) = journal(8);
        j.record_full(
            EventKind::DeadLettered,
            77,
            "te",
            Some(BeeId::new(HiveId(3), 9)),
            None,
            "poison",
        );
        j.record_full(
            EventKind::PeerConnect,
            0,
            "",
            None,
            Some(HiveId(2)),
            "dial ok",
        );
        let traced = j.events_for_trace(77);
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].kind, EventKind::DeadLettered);
        assert_eq!(traced[0].bee, Some(BeeId::new(HiveId(3), 9)));
        let all = j.snapshot();
        assert_eq!(all[1].peer, Some(HiveId(2)));
        assert_eq!(all[1].hive, HiveId(3));
    }

    #[test]
    fn json_escapes_quotes_newlines_and_control_chars() {
        // A panic payload with quotes, a newline and a tab must stay one
        // well-formed JSON line.
        let (_, j) = journal(4);
        j.record_full(
            EventKind::DeadLettered,
            5,
            "app\"x\"",
            Some(BeeId(42)),
            Some(HiveId(7)),
            "panicked at 'boom \"quoted\"'\nline2\ttabbed",
        );
        let json = j.snapshot()[0].to_json();
        assert!(!json.contains('\n'), "newline must be escaped: {json}");
        assert!(json.contains("\\u000a"), "{json}");
        assert!(json.contains("\\u0009"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\"app\":\"app\\\"x\\\"\""), "{json}");
        assert!(json.contains("\"kind\":\"dead_lettered\""), "{json}");
        assert!(json.contains("\"bee\":42"), "{json}");
        assert!(json.contains("\"peer\":7"), "{json}");
        assert!(json.contains("\"trace_id\":5"), "{json}");
        // Balanced braces and quotes — crude but dependency-free.
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('"').count() % 2, 0, "{json}");
    }

    #[test]
    fn jsonl_sink_appends_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("beehive-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let (_, j) = journal(4);
        j.set_sink(&path).unwrap();
        j.record(EventKind::ChannelEpochMint, "epoch 1");
        j.record_full(
            EventKind::DeadLettered,
            0,
            "te",
            None,
            None,
            "multi\nline\npanic",
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one JSON line per event:\n{text}");
        assert!(lines[0].contains("channel_epoch_mint"));
        assert!(lines[1].contains("multi\\u000aline"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_detects_seq_and_time_regressions() {
        let (clock, j) = journal(4);
        clock.advance(100);
        j.record(EventKind::BeeSpawned, "a");
        j.record(EventKind::BeeRetired, "b");
        assert_eq!(j.malformed(), 0);
        // Corrupt a slot directly: duplicate seq and regressed time.
        {
            let mut slot = j.slots[1].lock();
            let e = slot.as_mut().unwrap();
            e.seq = 1;
            e.virt_ms = 0;
        }
        assert!(j.malformed() >= 1);
        // A foreign hive stamp is also malformed.
        {
            let mut slot = j.slots[0].lock();
            slot.as_mut().unwrap().hive = HiveId(99);
        }
        assert!(j.malformed() >= 2);
    }

    #[test]
    fn kind_labels_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
        assert_eq!(EventKind::ALL.len(), seen.len());
    }

    #[test]
    fn json_array_renders_all_events() {
        let (_, j) = journal(4);
        j.record(EventKind::PeerConnect, "a");
        j.record(EventKind::PeerDisconnect, "b");
        let arr = EventJournal::to_json_array(&j.snapshot());
        assert!(arr.starts_with('['));
        assert!(arr.trim_end().ends_with(']'));
        assert_eq!(arr.matches("\"kind\"").count(), 2);
    }
}
