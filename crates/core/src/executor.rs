//! The parallel bee executor: a worker pool that runs checked-out bees'
//! mailbox batches on N OS threads while the hive thread keeps exclusive
//! ownership of routing, the registry, Raft I/O and migration.
//!
//! The paper's central invariant — each bee exclusively owns its mapped
//! cells — is exactly what makes this safe: bees with disjoint colonies
//! share no state, so their handlers can run concurrently without locks.
//! The protocol is **checkout / check-in**:
//!
//! 1. The hive drains its run queue and *checks out* every runnable bee
//!    from its queen ([`crate::queen::Queen::check_out`]): the bee's state,
//!    colony and entire pending mailbox move into a [`BeeJob`], and the bee
//!    is marked [`crate::queen::BeeStatus::CheckedOut`]. Bees that are
//!    mid-merge, mid-migration or staged are never checked out — they stay
//!    pinned to the hive thread's sequential path.
//! 2. Workers run each job's batch exactly like the sequential
//!    `Hive::run_bee` loop would (transaction per message, commit/rollback,
//!    cell claiming, replication journaling, instrumentation), accumulating
//!    all side effects in a [`BeeJobResult`] instead of applying them.
//! 3. The hive thread blocks until every job of the round is back, sorts
//!    results by bee id, *checks all bees back in first*, and only then
//!    applies side effects (outbox dispatch, control messages, registry
//!    proposals, instrumentation merge) in that deterministic order.
//!
//! Because the hive thread blocks for the round, no deliveries, registry
//! events or control messages can touch a checked-out bee concurrently —
//! one-bee-one-thread exclusivity holds trivially, and for applications
//! whose handlers emit no messages the final state is bit-identical to the
//! sequential executor (see `tests/behavior_equivalence.rs`).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::app::{App, RcvCtx};
use crate::cell::{Cell, WHOLE_DICT_KEY};
use crate::control::ControlMsg;
use crate::id::{BeeId, HiveId};
use crate::message::Envelope;
use crate::metrics::Instrumentation;
use crate::state::{BeeState, JournalOp, TxJournal, TxState};
use crate::supervision::{panic_detail, FailureKind, HandlerFaults};
use crate::trace::{TraceCollector, TraceSpan};

/// A condvar-based parker for the hive thread's idle wait. An `unpark` that
/// arrives while the thread is *not* parked is remembered, so a wakeup
/// between the idle check and the park is never lost.
pub(crate) struct Parker {
    notified: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            notified: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Blocks until [`Parker::unpark`] is called or `timeout` elapses.
    /// Returns immediately if an unpark is already pending.
    pub(crate) fn park(&self, timeout: Duration) {
        let mut notified = self.notified.lock();
        if !*notified {
            let _ = self.cv.wait_for(&mut notified, timeout);
        }
        *notified = false;
    }

    /// Wakes (or pre-wakes) the parked thread.
    pub(crate) fn unpark(&self) {
        let mut notified = self.notified.lock();
        *notified = true;
        self.cv.notify_one();
    }
}

/// One checked-out bee plus everything a worker needs to run its batch.
pub(crate) struct BeeJob {
    /// Index of the app in the hive's app table (round bookkeeping).
    pub app_idx: usize,
    /// The bee being run.
    pub bee: BeeId,
    /// The application (shared, immutable — handlers are `Send + Sync`).
    pub app: Arc<App>,
    /// The hive the bee lives on.
    pub hive: HiveId,
    /// Platform time for this round, in ms.
    pub now_ms: u64,
    /// The bee's checked-out state.
    pub state: BeeState,
    /// The bee's checked-out colony.
    pub colony: BTreeSet<Cell>,
    /// Whether the bee is pinned (local singleton).
    pub pinned: bool,
    /// Replication sequence at checkout.
    pub repl_seq: u64,
    /// Whether committed journals must be encoded for colony replication.
    pub replicate: bool,
    /// The bee's entire pending mailbox for this round.
    pub batch: Vec<(u16, Envelope)>,
    /// The hive's span ring buffer; workers record directly (slot-level
    /// locking only), so spans need no check-in round trip.
    pub tracer: Arc<TraceCollector>,
    /// Shared handler-fault injection table (tests / chaos runs).
    pub faults: Arc<HandlerFaults>,
}

/// One message whose handler failed (error or panic) during a batch. The
/// hive thread decides its fate on check-in: redeliver with backoff or
/// dead-letter once the budget is exhausted.
pub(crate) struct FailedDelivery {
    /// Handler index the envelope was dispatched to.
    pub hidx: u16,
    /// Human-readable handler name (for the dead letter).
    pub handler: String,
    /// The envelope, untouched — `deliveries` is bumped by the supervisor.
    pub env: Envelope,
    /// How the handler failed.
    pub kind: FailureKind,
    /// Error string or panic payload.
    pub detail: String,
}

/// Everything a batch produced, to be checked back in and applied by the
/// hive thread in deterministic (app, bee) order.
pub(crate) struct BeeJobResult {
    /// App index, copied from the job.
    pub app_idx: usize,
    /// The bee, copied from the job.
    pub bee: BeeId,
    /// Pinned flag, copied from the job.
    pub pinned: bool,
    /// The bee's state after the batch.
    pub state: BeeState,
    /// The bee's colony after the batch (including freshly claimed cells).
    pub colony: BTreeSet<Cell>,
    /// Replication sequence after the batch.
    pub repl_seq: u64,
    /// Cells written outside the colony, to be proposed as `AssignCells`.
    pub new_cells: Vec<Cell>,
    /// Messages emitted by committed handlers, in processing order.
    pub outbox: Vec<Envelope>,
    /// Control messages requested by committed handlers.
    pub control_out: Vec<(HiveId, ControlMsg)>,
    /// Encoded committed journals for colony replication: `(seq, bytes)`.
    pub journals: Vec<(u64, Vec<u8>)>,
    /// Whether the *last* message's handler requested retirement (matching
    /// the sequential executor, where a retire only collects the bee when
    /// the mailbox is empty afterwards).
    pub retire: bool,
    /// Handler invocations that returned an error.
    pub errors: u64,
    /// Messages processed.
    pub processed: u64,
    /// Messages whose handler failed, for supervised redelivery.
    pub failed: Vec<FailedDelivery>,
    /// Whether at least one message in the batch committed (resets the
    /// bee's consecutive-failure streak).
    pub had_success: bool,
    /// Failures at the *tail* of the batch (after the last success) — the
    /// bee's live consecutive-failure streak contribution.
    pub trailing_failures: u32,
    /// Instrumentation delta for the whole batch.
    pub instr: Instrumentation,
    /// Wall nanoseconds the worker spent on this batch.
    pub busy_nanos: u64,
    /// Which worker ran the batch.
    pub worker: usize,
}

/// Runs one bee's batch on a worker thread. This mirrors the sequential
/// `Hive::run_bee` per-message sequence exactly; any change there must be
/// reflected here (and vice versa).
///
/// The whole batch runs inside ONE open transaction with a savepoint per
/// message: a handler failure rolls back exactly its own message
/// ([`TxState::rollback_to`]) while committed messages' writes stay applied,
/// and each committed message drains its own replication journal
/// ([`TxState::take_journal_since`]) — byte-identical to the journals the
/// per-message engine produced, but without re-applying buffered ops or
/// cloning values at every message boundary.
fn run_batch(worker: usize, job: BeeJob) -> BeeJobResult {
    let BeeJob {
        app_idx,
        bee,
        app,
        hive,
        now_ms,
        mut state,
        mut colony,
        pinned,
        mut repl_seq,
        replicate,
        batch,
        tracer,
        faults,
    } = job;
    let app_name = app.name().clone();
    let mut instr = Instrumentation::default();
    let mut outbox: Vec<Envelope> = Vec::new();
    let mut control_out: Vec<(HiveId, ControlMsg)> = Vec::new();
    let mut journals: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut new_cells: Vec<Cell> = Vec::new();
    let mut retire_last = false;
    let mut errors = 0u64;
    let mut processed = 0u64;
    let mut failed: Vec<FailedDelivery> = Vec::new();
    let mut had_success = false;
    let mut trailing_failures = 0u32;
    let batch_started = std::time::Instant::now();

    // One open transaction for the whole batch; each message gets a
    // savepoint so a failure rolls back exactly that message.
    let mut tx = TxState::begin(&mut state);

    for (hidx, env) in batch {
        let handler = app.handler(hidx).expect("handler index valid");
        let in_type = env.msg.type_name().to_string();
        let msg_len = env.msg.encoded_len();

        let sp = tx.savepoint();
        let mut ctx = RcvCtx {
            hive,
            app: app_name.clone(),
            bee,
            src: env.src,
            now_ms,
            trace: env.trace,
            deliveries: env.deliveries,
            tx,
            outbox: Vec::new(),
            control_out: Vec::new(),
            retire: false,
        };
        let started = std::time::Instant::now();
        // A panic is contained at the message boundary, exactly like `Err`:
        // roll back the transaction, classify, and let the hive supervisor
        // decide between redelivery and the dead-letter queue.
        let outcome: Result<(), (FailureKind, String)> = if faults.should_fail(&app_name, &in_type)
        {
            Err((FailureKind::Error, "injected handler fault".to_string()))
        } else {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handler.rcv(env.msg.as_ref(), &mut ctx)
            })) {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err((FailureKind::Error, e)),
                Err(payload) => Err((FailureKind::Panic, panic_detail(payload.as_ref()))),
            }
        };
        let elapsed = started.elapsed().as_nanos() as u64;

        let RcvCtx {
            tx: tx_back,
            outbox: msg_out,
            control_out: ctl_out,
            retire,
            ..
        } = ctx;
        tx = tx_back;
        let ok = outcome.is_ok();
        let (journal, msg_out, ctl_out) = if ok {
            (tx.take_journal_since(&sp), msg_out, ctl_out)
        } else {
            tx.rollback_to(&sp);
            (TxJournal::default(), Vec::new(), Vec::new())
        };
        if let Err((kind, detail)) = outcome {
            instr.record_failure(kind);
            failed.push(FailedDelivery {
                hidx,
                handler: handler.name.clone(),
                env: env.clone(),
                kind,
                detail,
            });
        }
        if ok {
            had_success = true;
            trailing_failures = 0;
        } else {
            trailing_failures = trailing_failures.saturating_add(1);
        }
        // Only the batch's final message can retire the bee: earlier
        // messages always have more mail behind them (sequential parity).
        retire_last = ok && retire;

        // Claim newly written cells that fall outside the colony.
        if ok && !pinned {
            for op in &journal.ops {
                let (dict, key) = match op {
                    JournalOp::Put { dict, key, .. } => (dict, key),
                    JournalOp::Del { dict, key } => (dict, key),
                };
                if key == WHOLE_DICT_KEY {
                    continue;
                }
                let covered = colony.contains(&Cell {
                    dict: dict.clone(),
                    key: key.clone(),
                }) || colony.contains(&Cell::whole(dict.clone()));
                if !covered {
                    let cell = Cell {
                        dict: dict.clone(),
                        key: key.clone(),
                    };
                    colony.insert(cell.clone());
                    new_cells.push(cell);
                }
            }
        }

        // Colony replication: sequence and encode the committed journal.
        if ok && !pinned && replicate && !journal.is_empty() {
            repl_seq += 1;
            if let Ok(bytes) = beehive_wire::to_vec(&journal) {
                journals.push((repl_seq, bytes));
            }
        }

        // Instrumentation (accumulated locally; merged on check-in).
        if env.src.bee().is_some() {
            instr.record_matrix(env.src.hive(), hive);
        }
        {
            let stats = instr.bee(&app_name, bee);
            stats.record_in(env.src.hive(), env.src.bee(), msg_len);
            stats.handler_nanos += elapsed;
            if !ok {
                stats.errors += 1;
            }
        }
        for out in &msg_out {
            instr.bee(&app_name, bee).record_out(out.msg.encoded_len());
            instr.record_provenance(&app_name, &in_type, out.msg.type_name());
        }
        instr.record_in_type(&app_name, &in_type);
        let wait_us = now_ms.saturating_sub(env.trace.enqueued_ms) * 1_000;
        instr.record_latency(&app_name, &in_type, wait_us, elapsed / 1_000);
        tracer.record(TraceSpan {
            trace_id: env.trace.trace_id,
            span_id: env.trace.span_id,
            parent_span: env.trace.parent_span,
            hive,
            app: app_name.clone(),
            bee,
            msg_type: in_type.clone(),
            start_ms: now_ms,
            queue_wait_us: wait_us,
            runtime_ns: elapsed,
            ok,
        });
        if !ok {
            errors += 1;
        }
        processed += 1;
        outbox.extend(msg_out);
        control_out.extend(ctl_out);
    }
    // Per-message journals were drained at their savepoints; the residual
    // commit is empty and O(1) — the writes are already in `state`.
    let residue = tx.commit();
    debug_assert!(residue.is_empty(), "all journals drained per message");
    instr.bee_cells.insert(bee.0, colony.len() as u64);
    let busy_nanos = batch_started.elapsed().as_nanos() as u64;

    BeeJobResult {
        app_idx,
        bee,
        pinned,
        state,
        colony,
        repl_seq,
        new_cells,
        outbox,
        control_out,
        journals,
        retire: retire_last,
        errors,
        processed,
        failed,
        had_success,
        trailing_failures,
        instr,
        busy_nanos,
        worker,
    }
}

/// The worker pool. Jobs go out over one MPMC channel; results come back on
/// another. Dropping the executor closes the job channel and joins every
/// worker.
pub(crate) struct Executor {
    job_tx: Option<Sender<BeeJob>>,
    res_rx: Receiver<BeeJobResult>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Spawns `workers` threads (named `bh-worker-N`).
    pub(crate) fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        let (job_tx, job_rx) = unbounded::<BeeJob>();
        let (res_tx, res_rx) = unbounded::<BeeJobResult>();
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx = job_rx.clone();
            let tx = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("bh-worker-{w}"))
                .spawn(move || {
                    // Handler panics are caught per message inside
                    // `run_batch`, so the worker itself never unwinds on
                    // application faults.
                    while let Ok(job) = rx.recv() {
                        if tx.send(run_batch(w, job)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn executor worker");
            handles.push(handle);
        }
        Executor {
            job_tx: Some(job_tx),
            res_rx,
            handles,
        }
    }

    /// Queues a job for the pool.
    pub(crate) fn submit(&self, job: BeeJob) {
        self.job_tx
            .as_ref()
            .expect("executor alive")
            .send(job)
            .expect("executor workers alive");
    }

    /// Blocks for the next finished batch. Handler failures (including
    /// panics) ride back inside the result's `failed` list — they never
    /// propagate as panics to the hive thread.
    pub(crate) fn collect(&self) -> BeeJobResult {
        self.res_rx.recv().expect("executor workers alive")
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.job_tx = None; // close the channel; workers drain and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parker_remembers_early_unpark() {
        let p = Parker::new();
        p.unpark();
        let started = std::time::Instant::now();
        p.park(Duration::from_secs(5));
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "pending unpark must not block"
        );
    }

    #[test]
    fn parker_times_out() {
        let p = Parker::new();
        let started = std::time::Instant::now();
        p.park(Duration::from_millis(20));
        assert!(started.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn parker_wakes_across_threads() {
        let p = Arc::new(Parker::new());
        let p2 = p.clone();
        let woken = Arc::new(AtomicUsize::new(0));
        let woken2 = woken.clone();
        let t = std::thread::spawn(move || {
            p2.park(Duration::from_secs(10));
            woken2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        p.unpark();
        t.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }
}
