//! Design feedback (paper §3, §5): the platform analyzes applications and
//! their runtime behaviour and tells the developer where the design
//! bottlenecks are — e.g. that the naive TE's `Route` makes the whole
//! application effectively centralized.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::app::App;
use crate::id::{BeeId, HiveId};
use crate::metrics::{BeeStatsSnapshot, MsgLatency};

/// One observation about an application's design or behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeedbackItem {
    /// A dictionary is monolithic: some handler maps it whole, so *all* its
    /// cells collocate on a single bee, centralizing every function that
    /// shares the dictionary.
    MonolithicDict {
        /// The dictionary.
        dict: String,
        /// Handlers that declare whole-dictionary access.
        handlers: Vec<String>,
    },
    /// At runtime, one bee processes a dominant share of the app's messages:
    /// the application is effectively centralized.
    CentralizedExecution {
        /// The hot bee.
        bee: BeeId,
        /// The hive hosting it.
        hive: HiveId,
        /// Fraction of the app's messages it processed (0..=1).
        share: f64,
        /// Worst p99 handler runtime observed for the app, in µs — latency
        /// evidence that centralization actually hurts (None = no histogram
        /// data in the window).
        p99_runtime_us: Option<u64>,
    },
    /// A bee receives the majority of its messages from a *different* hive —
    /// placement is suboptimal (the optimizer will usually fix this; if it
    /// can't, the hint points at pinned producers).
    RemoteChatter {
        /// The bee.
        bee: BeeId,
        /// Its current hive.
        hive: HiveId,
        /// The hive most of its input comes from.
        dominant_source: HiveId,
        /// Fraction of its input from that hive (0..=1).
        share: f64,
        /// Worst p99 queue wait observed for the app, in µs — the latency
        /// cost of the misplacement (None = no histogram data).
        p99_queue_wait_us: Option<u64>,
    },
    /// Handlers wrote keys outside their mapped cells and collided with
    /// other colonies — a consistency-endangering design error.
    OutOfCellWrites {
        /// Number of conflicting writes observed.
        conflicts: u64,
    },
    /// A bee fails a large share of its deliveries: its messages burn their
    /// redelivery budget, land in the dead-letter queue, and the bee risks
    /// quarantine. Usually a handler bug or a poison message class.
    FailingHandler {
        /// The failing bee.
        bee: BeeId,
        /// The hive hosting it.
        hive: HiveId,
        /// Failed (rolled-back) deliveries observed in the window.
        failures: u64,
        /// Fraction of the bee's deliveries that failed (0..=1).
        failure_rate: f64,
    },
}

impl fmt::Display for FeedbackItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedbackItem::MonolithicDict { dict, handlers } => write!(
                f,
                "dictionary {dict:?} is monolithic because handler(s) {handlers:?} map it whole; \
                 every function sharing {dict:?} is effectively centralized"
            ),
            FeedbackItem::CentralizedExecution {
                bee,
                hive,
                share,
                p99_runtime_us,
            } => {
                write!(
                    f,
                    "{:.0}% of this app's messages are processed by {bee} on {hive}: \
                     the app is effectively centralized",
                    share * 100.0
                )?;
                if let Some(p99) = p99_runtime_us {
                    write!(f, " (p99 handler runtime {p99}us)")?;
                }
                Ok(())
            }
            FeedbackItem::RemoteChatter {
                bee,
                hive,
                dominant_source,
                share,
                p99_queue_wait_us,
            } => {
                write!(
                    f,
                    "{bee} on {hive} receives {:.0}% of its messages from {dominant_source}: \
                     placement is suboptimal",
                    share * 100.0
                )?;
                if let Some(p99) = p99_queue_wait_us {
                    write!(f, " (p99 queue wait {p99}us)")?;
                }
                Ok(())
            }
            FeedbackItem::OutOfCellWrites { conflicts } => write!(
                f,
                "{conflicts} write(s) outside the mapped cells collided with other colonies; \
                 map functions must cover every key the handler writes"
            ),
            FeedbackItem::FailingHandler {
                bee,
                hive,
                failures,
                failure_rate,
            } => write!(
                f,
                "{bee} on {hive} failed {:.0}% of its deliveries ({failures} rollbacks): \
                 messages will exhaust their redelivery budget and dead-letter, and the bee \
                 risks quarantine",
                failure_rate * 100.0
            ),
        }
    }
}

/// A feedback report for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackReport {
    /// The application.
    pub app: String,
    /// Observations, most severe first.
    pub items: Vec<FeedbackItem>,
}

impl FeedbackReport {
    /// Whether the report flags the app as (effectively) centralized.
    pub fn is_centralized(&self) -> bool {
        self.items.iter().any(|i| {
            matches!(
                i,
                FeedbackItem::MonolithicDict { .. } | FeedbackItem::CentralizedExecution { .. }
            )
        })
    }
}

impl fmt::Display for FeedbackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "feedback for app {:?}:", self.app)?;
        if self.items.is_empty() {
            writeln!(f, "  no design bottlenecks detected")?;
        }
        for item in &self.items {
            writeln!(f, "  - {item}")?;
        }
        Ok(())
    }
}

/// Static analysis: inspects an application's declared mappings.
pub fn design_feedback(app: &App) -> FeedbackReport {
    let mut items = Vec::new();
    for (dict, handlers) in app.whole_dict_handlers() {
        items.push(FeedbackItem::MonolithicDict { dict, handlers });
    }
    FeedbackReport {
        app: app.name().clone(),
        items,
    }
}

/// Runtime analysis: inspects aggregated per-bee statistics for one app.
///
/// `centralization_threshold` — flag when one bee's share of messages exceeds
/// it (paper-style default: 0.9). `chatter_threshold` — flag bees receiving
/// more than this fraction of their input from one remote hive. `latency` —
/// the app's per-message-type histograms, if collected; findings then cite
/// p99 latency evidence alongside the counts.
pub fn runtime_feedback(
    app: &str,
    snapshots: &[BeeStatsSnapshot],
    latency: Option<&BTreeMap<(String, String), MsgLatency>>,
    assign_conflicts: u64,
    centralization_threshold: f64,
    chatter_threshold: f64,
) -> FeedbackReport {
    let mut items = Vec::new();

    let app_p99 = |pick: fn(&MsgLatency) -> &crate::metrics::LatencyHistogram| {
        latency.and_then(|map| {
            map.iter()
                .filter(|((a, _), _)| a == app)
                .filter_map(|(_, l)| pick(l).p99_us())
                .max()
        })
    };
    let p99_runtime_us = app_p99(|l| &l.runtime);
    let p99_queue_wait_us = app_p99(|l| &l.queue_wait);

    let relevant: Vec<&BeeStatsSnapshot> = snapshots
        .iter()
        .filter(|s| s.app == app && !s.pinned)
        .collect();
    let total_msgs: u64 = relevant.iter().map(|s| s.stats.msgs_in).sum();

    if total_msgs > 0 {
        if let Some(top) = relevant.iter().max_by_key(|s| s.stats.msgs_in) {
            let share = top.stats.msgs_in as f64 / total_msgs as f64;
            if relevant.len() > 1 && share >= centralization_threshold {
                items.push(FeedbackItem::CentralizedExecution {
                    bee: top.bee,
                    hive: top.hive,
                    share,
                    p99_runtime_us,
                });
            }
        }
    }

    for s in &relevant {
        if let Some((src, count, total)) = s.stats.dominant_source_hive() {
            if src != s.hive && total >= 10 {
                let share = count as f64 / total as f64;
                if share > chatter_threshold {
                    items.push(FeedbackItem::RemoteChatter {
                        bee: s.bee,
                        hive: s.hive,
                        dominant_source: src,
                        share,
                        p99_queue_wait_us,
                    });
                }
            }
        }
    }

    // Failing handlers: flag bees whose rollback rate is high enough that
    // supervision (redelivery, dead-lettering, quarantine) is doing real
    // work. Pinned bees are included — a failing platform bee matters too.
    const FAILURE_MIN_SAMPLES: u64 = 10;
    const FAILURE_RATE_THRESHOLD: f64 = 0.5;
    for s in snapshots.iter().filter(|s| s.app == app) {
        if s.stats.msgs_in < FAILURE_MIN_SAMPLES {
            continue;
        }
        let rate = s.stats.errors as f64 / s.stats.msgs_in as f64;
        if rate >= FAILURE_RATE_THRESHOLD {
            items.push(FeedbackItem::FailingHandler {
                bee: s.bee,
                hive: s.hive,
                failures: s.stats.errors,
                failure_rate: rate,
            });
        }
    }

    if assign_conflicts > 0 {
        items.push(FeedbackItem::OutOfCellWrites {
            conflicts: assign_conflicts,
        });
    }

    FeedbackReport {
        app: app.to_string(),
        items,
    }
}

/// Merges per-window snapshots of the same bees (helper for analytics over
/// several collection periods).
pub fn merge_snapshots(windows: &[Vec<BeeStatsSnapshot>]) -> Vec<BeeStatsSnapshot> {
    let mut merged: BTreeMap<(String, u64), BeeStatsSnapshot> = BTreeMap::new();
    for window in windows {
        for snap in window {
            match merged.entry((snap.app.clone(), snap.bee.0)) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(snap.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let cur = o.get_mut();
                    cur.stats.merge(&snap.stats);
                    cur.hive = snap.hive; // latest placement wins
                    cur.cells = snap.cells;
                    cur.pinned |= snap.pinned;
                }
            }
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Mapped;
    use crate::metrics::BeeStats;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct M {
        k: String,
    }
    crate::impl_message!(M);

    fn snap(app: &str, bee: u32, hive: u32, msgs: u64, from_hive: u32) -> BeeStatsSnapshot {
        let mut stats = BeeStats::default();
        for _ in 0..msgs {
            stats.record_in(
                HiveId(from_hive),
                Some(BeeId::new(HiveId(from_hive), 99)),
                10,
            );
        }
        BeeStatsSnapshot {
            app: app.into(),
            bee: BeeId::new(HiveId(1), bee),
            hive: HiveId(hive),
            pinned: false,
            cells: 1,
            stats,
        }
    }

    #[test]
    fn monolithic_dict_is_flagged() {
        let app = App::builder("naive-te")
            .handle::<M>(|m| Mapped::cell("S", &m.k), |_m, _c| Ok(()))
            .handle_whole::<M>("Route", &["S", "T"], |_m, _c| Ok(()))
            .build();
        let report = design_feedback(&app);
        assert!(report.is_centralized());
        assert_eq!(report.items.len(), 2); // S and T
        assert!(report.to_string().contains("Route"));
    }

    #[test]
    fn clean_app_gets_clean_report() {
        let app = App::builder("clean")
            .handle::<M>(|m| Mapped::cell("S", &m.k), |_m, _c| Ok(()))
            .build();
        let report = design_feedback(&app);
        assert!(!report.is_centralized());
        assert!(report.items.is_empty());
    }

    #[test]
    fn centralized_execution_detected() {
        let snaps = vec![
            snap("te", 1, 1, 95, 1),
            snap("te", 2, 2, 3, 2),
            snap("te", 3, 3, 2, 3),
        ];
        let report = runtime_feedback("te", &snaps, None, 0, 0.9, 0.5);
        assert!(report.is_centralized());
    }

    #[test]
    fn balanced_execution_not_flagged() {
        let snaps = vec![
            snap("te", 1, 1, 30, 1),
            snap("te", 2, 2, 35, 2),
            snap("te", 3, 3, 35, 3),
        ];
        let report = runtime_feedback("te", &snaps, None, 0, 0.9, 0.95);
        assert!(!report.is_centralized());
    }

    #[test]
    fn remote_chatter_detected() {
        // Bee on hive 1 fed overwhelmingly from hive 4.
        let snaps = vec![snap("te", 1, 1, 100, 4)];
        let report = runtime_feedback("te", &snaps, None, 0, 2.0, 0.5);
        assert!(matches!(
            report.items.first(),
            Some(FeedbackItem::RemoteChatter {
                dominant_source: HiveId(4),
                ..
            })
        ));
    }

    #[test]
    fn latency_evidence_is_cited_when_available() {
        let snaps = vec![snap("te", 1, 1, 95, 1), snap("te", 2, 2, 5, 2)];
        let mut lat = MsgLatency::default();
        lat.runtime.observe(4_000);
        let mut map = BTreeMap::new();
        map.insert(("te".to_string(), "M".to_string()), lat);
        let report = runtime_feedback("te", &snaps, Some(&map), 0, 0.9, 0.5);
        assert!(matches!(
            report.items.first(),
            Some(FeedbackItem::CentralizedExecution {
                p99_runtime_us: Some(_),
                ..
            })
        ));
        assert!(report.to_string().contains("p99 handler runtime"));
    }

    #[test]
    fn failing_handler_cited_with_rate() {
        let mut s = snap("te", 1, 1, 20, 1);
        s.stats.errors = 15;
        let report = runtime_feedback("te", &[s], None, 0, 0.9, 0.5);
        assert!(matches!(
            report.items.first(),
            Some(FeedbackItem::FailingHandler { failures: 15, .. })
        ));
        assert!(report.to_string().contains("failed 75% of its deliveries"));

        // Below the sample floor or the rate threshold: no finding.
        let mut quiet = snap("te", 2, 1, 5, 1);
        quiet.stats.errors = 5;
        let report = runtime_feedback("te", &[quiet], None, 0, 0.9, 0.5);
        assert!(report.items.is_empty());
        let mut healthy = snap("te", 3, 1, 100, 1);
        healthy.stats.errors = 2;
        let report = runtime_feedback("te", &[healthy], None, 0, 0.9, 0.5);
        assert!(report.items.is_empty());
    }

    #[test]
    fn conflicts_reported() {
        let report = runtime_feedback("te", &[], None, 3, 0.9, 0.5);
        assert_eq!(
            report.items,
            vec![FeedbackItem::OutOfCellWrites { conflicts: 3 }]
        );
    }

    #[test]
    fn merge_snapshots_accumulates() {
        let w1 = vec![snap("te", 1, 1, 10, 2)];
        let w2 = vec![snap("te", 1, 5, 20, 2)];
        let merged = merge_snapshots(&[w1, w2]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].stats.msgs_in, 30);
        assert_eq!(merged[0].hive, HiveId(5), "latest placement wins");
    }
}
