//! The hive: one Beehive controller instance.
//!
//! A hive hosts installed applications' bees, routes messages by mapped
//! cells through the replicated registry, relays messages to remote hives,
//! executes the live-migration and colony-merge protocols, and drives the
//! registry Raft group.
//!
//! The hive is **sans-IO by construction**: all work happens inside
//! [`Hive::step`], time comes from a [`Clock`], and frames move through a
//! [`Transport`]. The simulator calls `step` in virtual time; production
//! deployments call [`Hive::run`] on a thread.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::app::{App, RcvCtx};
use crate::cell::{Cell, Mapped};
use crate::channel::{ChannelDelivery, ChannelTuning, ReliableChannels};
use crate::clock::Clock;
use crate::control::{ControlMsg, MembershipOp};
use crate::events::{EventJournal, EventKind};
use crate::executor::{BeeJob, Executor, Parker};
use crate::id::{AppName, BeeId, HiveId};
use crate::lifecycle::{Lifecycle, LifecycleStage};
use crate::message::{Dst, Envelope, Message, MessageRegistry, Source, WireEnvelope};
use crate::metrics::Instrumentation;
use crate::optimizer::{plan_migrations, BeeLoad, OptimizerConfig};
use crate::platform::Tick;
use crate::queen::{BeeStatus, Delivery, Queen};
use crate::registry::{RegistryCommand, RegistryEvent, RegistryOp, RegistryState};
use crate::replication::{replicas_of, ApplyOutcome, ShadowStore};
use crate::state::{BeeState, TxState};
use crate::supervision::{
    panic_detail, DeadLetter, DeadLetterStore, FailureKind, HandlerFaults, OverflowPolicy,
};
use crate::trace::{TraceCollector, TraceHub, TraceSpan};
use crate::transport::{Frame, FrameKind, Transport};
use beehive_raft::{ConfChange, ConfChangeKind};

/// How long a cross-hive trace query waits for stragglers before the hub
/// delivers whatever arrived (assembly is best-effort: an unreachable hive
/// must not wedge introspection).
const TRACE_QUERY_TIMEOUT_MS: u64 = 2_000;

/// How many unanswered `RemoveRequest` retries a drained hive tolerates
/// before assuming its removal committed and departing anyway. A removed
/// node stops being replicated to, so the final ack is the only signal it
/// gets — and that ack can be lost (the classic removed-server blind spot).
const MAX_REMOVE_ATTEMPTS: u32 = 8;

/// FNV-1a 64-bit over raw bytes — the same digest the chaos harness uses;
/// tiny, dependency-free and byte-stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Configuration of a hive.
#[derive(Clone)]
pub struct HiveConfig {
    /// This hive's id. Must be unique in the cluster.
    pub id: HiveId,
    /// All hives in the cluster (including this one). Leave it at just `id`
    /// for a standalone hive.
    pub all_hives: Vec<HiveId>,
    /// The subset of hives that vote in the registry Raft group; the rest
    /// follow as learners. Empty means "standalone": a purely local registry
    /// with no consensus traffic.
    pub registry_voters: Vec<HiveId>,
    /// Raft tunables for the registry group.
    pub raft: beehive_raft::Config,
    /// How many milliseconds one registry Raft tick lasts.
    pub raft_tick_ms: u64,
    /// Period of the platform [`Tick`] message (the paper's `TimeOut`),
    /// 0 disables ticks.
    pub tick_interval_ms: u64,
    /// Maximum units of work per [`Hive::step`] call.
    pub step_budget: usize,
    /// Registry proposals unanswered for this long are resubmitted.
    pub pending_retry_ms: u64,
    /// Messages for bees the registry doesn't know yet are retried for this
    /// long before being dropped.
    pub orphan_ttl_ms: u64,
    /// Colony replication factor: 1 disables replication; `r > 1` ships
    /// every committed transaction to `r - 1` shadow hives (see
    /// [`crate::replication`]).
    pub replication_factor: usize,
    /// Directory for durable registry-Raft state (term, vote, log,
    /// snapshots). `None` keeps it in memory — fine for simulations; set it
    /// in production so a restarted hive rejoins with its Raft state intact.
    pub registry_storage_dir: Option<std::path::PathBuf>,
    /// Registry snapshot interval: how many applied entries may accumulate
    /// past the last snapshot before the registry state machine is
    /// serialized and the Raft log compacted behind it. Lagging peers and
    /// joining learners below the compaction horizon then catch up via
    /// `InstallSnapshot` (O(state), not O(history)). `0` defers to
    /// [`beehive_raft::Config::snapshot_threshold`] (whose own 0 disables
    /// compaction); nonzero overrides it.
    pub snapshot_interval: u64,
    /// Fsync policy for durable registry storage. [`FsyncPolicy::Always`]
    /// (the default) syncs before every atomic rename — the Raft
    /// correctness requirement. [`FsyncPolicy::Never`] skips the sync for
    /// benches and tests: crash-atomic, but a power loss can lose
    /// acknowledged writes.
    ///
    /// [`FsyncPolicy::Always`]: beehive_raft::FsyncPolicy::Always
    /// [`FsyncPolicy::Never`]: beehive_raft::FsyncPolicy::Never
    pub fsync: beehive_raft::FsyncPolicy,
    /// Number of executor worker threads for bee handlers. `1` (the
    /// default) runs every handler on the hive thread — today's sequential
    /// semantics. `> 1` spawns a worker pool and runs disjoint-colony bees
    /// concurrently in checkout/check-in rounds (see `DESIGN.md`,
    /// "Execution model"); the hive thread always keeps routing, registry,
    /// Raft and migration to itself.
    pub workers: usize,
    /// Capacity of the causal-trace span ring buffer (see
    /// [`crate::trace::TraceCollector`]). Old spans are overwritten.
    pub trace_capacity: usize,
    /// Capacity of the flight-recorder event journal (see
    /// [`crate::events::EventJournal`]). Old events are overwritten; the
    /// recorded total keeps counting.
    pub event_capacity: usize,
    /// How many times a message whose handler failed (`Err` or panic) is
    /// redelivered before it is dead-lettered. 0 dead-letters on the first
    /// failure; the total attempts for a poisoned message is
    /// `max_redeliveries + 1`.
    pub max_redeliveries: u32,
    /// Base delay of the redelivery exponential backoff: attempt `n` waits
    /// [`crate::supervision::backoff_delay_ms`]`(base, n, bee)` — exponential
    /// in the attempt (capped at 64×base) plus a deterministic jitter derived
    /// from the bee id, so the schedule is reproducible across runs.
    pub redelivery_backoff_ms: u64,
    /// Consecutive handler failures on one bee that trip its quarantine
    /// circuit breaker. 0 disables quarantine.
    pub quarantine_threshold: u32,
    /// How long a quarantined bee rests before the half-open probe (one
    /// message); a probe success closes the breaker, a failure re-arms it.
    pub quarantine_cooldown_ms: u64,
    /// Per-bee mailbox bound. 0 (the default) is unbounded; otherwise the
    /// [`HiveConfig::overflow_policy`] decides what a full mailbox does.
    pub mailbox_capacity: usize,
    /// What to do when a bounded mailbox is full.
    pub overflow_policy: OverflowPolicy,
    /// Capacity of the dead-letter ring ([`DeadLetterStore`]). Old letters
    /// are overwritten; the recorded total keeps counting.
    pub dead_letter_capacity: usize,
    /// Seed mixed into this hive's internal randomness (today: the registry
    /// Raft election jitter). Two clusters built with the same ids and the
    /// same seeds make identical random choices — the hook deterministic
    /// simulation ([`beehive-sim`'s chaos harness]) relies on.
    pub rng_seed: u64,
    /// Base retransmission timeout of the reliable channel layer
    /// ([`crate::channel`]): an unacked application frame is re-sent after
    /// this delay, backed off exponentially per attempt with deterministic
    /// jitter (same shape as [`HiveConfig::redelivery_backoff_ms`]).
    pub channel_resend_ms: u64,
    /// How many unacked frames per peer the retransmit scan covers each
    /// step. The resend buffer itself is unbounded (dropping would lose
    /// messages); the window only bounds per-step retransmission work.
    pub channel_window: usize,
    /// Coalescing delay for standalone ack frames: a receiver with no
    /// return traffic flushes one cumulative ack after this many ms, so an
    /// N-message one-way burst produces O(1) ack frames.
    pub channel_ack_flush_ms: u64,
    /// Maximum messages the sequential executor drains from one bee's
    /// mailbox per run-queue turn, all inside ONE open transaction with a
    /// savepoint per message (commit/replication overhead amortizes; a
    /// failure rolls back exactly its own message). `1` (the default)
    /// preserves the classic round-robin interleaving across bees — the
    /// deterministic schedule the chaos harness digests depend on — so
    /// batching is an explicit opt-in per hive. Has no effect on the
    /// parallel executor (`workers > 1`), which always drains the whole
    /// checked-out mailbox as one batch.
    pub max_drain_batch: usize,
    /// Which TCP engine a real deployment binds for the inter-hive wire
    /// (`--transport` on beehive-node). Purely advisory inside the core —
    /// the transport is constructed by the binary and handed in — but kept
    /// in the config so deployment tooling and status output agree on it.
    pub transport: crate::transport::TransportPreference,
}

impl HiveConfig {
    /// A standalone single-hive configuration.
    pub fn standalone(id: HiveId) -> Self {
        HiveConfig {
            id,
            all_hives: vec![id],
            registry_voters: Vec::new(),
            raft: beehive_raft::Config::default(),
            raft_tick_ms: 50,
            tick_interval_ms: 1000,
            step_budget: 100_000,
            pending_retry_ms: 2_000,
            orphan_ttl_ms: 10_000,
            replication_factor: 1,
            registry_storage_dir: None,
            snapshot_interval: 0,
            fsync: beehive_raft::FsyncPolicy::Always,
            workers: 1,
            trace_capacity: 4096,
            event_capacity: 4096,
            max_redeliveries: 3,
            redelivery_backoff_ms: 100,
            quarantine_threshold: 10,
            quarantine_cooldown_ms: 5_000,
            mailbox_capacity: 0,
            overflow_policy: OverflowPolicy::default(),
            dead_letter_capacity: 1024,
            rng_seed: 0,
            channel_resend_ms: 200,
            channel_window: 1024,
            channel_ack_flush_ms: 5,
            max_drain_batch: 1,
            transport: crate::transport::TransportPreference::default(),
        }
    }

    /// A clustered configuration: `id` among `all_hives`, with the first
    /// `voters` hives forming the registry quorum.
    pub fn clustered(id: HiveId, all_hives: Vec<HiveId>, voters: usize) -> Self {
        let mut voters_list: Vec<HiveId> = all_hives.iter().copied().take(voters.max(1)).collect();
        if !voters_list.contains(&id) && voters_list.len() < all_hives.len() {
            // keep deterministic: voters are simply the first N hives
        }
        voters_list.sort();
        HiveConfig {
            registry_voters: voters_list,
            all_hives,
            ..HiveConfig::standalone(id)
        }
    }
}

/// Diagnostic counters exposed for tests, feedback and operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HiveCounters {
    /// Frames whose payload failed to decode.
    pub decode_errors: u64,
    /// Direct-addressed messages dropped because the bee is unknown and the
    /// orphan TTL expired.
    pub dropped_orphans: u64,
    /// Direct-addressed messages dropped because the handler was ambiguous.
    pub dropped_ambiguous: u64,
    /// Cells written outside a bee's mapped cells that turned out to be owned
    /// by another bee (an application design error).
    pub assign_conflicts: u64,
    /// Registry commands that were rejected.
    pub rejected_commands: u64,
    /// Registry commands forwarded toward the leader.
    pub forwarded_commands: u64,
    /// Outbound migrations started / completed.
    pub migrations_started: u64,
    /// Migrations whose state arrived and activated here.
    pub migrations_in: u64,
    /// Colony merges this hive participated in.
    pub merges: u64,
    /// Handler invocations that returned an error.
    pub handler_errors: u64,
    /// Handler invocations that panicked (contained at the bee boundary;
    /// also counted in `handler_errors`).
    pub handler_panics: u64,
    /// Failed messages re-queued for a supervised redelivery attempt.
    pub redeliveries: u64,
    /// Messages recorded in the dead-letter queue (all failure kinds).
    pub dead_letters: u64,
    /// Oldest-queued messages shed by bounded mailboxes under
    /// [`OverflowPolicy::Shed`].
    pub shed_messages: u64,
    /// Times a bee's quarantine circuit breaker opened (or re-armed after a
    /// failed half-open probe).
    pub quarantines: u64,
    /// Messages relayed to other hives.
    pub relays_out: u64,
    /// Transactions replicated to shadow hives.
    pub replicated_txs: u64,
    /// Full-state replica resyncs served or installed.
    pub replica_syncs: u64,
    /// Bees recovered from local shadows after a hive failure.
    pub failovers: u64,
    /// Handler invocations that completed successfully (committed their
    /// transaction). Together with `dead_letters`, `dropped_orphans` and the
    /// in-flight queues this makes external emits conserved — the chaos
    /// harness audits exactly that.
    pub handled_ok: u64,
    /// Direct-addressed messages silently lost because the addressed bee no
    /// longer exists on any hive ([`crate::routing::Delivery::NoBee`]).
    pub lost_no_bee: u64,
}

/// A handle for injecting messages into a hive from other threads (drivers,
/// IO loops, tests).
#[derive(Clone)]
pub struct HiveHandle {
    id: HiveId,
    tx: Sender<Envelope>,
    parker: Arc<Parker>,
}

impl HiveHandle {
    /// The hive this handle feeds.
    pub fn hive(&self) -> HiveId {
        self.id
    }

    /// Emits a message into the hive as external input.
    pub fn emit<M: Message>(&self, msg: M) {
        let _ = self.tx.send(Envelope::external(self.id, Arc::new(msg)));
        self.parker.unpark();
    }

    /// Emits a pre-wrapped message.
    pub fn emit_arc(&self, msg: Arc<dyn Message>) {
        let _ = self.tx.send(Envelope::external(self.id, msg));
        self.parker.unpark();
    }

    /// Injects a fully formed envelope.
    pub fn send(&self, env: Envelope) {
        let _ = self.tx.send(env);
        self.parker.unpark();
    }

    /// Wakes the hive's run loop without sending a message. Used by the
    /// status server after queueing work on a side channel the hive polls
    /// in its step (e.g. a [`crate::trace::TraceHub`] query).
    pub fn nudge(&self) {
        self.parker.unpark();
    }
}

enum RegBackend {
    Local {
        state: RegistryState,
        applied: Vec<(RegistryCommand, RegistryEvent)>,
    },
    Raft(Box<beehive_raft::RaftNode<RegistryState>>),
}

struct PendingRoute {
    app_name: AppName,
    cells_key: Vec<Cell>,
    cmd: RegistryCommand,
    waiting: Vec<(u16, Envelope)>,
    submitted_ms: u64,
}

struct StagedBee {
    state: BeeState,
    colony: Vec<Cell>,
    repl_seq: u64,
}

/// One Beehive controller.
pub struct Hive {
    cfg: HiveConfig,
    clock: Arc<dyn Clock>,
    transport: Box<dyn Transport>,
    apps: Vec<Arc<App>>,
    app_idx: HashMap<AppName, usize>,
    msg_registry: MessageRegistry,
    queens: Vec<Queen>,
    registry: RegBackend,
    instr: Arc<Mutex<Instrumentation>>,
    tracer: Arc<TraceCollector>,
    counters: HiveCounters,
    next_bee_seq: u32,
    next_cmd_seq: u64,
    pending_routes: HashMap<u64, PendingRoute>,
    /// Fire-and-forget registry commands (moves, removals, assignments)
    /// awaiting their applied event; resubmitted on the retry timer so a
    /// leaderless window can't strand a migration.
    pending_ops: HashMap<u64, (RegistryCommand, u64)>,
    inflight: HashMap<(AppName, Vec<Cell>), u64>,
    staged: HashMap<(AppName, BeeId), StagedBee>,
    orphans: VecDeque<(Envelope, u64)>,
    dispatch_queue: VecDeque<Envelope>,
    run_queue: VecDeque<(usize, BeeId)>,
    handle_tx: Sender<Envelope>,
    handle_rx: Receiver<Envelope>,
    last_raft_tick_ms: u64,
    last_app_tick_ms: u64,
    tick_seq: u64,
    /// Number of registry events applied locally (identical across hives
    /// for the same committed prefix — the relay fence).
    applied_seq: u64,
    /// Shadow copies of remote bees this hive replicates (colony replication).
    shadows: ShadowStore,
    /// Bees being recovered from local shadows (failover in progress).
    recovering: HashSet<(AppName, BeeId)>,
    /// Dead-letter queue: messages that exhausted their redelivery budget
    /// or were rejected by quarantine / mailbox bounds.
    dead_letters: Arc<DeadLetterStore>,
    /// Shared handler-fault injection table (tests / chaos runs); executor
    /// workers consult it before each handler invocation.
    faults: Arc<HandlerFaults>,
    /// Failed messages awaiting their backoff-delayed redelivery:
    /// `(envelope, due ms)`. The envelope's `dst` is already re-aimed at the
    /// exact bee + handler that failed.
    retry_queue: VecDeque<(Envelope, u64)>,
    /// Quarantined bees and when their cooldown expires; expired entries are
    /// pushed back to the run queue for the half-open probe.
    quarantine_timers: Vec<(usize, BeeId, u64)>,
    /// Last ms an undecodable-payload warning was logged per peer
    /// (rate-limits the log, not the counter).
    decode_error_logged: HashMap<HiveId, u64>,
    /// Reliable channel layer toward peers: per-peer sequencing, cumulative
    /// acks, retransmission and receiver dedup, journaled to the storage dir
    /// when one is configured (see [`crate::channel`]).
    channels: ReliableChannels,
    /// Last outbox-depth gauge pushed into instrumentation (skip the lock
    /// when nothing changed).
    last_outbox_depth: u64,
    /// The worker pool when `cfg.workers > 1`; `None` = sequential.
    executor: Option<Executor>,
    /// Parker for [`Hive::run`]'s idle wait, shared with every
    /// [`HiveHandle`] and handed to the transport as its waker.
    parker: Arc<Parker>,
    /// Flight-recorder journal of lifecycle events, shared with the queens,
    /// channels, shadows and the transport (see [`crate::events`]).
    events: Arc<EventJournal>,
    /// Cross-hive trace assembly hub: outside callers submit trace ids, the
    /// step loop broadcasts [`ControlMsg::TraceQuery`] and feeds replies
    /// back (see [`crate::trace::TraceHub`]).
    trace_hub: Arc<TraceHub>,
    /// In-flight trace queries and their expiry deadlines `(query_id, due)`.
    trace_query_deadlines: Vec<(u64, u64)>,
    /// Last observed registry Raft term/leader, for change events.
    last_raft_term: u64,
    last_raft_leader: Option<u64>,
    /// Last observed registry snapshot index / install count / lag, for
    /// change events and the instrumentation gauges.
    last_snapshot_index: u64,
    last_snapshot_installs: u64,
    last_snapshot_lag: u64,
    /// Shared membership-lifecycle cell: written by the step loop, read by
    /// the status server (`/healthz`) and signal handlers (see
    /// [`crate::lifecycle`]).
    lifecycle: Arc<Lifecycle>,
    /// The membership request currently pushed toward the registry leader:
    /// `(op, last sent ms, attempts)`. Re-sent on the pending-retry timer
    /// until the matching conf change (or the leader's `Departed` ack) is
    /// observed.
    pending_membership: Option<(MembershipOp, u64, u32)>,
    /// Peers that announced they are draining: never a migration target.
    draining_peers: HashSet<HiveId>,
    /// This hive's advertised transport address, carried on join requests
    /// so peers learn how to reach it (empty for simulated fabrics).
    advertise_addr: String,
    /// Last ms a draining leader (re-)issued its leadership transfer.
    last_transfer_ms: u64,
}

impl Hive {
    /// Creates a hive. Install applications with [`Hive::install`] before
    /// stepping.
    pub fn new(cfg: HiveConfig, clock: Arc<dyn Clock>, mut transport: Box<dyn Transport>) -> Self {
        assert_eq!(
            cfg.id,
            transport.local(),
            "transport endpoint must match hive id"
        );
        // The flight recorder comes up first so durable-storage faults found
        // while restoring state land in the journal before the hive halts.
        let events = Arc::new(EventJournal::new(cfg.id, cfg.event_capacity, clock.clone()));
        let storage_fatal = |events: &EventJournal, detail: String| -> ! {
            events.record(EventKind::StorageFault, detail.clone());
            panic!("hive {}: fatal storage fault: {detail}", cfg.id.0);
        };
        let registry = if cfg.registry_voters.is_empty() {
            RegBackend::Local {
                state: RegistryState::new(),
                applied: Vec::new(),
            }
        } else {
            let me = cfg.id.as_raft();
            let voters: Vec<u64> = cfg.registry_voters.iter().map(|h| h.as_raft()).collect();
            let learners: Vec<u64> = cfg
                .all_hives
                .iter()
                .map(|h| h.as_raft())
                .filter(|id| !voters.contains(id))
                .collect();
            let raft_cfg = beehive_raft::Config {
                rng_seed: cfg.raft.rng_seed
                    ^ me.wrapping_mul(0xA076_1D64_78BD_642F)
                    ^ cfg.rng_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                // A hive-level snapshot interval overrides the raw raft
                // threshold (0 = keep whatever the raft config says).
                snapshot_threshold: if cfg.snapshot_interval > 0 {
                    cfg.snapshot_interval
                } else {
                    cfg.raft.snapshot_threshold
                },
                ..cfg.raft.clone()
            };
            let storage: Box<dyn beehive_raft::Storage> = match &cfg.registry_storage_dir {
                Some(dir) => {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        storage_fatal(
                            &events,
                            format!("create registry storage dir {}: {e}", dir.display()),
                        );
                    }
                    let path = dir.join(format!("hive-{}.raft", cfg.id.0));
                    match beehive_raft::FileStorage::open_with(&path, cfg.fsync) {
                        Ok(s) => Box::new(s),
                        Err(e) => storage_fatal(
                            &events,
                            format!("open registry storage {}: {e}", path.display()),
                        ),
                    }
                }
                None => Box::new(beehive_raft::MemStorage::new()),
            };
            let node = if voters.contains(&me) {
                let peers: Vec<u64> = voters.iter().copied().filter(|&v| v != me).collect();
                let peer_learners: Vec<u64> = learners.clone();
                beehive_raft::RaftNode::with_membership(
                    me,
                    peers,
                    peer_learners,
                    false,
                    raft_cfg,
                    RegistryState::new(),
                    storage,
                )
            } else {
                beehive_raft::RaftNode::new_learner(
                    me,
                    voters,
                    raft_cfg,
                    RegistryState::new(),
                    storage,
                )
            };
            if let Some(e) = node.storage_fault() {
                storage_fatal(&events, format!("registry state unusable at boot: {e}"));
            }
            RegBackend::Raft(Box::new(node))
        };
        let executor = if cfg.workers > 1 {
            Some(Executor::new(cfg.workers))
        } else {
            None
        };
        let tracer = Arc::new(TraceCollector::new(cfg.trace_capacity));
        let dead_letters = Arc::new(DeadLetterStore::new(cfg.dead_letter_capacity));
        transport.set_events(events.clone());
        let mut channels = ReliableChannels::new(
            cfg.id,
            ChannelTuning {
                resend_ms: cfg.channel_resend_ms,
                window: cfg.channel_window,
                ack_flush_ms: cfg.channel_ack_flush_ms,
            },
            cfg.registry_storage_dir.as_deref(),
            clock.now_ms(),
        );
        channels.set_events(events.clone());
        if let Some(detail) = channels.storage_fault() {
            storage_fatal(
                &events,
                format!("outbox journal unusable at boot: {detail}"),
            );
        }
        let mut shadows = ShadowStore::new();
        shadows.set_events(events.clone());
        let (handle_tx, handle_rx) = unbounded();
        let mut msg_registry = MessageRegistry::new();
        msg_registry.register::<Tick>();
        msg_registry.register::<crate::metrics::HiveMetrics>();
        let mut hive = Hive {
            cfg,
            clock,
            transport,
            apps: Vec::new(),
            app_idx: HashMap::new(),
            msg_registry,
            queens: Vec::new(),
            registry,
            tracer,
            instr: Arc::new(Mutex::new(Instrumentation::default())),
            counters: HiveCounters::default(),
            next_bee_seq: 1,
            next_cmd_seq: 1,
            pending_routes: HashMap::new(),
            pending_ops: HashMap::new(),
            inflight: HashMap::new(),
            staged: HashMap::new(),
            orphans: VecDeque::new(),
            dispatch_queue: VecDeque::new(),
            run_queue: VecDeque::new(),
            handle_tx,
            handle_rx,
            last_raft_tick_ms: 0,
            last_app_tick_ms: 0,
            tick_seq: 0,
            applied_seq: 0,
            shadows,
            recovering: HashSet::new(),
            dead_letters,
            faults: Arc::new(HandlerFaults::new()),
            retry_queue: VecDeque::new(),
            quarantine_timers: Vec::new(),
            decode_error_logged: HashMap::new(),
            channels,
            last_outbox_depth: 0,
            executor,
            parker: Arc::new(Parker::new()),
            events,
            trace_hub: Arc::new(TraceHub::new()),
            trace_query_deadlines: Vec::new(),
            last_raft_term: 0,
            last_raft_leader: None,
            last_snapshot_index: 0,
            last_snapshot_installs: 0,
            last_snapshot_lag: 0,
            lifecycle: Arc::new(Lifecycle::default()),
            pending_membership: None,
            draining_peers: HashSet::new(),
            advertise_addr: String::new(),
            last_transfer_ms: 0,
        };
        // Trace-hub waits measure against the hive's own clock (virtual in
        // simulation), with the wall clock only as a safety net.
        hive.trace_hub.set_clock(hive.clock.clone());
        if let RegBackend::Raft(node) = &hive.registry {
            // Restored durable state: start the fence at the snapshot point,
            // and the term/leader watermarks at the restored values so the
            // journal only records genuine changes from here on.
            hive.applied_seq = node.last_applied();
            hive.last_raft_term = node.term();
            hive.last_raft_leader = node.leader_hint();
            hive.last_snapshot_index = node.snapshot_index();
            hive.last_snapshot_installs = node.snapshots_installed();
            hive.last_snapshot_lag = node.snapshot_lag();
        }
        let torn = hive.channels.torn_truncations();
        if torn > 0 {
            hive.instr.lock().journal_torn_truncations += torn;
        }
        hive
    }

    /// This hive's id.
    pub fn id(&self) -> HiveId {
        self.cfg.id
    }

    /// Installs an application. All hives in a cluster must install the same
    /// applications (the platform replicates *functions* everywhere; only
    /// state placement differs).
    pub fn install(&mut self, app: App) {
        assert!(
            !self.app_idx.contains_key(app.name()),
            "app {:?} installed twice",
            app.name()
        );
        app.register_messages(&mut self.msg_registry);
        self.app_idx.insert(app.name().clone(), self.apps.len());
        let mut queen = Queen::new(app.name().clone());
        queen.set_events(self.events.clone());
        self.queens.push(queen);
        self.apps.push(Arc::new(app));
    }

    /// A cloneable handle for injecting external messages.
    pub fn handle(&self) -> HiveHandle {
        HiveHandle {
            id: self.cfg.id,
            tx: self.handle_tx.clone(),
            parker: self.parker.clone(),
        }
    }

    /// Emits a message as external input (convenience for tests/drivers).
    pub fn emit<M: Message>(&mut self, msg: M) {
        self.dispatch_queue
            .push_back(Envelope::external(self.cfg.id, Arc::new(msg)));
    }

    /// Shared instrumentation store (used by the collector platform app).
    pub fn instrumentation(&self) -> Arc<Mutex<Instrumentation>> {
        self.instr.clone()
    }

    /// This hive's causal-trace span collector.
    pub fn tracer(&self) -> Arc<TraceCollector> {
        self.tracer.clone()
    }

    /// This hive's flight-recorder event journal.
    pub fn events(&self) -> Arc<EventJournal> {
        self.events.clone()
    }

    /// The cross-hive trace assembly hub. Submit a trace id, wake the hive
    /// ([`HiveHandle::nudge`]), and wait: the step loop pulls the trace's
    /// spans from every reachable hive and completes the query.
    pub fn trace_hub(&self) -> Arc<TraceHub> {
        self.trace_hub.clone()
    }

    /// The shared membership-lifecycle cell (also handed to
    /// [`crate::introspect::StatusContext`] so `/healthz` reports the stage,
    /// and polled by signal handlers driving a drain).
    pub fn lifecycle(&self) -> Arc<Lifecycle> {
        self.lifecycle.clone()
    }

    /// Peers that announced they are draining (sorted; never a migration
    /// target until their removal commits).
    pub fn draining_peers(&self) -> Vec<HiveId> {
        let mut v: Vec<HiveId> = self.draining_peers.iter().copied().collect();
        v.sort();
        v
    }

    /// Starts the elastic-join lifecycle. Call once after construction on a
    /// hive booted with `--join` into an existing cluster: its registry node
    /// runs as a learner, and the step loop pushes a
    /// [`MembershipOp::JoinRequest`] toward the leader until the
    /// `AddLearner` conf change commits, then requests promotion to voter
    /// once the learner has applied the whole committed log.
    /// `advertise_addr` is this hive's transport address, carried on the
    /// join request so every peer can connect back (empty for simulated
    /// fabrics).
    pub fn begin_join(&mut self, advertise_addr: &str) {
        if !matches!(self.registry, RegBackend::Raft(_)) {
            return; // a standalone hive has nothing to join
        }
        self.advertise_addr = advertise_addr.to_string();
        self.lifecycle.set(LifecycleStage::Joining);
        self.pending_membership = Some((MembershipOp::JoinRequest, 0, 0));
        self.events.record(
            EventKind::MembershipChange,
            "join requested: booting as a registry learner".to_string(),
        );
    }

    /// Starts the graceful scale-in lifecycle: marks the hive draining (so
    /// `/healthz` reports it and peers stop placing bees here), then the
    /// step loop evacuates every registry-owned bee onto survivors over the
    /// live-migration path, waits for the channel outbox to be fully acked,
    /// hands off registry leadership if held, demotes voter → learner →
    /// removed, and finally moves the lifecycle to
    /// [`LifecycleStage::Departed`] ([`Hive::run_elastic`] then returns).
    pub fn begin_drain(&mut self) {
        if self.lifecycle.is_leaving() {
            return;
        }
        self.lifecycle.set(LifecycleStage::Draining);
        self.events.record(
            EventKind::MembershipChange,
            "drain requested: evacuating bees and flushing channels".to_string(),
        );
        let peers: Vec<HiveId> = self
            .cfg
            .all_hives
            .iter()
            .copied()
            .filter(|&h| h != self.cfg.id)
            .collect();
        for peer in peers {
            self.send_control(
                peer,
                &ControlMsg::MembershipChange {
                    node: self.cfg.id,
                    addr: String::new(),
                    op: MembershipOp::Draining,
                },
            );
        }
        // Unpin registry-owned bees so the evacuation migrations are not
        // refused (per-hive singletons own no cells and die with the
        // process).
        for queen in &mut self.queens {
            for id in queen.bee_ids() {
                if queen.bee(id).is_some_and(|b| !b.colony.is_empty()) {
                    queen.unpin(id);
                }
            }
        }
    }

    /// This hive's dead-letter queue.
    pub fn dead_letters(&self) -> Arc<DeadLetterStore> {
        self.dead_letters.clone()
    }

    /// Drains the dead-letter queue back into dispatch with a fresh
    /// redelivery budget (operator "requeue" after fixing the fault).
    /// Returns the number of messages requeued.
    pub fn requeue_dead_letters(&mut self) -> usize {
        let letters = self.dead_letters.drain();
        let n = letters.len();
        for letter in letters {
            let mut env = letter.envelope;
            env.deliveries = 0;
            self.dispatch_queue.push_back(env);
        }
        n
    }

    /// Arms an injected handler fault: the next `times` deliveries of
    /// `msg_type` (wire-name suffix match) to `app` fail as if the handler
    /// returned `Err`. Test/chaos API — exercises the whole supervision
    /// path (redelivery, dead-lettering, quarantine) without a special app.
    pub fn inject_handler_fault(&mut self, app: &str, msg_type: &str, times: u32) {
        self.faults.fail(app, msg_type, times);
    }

    /// The shared handler-fault table (drivers can arm faults from other
    /// threads; executor workers consult it per message).
    pub fn handler_faults(&self) -> Arc<HandlerFaults> {
        self.faults.clone()
    }

    /// Diagnostic counters.
    pub fn counters(&self) -> &HiveCounters {
        &self.counters
    }

    /// Read-only view of the registry mirror. In Raft mode this is the local
    /// applied state (may lag the leader slightly).
    pub fn registry_view(&self) -> &RegistryState {
        match &self.registry {
            RegBackend::Local { state, .. } => state,
            RegBackend::Raft(node) => node.state_machine(),
        }
    }

    /// Whether this hive currently leads the registry group (standalone
    /// hives trivially do).
    pub fn is_registry_leader(&self) -> bool {
        match &self.registry {
            RegBackend::Local { .. } => true,
            RegBackend::Raft(node) => node.is_leader(),
        }
    }

    /// Index the registry log has been compacted through (0 in local mode or
    /// before the first snapshot).
    pub fn registry_snapshot_index(&self) -> u64 {
        match &self.registry {
            RegBackend::Local { .. } => 0,
            RegBackend::Raft(node) => node.snapshot_index(),
        }
    }

    /// Number of snapshots this hive has had installed by a peer (catch-up
    /// below the compaction horizon).
    pub fn registry_snapshot_installs(&self) -> u64 {
        match &self.registry {
            RegBackend::Local { .. } => 0,
            RegBackend::Raft(node) => node.snapshots_installed(),
        }
    }

    /// Torn tail records truncated off the outbox journal when this
    /// incarnation booted — nonzero means the previous process died
    /// mid-append and recovery discarded the half-written record.
    pub fn journal_torn_truncations(&self) -> u64 {
        self.channels.torn_truncations()
    }

    /// The installed applications (shared with executor workers).
    pub fn apps(&self) -> &[Arc<App>] {
        &self.apps
    }

    /// Number of local bees of `app`.
    pub fn local_bee_count(&self, app: &str) -> usize {
        self.app_idx
            .get(app)
            .map(|&i| self.queens[i].len())
            .unwrap_or(0)
    }

    /// All local bees of `app` with their colony sizes.
    pub fn local_bees(&self, app: &str) -> Vec<(BeeId, usize)> {
        let Some(&i) = self.app_idx.get(app) else {
            return Vec::new();
        };
        self.queens[i]
            .bee_ids()
            .into_iter()
            .map(|b| {
                (
                    b,
                    self.queens[i].bee(b).map(|lb| lb.colony.len()).unwrap_or(0),
                )
            })
            .collect()
    }

    /// Reads a value from a local bee's state (test/inspection API).
    pub fn peek_state<T: serde::de::DeserializeOwned>(
        &self,
        app: &str,
        bee: BeeId,
        dict: &str,
        key: &str,
    ) -> Option<T> {
        let &i = self.app_idx.get(app)?;
        let lb = self.queens[i].bee(bee)?;
        lb.state.dict(dict)?.get(key).ok().flatten()
    }

    /// Pre-claims cells for `app` on this hive (used by evaluations to
    /// reproduce the paper's "artificially assign the cells of all switches
    /// to the bees on the first hive").
    pub fn preclaim(&mut self, app: &str, cells: Vec<Cell>) {
        let Some(&app_idx) = self.app_idx.get(app) else {
            return;
        };
        let canonical = Mapped::Cells(cells).canonicalize(|d| self.apps[app_idx].is_monolithic(d));
        let Mapped::Cells(cells) = canonical else {
            return;
        };
        self.route_cells(app_idx, None, cells, None);
    }

    /// Requests a live migration of `bee` (of `app`, currently on `from`)
    /// to hive `to`.
    pub fn request_migration(&mut self, app: &str, bee: BeeId, from: HiveId, to: HiveId) {
        let msg = ControlMsg::RequestMigration {
            app: app.to_string(),
            bee,
            to,
        };
        if from == self.cfg.id {
            self.handle_control(self.cfg.id, msg);
        } else {
            self.send_control(from, &msg);
        }
    }

    /// Fails over every bee this hive shadows whose registry record still
    /// points at `dead`: proposes `MoveBee(bee → self)` and, once the move
    /// commits, promotes the local shadow to the live bee. Failure detection
    /// is the deployment's job; call this once the registry group has a live
    /// leader again. Returns the number of recoveries initiated.
    pub fn recover_from(&mut self, dead: HiveId) -> usize {
        let mut candidates: Vec<(AppName, BeeId, bool)> = self
            .shadows
            .keys()
            .filter(|(_, bee)| self.registry_view().hive_of(*bee) == Some(dead))
            .map(|(a, b)| (a.clone(), b, true))
            .collect();
        // A migration staged here whose source died before the MoveBee
        // committed is also recoverable: we hold a full state snapshot, and
        // adopting it is exactly the move the dead source was proposing.
        for ((app, bee), _) in &self.staged {
            if self.registry_view().hive_of(*bee) == Some(dead)
                && !candidates.iter().any(|(_, b, _)| b == bee)
            {
                candidates.push((app.clone(), *bee, false));
            }
        }
        candidates.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let n = candidates.len();
        for (app, bee, shadow) in candidates {
            if shadow {
                self.recovering.insert((app, bee));
            }
            self.submit_tracked(RegistryOp::MoveBee {
                bee,
                to: self.cfg.id,
            });
        }
        n
    }

    /// Number of shadow bees this hive currently holds (colony replication).
    pub fn shadow_count(&self) -> usize {
        self.shadows.len()
    }

    // ------------------------------------------------------------------
    // Audit accessors (invariant checkers / chaos harness)
    // ------------------------------------------------------------------

    /// Number of registry events applied locally — the relay fence. Two
    /// hives with equal `applied_seq` have applied the same committed prefix
    /// and must agree on the registry ([`Hive::registry_digest`]).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// FNV-1a digest of the serialized registry mirror. Hives with equal
    /// [`Hive::applied_seq`] must produce equal digests — the
    /// registry-agreement invariant the chaos harness audits.
    pub fn registry_digest(&self) -> u64 {
        match beehive_wire::to_vec(self.registry_view()) {
            Ok(bytes) => fnv1a(&bytes),
            Err(_) => 0,
        }
    }

    /// Counts messages queued anywhere inside this hive whose wire type name
    /// ends with `type_suffix`: the dispatch queue, orphan buffer,
    /// redelivery retry queue, registry-route waiting rooms and every bee
    /// mailbox. Excludes the cross-thread handle channel
    /// ([`HiveHandle::emit`]) — conservation audits must emit via
    /// [`Hive::emit`] or run a `step` first (which drains the channel).
    pub fn queued_messages(&self, type_suffix: &str) -> u64 {
        let hit = |env: &Envelope| u64::from(env.msg.type_name().ends_with(type_suffix));
        let mut n = 0u64;
        n += self.dispatch_queue.iter().map(hit).sum::<u64>();
        n += self.orphans.iter().map(|(env, _)| hit(env)).sum::<u64>();
        n += self
            .retry_queue
            .iter()
            .map(|(env, _)| hit(env))
            .sum::<u64>();
        for p in self.pending_routes.values() {
            n += p.waiting.iter().map(|(_, env)| hit(env)).sum::<u64>();
        }
        for queen in &self.queens {
            for id in queen.bee_ids() {
                if let Some(b) = queen.bee(id) {
                    n += b.mailbox.iter().map(|(_, env)| hit(env)).sum::<u64>();
                }
            }
        }
        n
    }

    /// Active bees of `app` with their colonies, sorted by bee id — the
    /// ownership-exclusivity checker's raw material.
    pub fn active_colonies(&self, app: &str) -> Vec<(BeeId, Vec<Cell>)> {
        let Some(&i) = self.app_idx.get(app) else {
            return Vec::new();
        };
        let mut out: Vec<(BeeId, Vec<Cell>)> = self.queens[i]
            .active_bees()
            .filter_map(|b| {
                self.queens[i]
                    .bee(b)
                    .map(|lb| (b, lb.colony.iter().cloned().collect()))
            })
            .collect();
        out.sort_by_key(|(b, _)| *b);
        out
    }

    /// A bee's full dictionary contents in deterministic order: dict name →
    /// `(key, encoded value)` pairs (both BTreeMap-backed, so already
    /// sorted). Audit API for the equivalence and atomicity checkers.
    pub fn audit_dicts(&self, app: &str, bee: BeeId) -> Vec<(String, Vec<(String, Vec<u8>)>)> {
        let Some(&i) = self.app_idx.get(app) else {
            return Vec::new();
        };
        let Some(lb) = self.queens[i].bee(bee) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for name in lb.state.dict_names() {
            let Some(d) = lb.state.dict(name) else {
                continue;
            };
            let entries: Vec<(String, Vec<u8>)> =
                d.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect();
            out.push((name.clone(), entries));
        }
        out
    }

    /// Reliable-channel statistics: per-peer sequencing, dedup and
    /// retransmission counters. The chaos conservation checker derives its
    /// in-transit term from `sent`/`delivered`.
    pub fn channel_stats(&self) -> crate::channel::ChannelStats {
        self.channels.stats()
    }

    /// Forces a local bee to own `cells` for `app` WITHOUT consulting the
    /// registry — a deliberately broken path that violates ownership
    /// exclusivity. Exists only so chaos tests can prove the invariant
    /// checkers catch real bugs; never call it outside tests.
    #[doc(hidden)]
    pub fn debug_force_own(&mut self, app: &str, cells: Vec<Cell>) -> Option<BeeId> {
        let &ai = self.app_idx.get(app)?;
        let id = BeeId::new(self.cfg.id, self.next_bee_seq);
        self.next_bee_seq += 1;
        self.queens[ai].ensure_bee(id, cells);
        Some(id)
    }

    // ------------------------------------------------------------------
    // The step loop
    // ------------------------------------------------------------------

    /// Performs one scheduling round: ingests external input and transport
    /// frames, drives the registry, fires timers, dispatches messages and
    /// runs bees — up to the configured budget. Returns the number of work
    /// units performed (0 = fully quiescent).
    pub fn step(&mut self) -> usize {
        let now = self.clock.now_ms();
        let mut work = 0usize;

        // 1. External input.
        while let Ok(env) = self.handle_rx.try_recv() {
            self.dispatch_queue.push_back(env);
            work += 1;
        }

        // 2. Transport frames.
        while let Some((from, frame)) = self.transport.try_recv() {
            work += 1;
            match frame.kind {
                FrameKind::App => match self.channels.on_frame(from, &frame.bytes, now) {
                    ChannelDelivery::Deliver(env_bytes) => {
                        match WireEnvelope::to_envelope(&env_bytes, &self.msg_registry) {
                            Ok(env) => self.dispatch_queue.push_back(env),
                            Err(_) => self.note_decode_error(Some(from)),
                        }
                    }
                    // A retransmission or fabric duplicate of a frame
                    // already delivered: absorbed (and re-acked) by dedup.
                    ChannelDelivery::Duplicate => {}
                    ChannelDelivery::Malformed => self.note_decode_error(Some(from)),
                },
                FrameKind::Raft => {
                    match beehive_wire::from_slice::<beehive_raft::RaftMessage>(&frame.bytes) {
                        Ok(msg) => {
                            if let RegBackend::Raft(node) = &mut self.registry {
                                let outs = node.step(from.as_raft(), msg);
                                self.send_raft(outs);
                            }
                        }
                        Err(_) => self.note_decode_error(Some(from)),
                    }
                }
                FrameKind::Control => match ControlMsg::decode(&frame.bytes) {
                    Ok(msg) => self.handle_control(from, msg),
                    Err(_) => self.note_decode_error(Some(from)),
                },
            }
        }

        // 3. Registry Raft ticks.
        if let RegBackend::Raft(_) = self.registry {
            if self.last_raft_tick_ms == 0 {
                self.last_raft_tick_ms = now;
            }
            while now.saturating_sub(self.last_raft_tick_ms) >= self.cfg.raft_tick_ms {
                self.last_raft_tick_ms += self.cfg.raft_tick_ms;
                if let RegBackend::Raft(node) = &mut self.registry {
                    let outs = node.tick();
                    self.send_raft(outs);
                }
                work += 1;
            }
        }

        // 3b. Registry Raft term/leader watch: frames (phase 2) and ticks
        // (phase 3) may have moved the group; record genuine changes.
        self.poll_raft_events();

        // 4. Applied registry events.
        work += self.drain_applied();

        // 4b. Committed membership (conf-change) entries, then this hive's
        // own join/drain lifecycle machine.
        work += self.drain_conf_changes();
        self.poll_membership(now);

        // 5. Platform tick.
        if self.cfg.tick_interval_ms > 0
            && now.saturating_sub(self.last_app_tick_ms) >= self.cfg.tick_interval_ms
        {
            self.last_app_tick_ms = now;
            self.tick_seq += 1;
            let tick = Tick {
                seq: self.tick_seq,
                now_ms: now,
            };
            self.dispatch_queue
                .push_back(Envelope::external(self.cfg.id, Arc::new(tick)));
            work += 1;
        }

        // 6. Pending-proposal retries.
        self.retry_pending(now);

        // 6b. Supervised redeliveries whose backoff elapsed re-enter
        // dispatch (keeping their original enqueued stamp and bumped
        // `deliveries` count).
        if !self.retry_queue.is_empty() {
            let pending = self.retry_queue.len();
            for _ in 0..pending {
                if let Some((env, due)) = self.retry_queue.pop_front() {
                    if now >= due {
                        self.dispatch_queue.push_back(env);
                        work += 1;
                    } else {
                        self.retry_queue.push_back((env, due));
                    }
                }
            }
        }

        // 6c. Quarantine cooldowns: a bee whose cooldown expired goes back
        // on the run queue so its next dequeue is the half-open probe.
        if !self.quarantine_timers.is_empty() {
            let mut still: Vec<(usize, BeeId, u64)> = Vec::new();
            for (app_idx, bee, until) in std::mem::take(&mut self.quarantine_timers) {
                if now >= until {
                    self.events.record_full(
                        EventKind::QuarantineHalfOpen,
                        0,
                        self.apps[app_idx].name(),
                        Some(bee),
                        None,
                        "cooldown expired; next message is the half-open probe",
                    );
                    if self.queens[app_idx]
                        .bee(bee)
                        .is_some_and(|b| !b.mailbox.is_empty())
                    {
                        self.run_queue.push_back((app_idx, bee));
                    }
                    work += 1;
                } else {
                    still.push((app_idx, bee, until));
                }
            }
            self.quarantine_timers = still;
            self.instr.lock().quarantined = self.quarantine_timers.len() as u64;
        }

        // 6d. Reliable-channel maintenance: re-send unacked application
        // frames whose backoff elapsed and flush coalesced standalone acks
        // for peers we owe one and sent no return traffic to.
        if self.channels.has_pending() {
            let chan_work = self.channels.poll(now);
            for (to, bytes) in chan_work.retransmits {
                self.transport.send(to, Frame::app(bytes));
                work += 1;
            }
            for (to, ack_epoch, upto) in chan_work.acks {
                self.send_control(to, &ControlMsg::ChannelAck { ack_epoch, upto });
                work += 1;
            }
        }

        // 6e. Cross-hive trace assembly: broadcast freshly submitted trace
        // queries to every peer and expire overdue ones with whatever
        // replies arrived.
        self.poll_trace_queries(now);

        // 7. Orphan retries. Retried orphans re-enter dispatch with their
        // ORIGINAL park time, so a message that keeps failing to route is
        // re-parked with that time and genuinely expires after the TTL
        // (pushing through dispatch_queue would reset the clock each cycle).
        let orphan_count = self.orphans.len();
        for _ in 0..orphan_count {
            if let Some((env, since)) = self.orphans.pop_front() {
                if now.saturating_sub(since) > self.cfg.orphan_ttl_ms {
                    self.counters.dropped_orphans += 1;
                } else {
                    self.dispatch(env, since);
                }
            }
        }

        // 8. Main dispatch/run loop. Applied registry events are drained
        // inside the loop so locally applied (or freshly committed) routing
        // decisions release their buffered messages within the same step.
        while work < self.cfg.step_budget {
            work += self.drain_applied();
            if let Some(env) = self.dispatch_queue.pop_front() {
                self.dispatch(env, now);
                work += 1;
                continue;
            }
            if !self.run_queue.is_empty() {
                if self.executor.is_some() {
                    // Parallel round: fan the whole run queue out across the
                    // worker pool and block for the results (the round always
                    // drains the queue, so a zero-work round still makes
                    // progress toward the `drain_applied() == 0` exit below).
                    work += self.run_parallel_round(now);
                } else if let Some((app_idx, bee)) = self.run_queue.pop_front() {
                    let budget = self.cfg.step_budget.saturating_sub(work).max(1);
                    work += self.run_bee(app_idx, bee, now, budget);
                }
                continue;
            }
            if self.drain_applied() == 0 {
                break;
            }
        }

        // 9. Channel metrics delta → instrumentation (locked only when
        // something actually changed this step).
        let delta = self.channels.take_delta();
        let outbox_depth = self.channels.stats().outbox_depth;
        if !delta.is_empty() || outbox_depth != self.last_outbox_depth {
            let mut instr = self.instr.lock();
            instr.retransmits += delta.retransmits;
            instr.dups_suppressed += delta.dups_suppressed;
            instr.channel_acks += delta.acks_sent;
            instr.outbox_depth = outbox_depth;
            self.last_outbox_depth = outbox_depth;
        }
        work
    }

    /// Records registry Raft term and leader changes into the event journal,
    /// tracks snapshot/compaction progress for the instrumentation gauges,
    /// and fail-stops the hive if the registry node latched a storage fault.
    /// Pure observation of already-deterministic state, so it cannot perturb
    /// simulated replay.
    fn poll_raft_events(&mut self) {
        let RegBackend::Raft(node) = &self.registry else {
            return;
        };
        if let Some(e) = node.storage_fault() {
            let detail = format!("registry storage fault: {e}");
            self.events.record(EventKind::StorageFault, detail.clone());
            panic!("hive {}: fatal storage fault: {detail}", self.cfg.id.0);
        }
        let term = node.term();
        let leader = node.leader_hint();
        if term != self.last_raft_term {
            let detail = format!("term {} -> {}", self.last_raft_term, term);
            self.last_raft_term = term;
            self.events.record(EventKind::RaftTermChange, detail);
        }
        if leader != self.last_raft_leader {
            let peer = leader.map(HiveId::from_raft);
            let detail = match leader {
                Some(l) => format!("leader is hive-{l}"),
                None => "no known leader".to_string(),
            };
            self.last_raft_leader = leader;
            self.events
                .record_full(EventKind::RaftLeaderChange, 0, "", None, peer, detail);
        }
        let snap_index = node.snapshot_index();
        let installs = node.snapshots_installed();
        let lag = node.snapshot_lag();
        if snap_index != self.last_snapshot_index
            || installs != self.last_snapshot_installs
            || lag != self.last_snapshot_lag
        {
            if installs > self.last_snapshot_installs {
                self.events.record(
                    EventKind::SnapshotInstall,
                    format!("registry snapshot installed through index {snap_index}"),
                );
            }
            let mut instr = self.instr.lock();
            instr.snapshot_index = snap_index;
            instr.snapshot_lag = lag;
            instr.snapshot_installs += installs - self.last_snapshot_installs;
            self.last_snapshot_index = snap_index;
            self.last_snapshot_installs = installs;
            self.last_snapshot_lag = lag;
        }
    }

    /// Drains trace queries submitted through the hub ([`Hive::trace_hub`]):
    /// seeds each with the local span ring, broadcasts
    /// [`ControlMsg::TraceQuery`] to every peer, and expires queries whose
    /// deadline passed so a partitioned peer can't wedge the caller.
    fn poll_trace_queries(&mut self, now: u64) {
        for (query_id, trace_id) in self.trace_hub.take_requests() {
            let peers = self.transport.peers();
            let local = self.tracer.spans_for(trace_id);
            self.trace_hub.start(query_id, peers.len(), local);
            if peers.is_empty() {
                continue;
            }
            for peer in peers {
                self.send_control(peer, &ControlMsg::TraceQuery { query_id, trace_id });
            }
            self.trace_query_deadlines
                .push((query_id, now + TRACE_QUERY_TIMEOUT_MS));
        }
        if !self.trace_query_deadlines.is_empty() {
            let hub = self.trace_hub.clone();
            self.trace_query_deadlines.retain(|&(query_id, due)| {
                if now >= due {
                    hub.expire(query_id);
                    false
                } else {
                    true
                }
            });
        }
    }

    fn drain_applied(&mut self) -> usize {
        let applied = match &mut self.registry {
            RegBackend::Local { applied, .. } => {
                // Local mode: the fence is a simple event counter.
                let taken = std::mem::take(applied);
                self.applied_seq += taken.len() as u64;
                taken
            }
            RegBackend::Raft(node) => {
                let out: Vec<_> = node.take_applied().into_iter().map(|a| a.output).collect();
                // Raft mode: the fence is the applied LOG INDEX — durable
                // across restarts (a snapshot restores last_applied) and
                // identical on every hive for the same committed prefix.
                self.applied_seq = node.last_applied();
                out
            }
        };
        let n = applied.len();
        for (cmd, event) in applied {
            self.on_registry_event(cmd, event);
        }
        n
    }

    /// Steps until quiescent or `max_rounds` is reached. Returns total work.
    pub fn step_until_quiescent(&mut self, max_rounds: usize) -> usize {
        let mut total = 0;
        for _ in 0..max_rounds {
            let w = self.step();
            total += w;
            if w == 0 {
                break;
            }
        }
        total
    }

    /// Runs the hive on the current thread until `stop` becomes true,
    /// parking when idle. The thread is woken by [`HiveHandle`] sends and by
    /// inbound transport frames (via [`Transport::set_waker`]); the park
    /// timeout is bounded by the next timer the hive owes (Raft ticks, the
    /// platform tick, pending-op retries), so timers never slip by more than
    /// their own granularity. Production entry point.
    pub fn run(&mut self, stop: &std::sync::atomic::AtomicBool) {
        let never_drain = std::sync::atomic::AtomicBool::new(false);
        self.run_elastic(stop, &never_drain);
    }

    /// Runs like [`Hive::run`], additionally honoring a drain-request flag
    /// (typically set by a SIGTERM handler or a `--drain` CLI): the first
    /// time `drain` reads true, [`Hive::begin_drain`] starts the graceful
    /// scale-in, and the loop returns once the hive has fully departed the
    /// cluster (zero owned cells, outbox acked, configuration entry
    /// removed).
    pub fn run_elastic(
        &mut self,
        stop: &std::sync::atomic::AtomicBool,
        drain: &std::sync::atomic::AtomicBool,
    ) {
        let parker = self.parker.clone();
        self.transport.set_waker(Arc::new(move || parker.unpark()));
        while !stop.load(std::sync::atomic::Ordering::Relaxed)
            && self.lifecycle.stage() != LifecycleStage::Departed
        {
            if drain.load(std::sync::atomic::Ordering::Relaxed) && !self.lifecycle.is_leaving() {
                self.begin_drain();
            }
            if self.step() == 0 {
                let timeout = self.idle_park_ms(self.clock.now_ms());
                self.parker.park(std::time::Duration::from_millis(timeout));
            }
        }
    }

    /// How long `run` may park right now: until the nearest owed timer
    /// (Raft tick, platform tick, retry scans), capped so a stop request is
    /// honored promptly even without a wakeup.
    fn idle_park_ms(&self, now: u64) -> u64 {
        const MAX_PARK_MS: u64 = 25;
        let mut park = MAX_PARK_MS;
        if matches!(self.registry, RegBackend::Raft(_)) {
            let next = self
                .cfg
                .raft_tick_ms
                .saturating_sub(now.saturating_sub(self.last_raft_tick_ms));
            park = park.min(next);
        }
        if self.cfg.tick_interval_ms > 0 {
            let next = self
                .cfg
                .tick_interval_ms
                .saturating_sub(now.saturating_sub(self.last_app_tick_ms));
            park = park.min(next);
        }
        if !self.pending_routes.is_empty()
            || !self.pending_ops.is_empty()
            || !self.orphans.is_empty()
            || !self.retry_queue.is_empty()
            || !self.quarantine_timers.is_empty()
            || !self.trace_query_deadlines.is_empty()
            || self.channels.has_pending()
            || self.pending_membership.is_some()
            || self.lifecycle.is_leaving()
        {
            park = park.min(5);
        }
        park.max(1)
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, mut env: Envelope, now: u64) {
        // First local dispatch stamps the queue-wait clock: wire arrivals
        // come in cleared (sender stamps are not comparable), relayed local
        // loops and parked orphans keep their original stamp so measured
        // wait covers the whole local residency.
        if env.trace.enqueued_ms == 0 {
            env.trace.enqueued_ms = now;
        }
        match env.dst.clone() {
            Dst::Broadcast => {
                for app_idx in 0..self.apps.len() {
                    self.offer_to_app(app_idx, &env);
                }
            }
            Dst::App(name) => {
                if let Some(&app_idx) = self.app_idx.get(&name) {
                    self.offer_to_app(app_idx, &env);
                }
            }
            Dst::Bee {
                app,
                bee,
                handler,
                fence,
            } => {
                self.deliver_direct(&app, bee, handler, fence, env, now);
            }
        }
    }

    fn offer_to_app(&mut self, app_idx: usize, env: &Envelope) {
        let type_name = env.msg.type_name();
        let handler_indices: Vec<u16> = self.apps[app_idx].handlers_for(type_name).to_vec();
        for hidx in handler_indices {
            let mapped = self.apps[app_idx].map(hidx, env.msg.as_ref());
            match mapped {
                Mapped::Skip => {}
                Mapped::LocalSingleton => {
                    let me = self.cfg.id;
                    let seq = &mut self.next_bee_seq;
                    let bee = self.queens[app_idx].ensure_singleton(|| {
                        let id = BeeId::new(me, *seq);
                        *seq += 1;
                        id
                    });
                    self.instr.lock().pinned.insert(bee.0);
                    self.deliver_checked(app_idx, bee, hidx, env.clone());
                }
                Mapped::LocalBroadcast => {
                    let targets: Vec<BeeId> = self.queens[app_idx].active_bees().collect();
                    for bee in targets {
                        self.deliver_checked(app_idx, bee, hidx, env.clone());
                    }
                }
                Mapped::Cells(cells) => {
                    self.route_cells(app_idx, Some(hidx), cells, Some(env.clone()));
                }
            }
        }
    }

    /// Routes a message (or a pre-claim with no message) by cells.
    fn route_cells(
        &mut self,
        app_idx: usize,
        handler: Option<u16>,
        mut cells: Vec<Cell>,
        env: Option<Envelope>,
    ) {
        cells.sort();
        cells.dedup();
        let app_name = self.apps[app_idx].name().clone();

        // A proposal for these exact cells is already in flight: queue behind
        // it to preserve delivery order (the mirror may already know the
        // owner, but earlier messages are still parked on the pending route).
        let key = (app_name.clone(), cells.clone());
        if let Some(&seq) = self.inflight.get(&key) {
            if let (Some(h), Some(env)) = (handler, env) {
                if let Some(p) = self.pending_routes.get_mut(&seq) {
                    p.waiting.push((h, env));
                }
            }
            return;
        }

        // A pending route whose cells merely *intersect* ours also carries
        // messages that must run first: queue behind the earliest such
        // proposal, and re-route when it resolves. (Without this, a message
        // mapping a subset of an in-flight set could take the fast path and
        // overtake the message that created the colony.)
        let intersecting = self
            .pending_routes
            .iter()
            .filter(|(_, p)| {
                p.app_name == app_name && p.cells_key.iter().any(|c| cells.contains(c))
            })
            .map(|(&seq, _)| seq)
            .min();
        if let Some(seq) = intersecting {
            if let (Some(h), Some(env)) = (handler, env) {
                if let Some(p) = self.pending_routes.get_mut(&seq) {
                    p.waiting.push((h, env));
                }
            }
            return;
        }

        // Fast path: a single bee already owns every cell.
        if let Some((bee, hive)) = self.registry_view().lookup_exact(&app_name, &cells) {
            if let (Some(h), Some(env)) = (handler, env) {
                self.deliver_or_relay(app_idx, bee, hive, h, env);
            }
            return;
        }
        let new_bee = BeeId::new(self.cfg.id, self.next_bee_seq);
        self.next_bee_seq += 1;
        let seq = self.next_cmd_seq;
        self.next_cmd_seq += 1;
        let cmd = RegistryCommand {
            origin: self.cfg.id,
            seq,
            op: RegistryOp::LookupOrCreate {
                app: app_name.clone(),
                cells: cells.clone(),
                new_bee,
            },
        };
        let waiting = match (handler, env) {
            (Some(h), Some(env)) => vec![(h, env)],
            _ => Vec::new(),
        };
        self.pending_routes.insert(
            seq,
            PendingRoute {
                app_name: app_name.clone(),
                cells_key: cells.clone(),
                cmd: cmd.clone(),
                waiting,
                submitted_ms: self.clock.now_ms(),
            },
        );
        self.inflight.insert(key, seq);
        self.submit_cmd(cmd);
    }

    fn deliver_direct(
        &mut self,
        app: &str,
        bee: BeeId,
        handler: Option<u16>,
        fence: u64,
        env: Envelope,
        now: u64,
    ) {
        let Some(&app_idx) = self.app_idx.get(app) else {
            return;
        };
        // Registry fence: don't act on a routing decision we haven't applied
        // yet — park and retry (our mirror will catch up within a heartbeat).
        if fence > self.applied_seq {
            self.orphans.push_back((env, now));
            return;
        }
        // Resolve the handler index.
        let hidx = match handler {
            Some(h) => h,
            None => {
                let hs = self.apps[app_idx].handlers_for(env.msg.type_name());
                match hs {
                    [one] => *one,
                    [] => return,
                    _ => {
                        self.counters.dropped_ambiguous += 1;
                        return;
                    }
                }
            }
        };
        // Local?
        if self.queens[app_idx].bee(bee).is_some() {
            self.deliver_checked(app_idx, bee, hidx, env);
            return;
        }
        // Merged away? Re-aim at the surviving colony.
        if let Some(winner) = self.queens[app_idx].merge_redirect(bee) {
            let mut env = env;
            env.dst = Dst::Bee {
                app: app.to_string(),
                bee: winner,
                handler: Some(hidx),
                fence,
            };
            self.dispatch_queue.push_back(env);
            return;
        }
        // Tombstone (moved away)?
        if let Some(to) = self.queens[app_idx].tombstone(bee) {
            let mut env = env;
            env.dst = Dst::Bee {
                app: app.to_string(),
                bee,
                handler: Some(hidx),
                fence: self.applied_seq,
            };
            self.relay(to, &env);
            return;
        }
        // Registry mirror?
        match self.registry_view().hive_of(bee) {
            Some(h) if h == self.cfg.id => {
                // The registry says it's ours but the queen doesn't have it
                // yet (e.g. created by a remote LookupOrCreate, or a staged
                // migration). Materialize it.
                let colony: Vec<Cell> = self
                    .registry_view()
                    .bee(bee)
                    .map(|r| r.colony.iter().cloned().collect())
                    .unwrap_or_default();
                if self.staged.contains_key(&(app.to_string(), bee)) {
                    let staged = self.staged.remove(&(app.to_string(), bee)).unwrap();
                    self.queens[app_idx].install_migrated(
                        bee,
                        staged.state,
                        staged.colony,
                        staged.repl_seq,
                    );
                    self.counters.migrations_in += 1;
                    self.events.record_full(
                        EventKind::MigrationCommit,
                        0,
                        app,
                        Some(bee),
                        None,
                        "staged state activated on direct delivery",
                    );
                } else {
                    self.queens[app_idx].ensure_bee(bee, colony);
                }
                self.deliver_checked(app_idx, bee, hidx, env);
            }
            Some(h) => {
                let mut env = env;
                env.dst = Dst::Bee {
                    app: app.to_string(),
                    bee,
                    handler: Some(hidx),
                    fence: fence.max(self.applied_seq),
                };
                self.relay(h, &env);
            }
            None => {
                // Unknown (our mirror may lag the leader). Park and retry.
                let mut env = env;
                env.dst = Dst::Bee {
                    app: app.to_string(),
                    bee,
                    handler: Some(hidx),
                    fence,
                };
                self.orphans.push_back((env, now));
            }
        }
    }

    fn deliver_or_relay(
        &mut self,
        app_idx: usize,
        bee: BeeId,
        hive: HiveId,
        hidx: u16,
        env: Envelope,
    ) {
        if hive == self.cfg.id {
            // Make sure the bee exists locally (it may have been created by
            // our own LookupOrCreate).
            let colony: Vec<Cell> = self
                .registry_view()
                .bee(bee)
                .map(|r| r.colony.iter().cloned().collect())
                .unwrap_or_default();
            self.queens[app_idx].ensure_bee(bee, colony);
            self.deliver_checked(app_idx, bee, hidx, env);
        } else {
            let mut env = env;
            env.dst = Dst::Bee {
                app: self.apps[app_idx].name().clone(),
                bee,
                handler: Some(hidx),
                fence: self.applied_seq,
            };
            self.relay(hive, &env);
        }
    }

    fn relay(&mut self, to: HiveId, env: &Envelope) {
        if to == self.cfg.id {
            self.dispatch_queue.push_back(env.clone());
            return;
        }
        match WireEnvelope::from_envelope(env) {
            Ok(bytes) => {
                self.counters.relays_out += 1;
                // Sequence + journal + buffer for resend; the channel frame
                // carries a piggybacked cumulative ack toward `to`.
                let now = self.clock.now_ms();
                let framed = self.channels.wrap(to, bytes, now);
                self.transport.send(to, Frame::app(framed));
            }
            Err(_) => self.note_decode_error(None),
        }
    }

    /// Delivers new traffic through the queen's admission policy (quarantine
    /// fast-path, bounded mailboxes) and schedules the bee if mail queued.
    fn deliver_checked(&mut self, app_idx: usize, bee: BeeId, hidx: u16, env: Envelope) {
        let now = self.clock.now_ms();
        match self.queens[app_idx].offer(
            bee,
            hidx,
            env,
            now,
            self.cfg.mailbox_capacity,
            self.cfg.overflow_policy,
        ) {
            Delivery::Delivered => self.run_queue.push_back((app_idx, bee)),
            Delivery::NoBee(_) => self.counters.lost_no_bee += 1,
            Delivery::Quarantined(env) => self.dead_letter(
                app_idx,
                bee,
                "",
                env,
                FailureKind::Quarantined,
                "bee quarantined".to_string(),
                now,
            ),
            Delivery::Shed(shed) => {
                self.counters.shed_messages += 1;
                self.run_queue.push_back((app_idx, bee));
                self.dead_letter(
                    app_idx,
                    bee,
                    "",
                    shed,
                    FailureKind::MailboxOverflow,
                    "mailbox over capacity: oldest message shed".to_string(),
                    now,
                );
            }
            Delivery::Rejected(env) => self.dead_letter(
                app_idx,
                bee,
                "",
                env,
                FailureKind::MailboxOverflow,
                "mailbox over capacity: message rejected".to_string(),
                now,
            ),
        }
    }

    /// Records a message in the dead-letter queue.
    #[allow(clippy::too_many_arguments)]
    fn dead_letter(
        &mut self,
        app_idx: usize,
        bee: BeeId,
        handler: &str,
        env: Envelope,
        kind: FailureKind,
        detail: String,
        now: u64,
    ) {
        self.counters.dead_letters += 1;
        self.instr.lock().dead_letters += 1;
        self.events.record_full(
            EventKind::DeadLettered,
            env.trace.trace_id,
            self.apps[app_idx].name(),
            Some(bee),
            None,
            format!("{}: {detail}", kind.label()),
        );
        let attempts = if kind.is_handler_failure() {
            env.deliveries + 1
        } else {
            env.deliveries
        };
        self.dead_letters.record(DeadLetter {
            app: self.apps[app_idx].name().clone(),
            bee,
            handler: handler.to_string(),
            msg_type: env.msg.type_name().to_string(),
            kind,
            detail,
            attempts,
            trace_id: env.trace.trace_id,
            recorded_ms: now,
            envelope: env,
        });
    }

    /// Supervised redelivery: a message whose handler failed either re-enters
    /// dispatch after an exponential-backoff delay, or — once its
    /// `max_redeliveries` budget is spent — lands in the dead-letter queue.
    #[allow(clippy::too_many_arguments)]
    fn handle_failed_delivery(
        &mut self,
        app_idx: usize,
        bee: BeeId,
        hidx: u16,
        handler: &str,
        mut env: Envelope,
        kind: FailureKind,
        detail: String,
        now: u64,
    ) {
        if kind == FailureKind::Panic {
            self.counters.handler_panics += 1;
        }
        if env.deliveries >= self.cfg.max_redeliveries {
            self.dead_letter(app_idx, bee, handler, env, kind, detail, now);
            return;
        }
        env.deliveries += 1;
        self.counters.redeliveries += 1;
        self.instr.lock().redeliveries += 1;
        // Exponential backoff (capped at 64× base) with deterministic jitter
        // derived from the bee id, so colliding retries spread out without a
        // random source and the schedule replays identically across runs.
        let due = now
            + crate::supervision::backoff_delay_ms(
                self.cfg.redelivery_backoff_ms,
                env.deliveries,
                bee,
            );
        // Re-aim at the exact bee + handler that failed; if the bee migrates
        // or merges before the retry fires, direct dispatch re-routes it.
        env.dst = Dst::Bee {
            app: self.apps[app_idx].name().clone(),
            bee,
            handler: Some(hidx),
            fence: self.applied_seq,
        };
        self.retry_queue.push_back((env, due));
    }

    /// Applies a run outcome to the bee's quarantine circuit breaker and
    /// starts the cooldown timer when it trips.
    fn apply_outcome(
        &mut self,
        app_idx: usize,
        bee: BeeId,
        had_success: bool,
        trailing_failures: u32,
        now: u64,
    ) {
        let tripped = self.queens[app_idx].record_outcome(
            bee,
            had_success,
            trailing_failures,
            self.cfg.quarantine_threshold,
            self.cfg.quarantine_cooldown_ms,
            now,
        );
        if let Some(until) = tripped {
            self.counters.quarantines += 1;
            self.events.record_full(
                EventKind::QuarantineOpen,
                0,
                self.apps[app_idx].name(),
                Some(bee),
                None,
                format!("breaker tripped; cooldown until {until}ms"),
            );
            self.quarantine_timers.push((app_idx, bee, until));
            self.instr.lock().quarantined = self.quarantine_timers.len() as u64;
        }
    }

    /// Counts an undecodable frame/payload, logging the offending peer at
    /// most once per window so a flapping peer can't flood the log.
    fn note_decode_error(&mut self, peer: Option<HiveId>) {
        const LOG_WINDOW_MS: u64 = 5_000;
        self.counters.decode_errors += 1;
        self.instr.lock().decode_errors += 1;
        let Some(peer) = peer else {
            return;
        };
        let now = self.clock.now_ms();
        let log = match self.decode_error_logged.get(&peer) {
            Some(&last) => now.saturating_sub(last) >= LOG_WINDOW_MS,
            None => true,
        };
        if log {
            self.decode_error_logged.insert(peer, now);
            eprintln!(
                "beehive: hive {:?} received undecodable payload from peer {:?}",
                self.cfg.id, peer
            );
        }
    }

    fn send_control(&mut self, to: HiveId, msg: &ControlMsg) {
        if to == self.cfg.id {
            // Loop back through the control handler directly.
            let msg = msg.clone();
            self.handle_control(self.cfg.id, msg);
            return;
        }
        match msg.encode() {
            Ok(bytes) => self.transport.send(to, Frame::control(bytes)),
            Err(_) => self.note_decode_error(None),
        }
    }

    fn send_raft(&mut self, outs: Vec<beehive_raft::Outbound>) {
        for o in outs {
            let to = HiveId::from_raft(o.to);
            match beehive_wire::to_vec(&o.msg) {
                Ok(bytes) => self.transport.send(to, Frame::raft(bytes)),
                Err(_) => self.note_decode_error(None),
            }
        }
    }

    // ------------------------------------------------------------------
    // Registry plumbing
    // ------------------------------------------------------------------

    fn submit_cmd(&mut self, cmd: RegistryCommand) {
        match &mut self.registry {
            RegBackend::Local { state, applied } => {
                let ev = state.apply_command(&cmd);
                applied.push((cmd, ev));
            }
            RegBackend::Raft(node) => {
                if node.is_leader() {
                    if let Ok((_token, outs)) = node.propose_now(cmd.encode()) {
                        self.send_raft(outs);
                    }
                } else if let Some(leader) = node.leader_hint() {
                    let to = HiveId::from_raft(leader);
                    if to != self.cfg.id {
                        self.counters.forwarded_commands += 1;
                        self.send_control(to, &ControlMsg::RegistryForward(cmd));
                    }
                }
                // No leader known: the pending-retry timer will resubmit.
            }
        }
    }

    /// Submits a non-routing registry op and tracks it for retry until its
    /// applied event comes back.
    fn submit_tracked(&mut self, op: RegistryOp) {
        let seq = self.next_cmd_seq;
        self.next_cmd_seq += 1;
        let cmd = RegistryCommand {
            origin: self.cfg.id,
            seq,
            op,
        };
        self.pending_ops
            .insert(seq, (cmd.clone(), self.clock.now_ms()));
        self.submit_cmd(cmd);
    }

    fn retry_pending(&mut self, now: u64) {
        let mut retry: Vec<RegistryCommand> = self
            .pending_routes
            .values_mut()
            .filter(|p| now.saturating_sub(p.submitted_ms) >= self.cfg.pending_retry_ms)
            .map(|p| {
                p.submitted_ms = now;
                p.cmd.clone()
            })
            .collect();
        retry.extend(
            self.pending_ops
                .values_mut()
                .filter(|(_, submitted)| {
                    now.saturating_sub(*submitted) >= self.cfg.pending_retry_ms
                })
                .map(|(cmd, submitted)| {
                    *submitted = now;
                    cmd.clone()
                }),
        );
        // Resubmit in original proposal order: commit order determines the
        // order buffered messages are released, and that must follow arrival
        // order (e.g. proposals parked while no registry leader existed).
        retry.sort_by_key(|c| c.seq);
        for cmd in retry {
            self.submit_cmd(cmd);
        }
    }

    // ------------------------------------------------------------------
    // Elastic membership (live join / drain)
    // ------------------------------------------------------------------

    /// Applies committed registry conf changes to the runtime layers:
    /// connects/disconnects transport peers, updates the hive roster,
    /// retires the reliable channel of a removed peer (dead-lettering its
    /// undelivered envelopes) and advances this hive's own join/drain
    /// lifecycle. Returns the number of changes applied.
    fn drain_conf_changes(&mut self) -> usize {
        let changes = match &mut self.registry {
            RegBackend::Raft(node) => node.take_conf_changes(),
            RegBackend::Local { .. } => Vec::new(),
        };
        let n = changes.len();
        for cc in changes {
            self.apply_membership_change(cc);
        }
        n
    }

    fn apply_membership_change(&mut self, cc: ConfChange) {
        let peer = HiveId::from_raft(cc.node);
        let me = self.cfg.id;
        let label = match cc.kind {
            ConfChangeKind::AddLearner => "added as learner",
            ConfChangeKind::PromoteVoter => "promoted to voter",
            ConfChangeKind::DemoteLearner => "demoted to learner",
            ConfChangeKind::RemoveNode => "removed from the configuration",
        };
        self.events.record_full(
            EventKind::MembershipChange,
            0,
            "",
            None,
            Some(peer),
            format!("hive-{} {label}", peer.0),
        );
        match cc.kind {
            ConfChangeKind::AddLearner => {
                if peer == me {
                    // Our own join request committed: stop re-sending it.
                    // The promotion request fires once the learner has
                    // applied the whole committed log (`poll_membership`).
                    // Keyed on the pending op, not the lifecycle stage, so a
                    // drain ordered mid-join does not leave a stale
                    // JoinRequest blocking the drain staircase.
                    let joining = matches!(
                        self.pending_membership,
                        Some((MembershipOp::JoinRequest, _, _))
                    );
                    if joining {
                        self.pending_membership = None;
                    }
                } else {
                    self.transport.connect_peer(peer, &cc.addr);
                    if !self.cfg.all_hives.contains(&peer) {
                        self.cfg.all_hives.push(peer);
                        self.cfg.all_hives.sort();
                    }
                }
            }
            ConfChangeKind::PromoteVoter => {
                if !self.cfg.registry_voters.contains(&peer) {
                    self.cfg.registry_voters.push(peer);
                    self.cfg.registry_voters.sort();
                }
                if peer == me {
                    self.pending_membership = None;
                    if self.lifecycle.stage() == LifecycleStage::Joining {
                        self.lifecycle.set(LifecycleStage::Active);
                    }
                }
            }
            ConfChangeKind::DemoteLearner => {
                self.cfg.registry_voters.retain(|&h| h != peer);
                if peer == me {
                    // Next drain step (RemoveRequest) fires from
                    // `poll_drain`.
                    self.pending_membership = None;
                }
            }
            ConfChangeKind::RemoveNode => {
                self.cfg.registry_voters.retain(|&h| h != peer);
                if peer == me {
                    self.pending_membership = None;
                    self.lifecycle.set(LifecycleStage::Departed);
                } else {
                    self.retire_departed_peer(peer);
                }
            }
        }
    }

    /// Removes a departed peer from every runtime layer. The leader's final
    /// `Departed` ack leaves first — control frames bypass the reliable
    /// channel, and the transport connection is still up at this point.
    fn retire_departed_peer(&mut self, peer: HiveId) {
        if self.is_registry_leader() {
            self.send_control(
                peer,
                &ControlMsg::MembershipChange {
                    node: peer,
                    addr: String::new(),
                    op: MembershipOp::Departed,
                },
            );
        }
        // Retire the reliable channel: whatever it never managed to deliver
        // is dead-lettered (satisfying conservation — the audit subtracts
        // expired envelopes from in-transit).
        let undelivered = self.channels.retire_peer(peer);
        for env_bytes in undelivered {
            match WireEnvelope::to_envelope(&env_bytes, &self.msg_registry) {
                Ok(env) => self.dead_letter_departed(env, peer),
                Err(_) => self.note_decode_error(None),
            }
        }
        // Drop the connection; frames still parked in the transport's
        // deferred queue are duplicates of unacked channel entries (already
        // dead-lettered above), so they are only counted.
        let held = self.transport.disconnect_peer(peer);
        if !held.is_empty() {
            self.events.record_full(
                EventKind::PeerDeparted,
                0,
                "",
                None,
                Some(peer),
                format!(
                    "{} deferred frame(s) dropped with the connection",
                    held.len()
                ),
            );
        }
        self.cfg.all_hives.retain(|&h| h != peer);
        self.draining_peers.remove(&peer);
        self.decode_error_logged.remove(&peer);
    }

    /// Dead-letters a message that was owed to a peer that left the cluster
    /// (instead of retrying it forever against a gone endpoint).
    fn dead_letter_departed(&mut self, env: Envelope, peer: HiveId) {
        let (app, bee) = match &env.dst {
            Dst::Bee { app, bee, .. } => (app.clone(), *bee),
            Dst::App(name) => (name.clone(), BeeId(0)),
            Dst::Broadcast => (String::new(), BeeId(0)),
        };
        self.events.record_full(
            EventKind::PeerDeparted,
            env.trace.trace_id,
            &app,
            None,
            Some(peer),
            format!("undeliverable: hive-{} departed the cluster", peer.0),
        );
        self.counters.dead_letters += 1;
        self.instr.lock().dead_letters += 1;
        self.dead_letters.record(DeadLetter {
            app,
            bee,
            handler: String::new(),
            msg_type: env.msg.type_name().to_string(),
            kind: FailureKind::PeerDeparted,
            detail: format!("hive-{} departed the cluster", peer.0),
            attempts: env.deliveries,
            trace_id: env.trace.trace_id,
            recorded_ms: self.clock.now_ms(),
            envelope: env,
        });
    }

    /// Handles an inbound [`ControlMsg::MembershipChange`].
    fn on_membership_msg(&mut self, from: HiveId, node: HiveId, addr: String, op: MembershipOp) {
        match op {
            MembershipOp::Draining => {
                if node != self.cfg.id && self.draining_peers.insert(node) {
                    self.events.record_full(
                        EventKind::MembershipChange,
                        0,
                        "",
                        None,
                        Some(node),
                        format!("hive-{} is draining: no longer a placement target", node.0),
                    );
                }
            }
            MembershipOp::Departed => {
                if node == self.cfg.id && self.lifecycle.stage() != LifecycleStage::Departed {
                    self.pending_membership = None;
                    self.lifecycle.set(LifecycleStage::Departed);
                    self.events.record(
                        EventKind::MembershipChange,
                        "departure acknowledged by the leader".to_string(),
                    );
                }
            }
            MembershipOp::JoinRequest
            | MembershipOp::PromoteRequest
            | MembershipOp::DemoteRequest
            | MembershipOp::RemoveRequest => {
                self.propose_membership(from, node, addr, op);
            }
        }
    }

    /// Leader side of the membership request protocol: turns a request into
    /// a single-node conf change, forwards it toward the leader when this
    /// hive is not it, and answers stale retries idempotently. A dropped
    /// request (no leader known, change already in flight) is recovered by
    /// the requester's retry timer.
    fn propose_membership(&mut self, from: HiveId, node: HiveId, addr: String, op: MembershipOp) {
        enum Action {
            Forward(HiveId),
            AckDeparted,
            Propose(ConfChangeKind),
            Drop,
        }
        let action = match &self.registry {
            // Standalone registries have no membership to change.
            RegBackend::Local { .. } => Action::Drop,
            RegBackend::Raft(raft) => {
                if raft.is_leader() {
                    let id = node.as_raft();
                    let is_voter = raft.voters().contains(&id);
                    let is_learner = raft.learners().contains(&id);
                    match op {
                        MembershipOp::JoinRequest if !is_voter && !is_learner => {
                            Action::Propose(ConfChangeKind::AddLearner)
                        }
                        MembershipOp::PromoteRequest if is_learner => {
                            Action::Propose(ConfChangeKind::PromoteVoter)
                        }
                        MembershipOp::DemoteRequest if is_voter => {
                            Action::Propose(ConfChangeKind::DemoteLearner)
                        }
                        MembershipOp::RemoveRequest if is_voter || is_learner => {
                            Action::Propose(ConfChangeKind::RemoveNode)
                        }
                        // A retry that outran its own commit: the node is
                        // already gone from the configuration — re-ack so a
                        // lost ack cannot strand the drained hive.
                        MembershipOp::RemoveRequest => Action::AckDeparted,
                        // Join/promote/demote retries that already applied
                        // need no answer: the requester observes the
                        // committed conf change through its own log.
                        _ => Action::Drop,
                    }
                } else {
                    match raft.leader_hint() {
                        Some(l) => {
                            let to = HiveId::from_raft(l);
                            if to != self.cfg.id && to != from {
                                Action::Forward(to)
                            } else {
                                Action::Drop
                            }
                        }
                        None => Action::Drop,
                    }
                }
            }
        };
        match action {
            Action::Forward(to) => {
                self.counters.forwarded_commands += 1;
                self.send_control(to, &ControlMsg::MembershipChange { node, addr, op });
            }
            Action::AckDeparted => {
                self.send_control(
                    node,
                    &ControlMsg::MembershipChange {
                        node,
                        addr: String::new(),
                        op: MembershipOp::Departed,
                    },
                );
            }
            Action::Propose(kind) => {
                let cc = ConfChange {
                    node: node.as_raft(),
                    addr,
                    kind,
                };
                let outs = match &mut self.registry {
                    RegBackend::Raft(raft) => match raft.propose_conf_change(&cc) {
                        Ok((_token, outs)) => outs,
                        // Another change in flight (or a just-lost
                        // leadership): drop — the requester retries.
                        Err(_) => Vec::new(),
                    },
                    RegBackend::Local { .. } => Vec::new(),
                };
                self.send_raft(outs);
            }
            Action::Drop => {}
        }
    }

    /// Drives this hive's own membership lifecycle once per step: fires the
    /// promotion request when a joiner caught up, walks the drain staircase
    /// (evacuate → flush outbox → hand off leadership → demote → remove),
    /// and re-sends the pending request toward the leader on the retry
    /// timer.
    fn poll_membership(&mut self, now: u64) {
        match self.lifecycle.stage() {
            LifecycleStage::Active | LifecycleStage::Departed => {}
            LifecycleStage::Joining => {
                if self.pending_membership.is_none() {
                    // A learner that applied the whole committed prefix is
                    // caught up (commit_index > 0 distinguishes a
                    // replicating learner from one the cluster does not
                    // know about yet): ask for promotion.
                    let caught_up = match &self.registry {
                        RegBackend::Raft(node) => {
                            node.commit_index() > 0 && node.last_applied() >= node.commit_index()
                        }
                        RegBackend::Local { .. } => false,
                    };
                    if caught_up {
                        self.pending_membership = Some((MembershipOp::PromoteRequest, 0, 0));
                        self.events.record(
                            EventKind::MembershipChange,
                            "caught up with the registry log: requesting promotion".to_string(),
                        );
                    }
                }
            }
            LifecycleStage::Draining => self.poll_drain(now),
        }
        self.flush_membership_request(now);
    }

    /// One tick of the drain staircase.
    fn poll_drain(&mut self, now: u64) {
        // Step 1: evacuate every registry-owned bee onto a survivor.
        let owned = self.owned_bees();
        if !owned.is_empty() {
            self.evacuate(owned);
            return;
        }
        // Step 2: the channel outbox must be fully acked — every envelope
        // this hive relayed is confirmed on a survivor.
        if self.channels.stats().outbox_depth > 0 {
            return;
        }
        // A standalone hive has no configuration entry to leave.
        let RegBackend::Raft(_) = self.registry else {
            self.lifecycle.set(LifecycleStage::Departed);
            self.events.record(
                EventKind::MembershipChange,
                "standalone drain complete".to_string(),
            );
            return;
        };
        let me = self.cfg.id.as_raft();
        let (is_leader, is_voter, transfer_to) = match &self.registry {
            RegBackend::Raft(node) => {
                let voters = node.voters();
                let transfer_to = voters
                    .iter()
                    .copied()
                    .filter(|&v| v != me)
                    .find(|&v| !self.draining_peers.contains(&HiveId::from_raft(v)));
                (node.is_leader(), voters.contains(&me), transfer_to)
            }
            RegBackend::Local { .. } => unreachable!("guarded above"),
        };
        // Step 3: a draining leader hands leadership to a surviving voter
        // before demoting itself (a leader cannot safely leave its own
        // quorum).
        if is_leader {
            if let Some(to) = transfer_to {
                if now.saturating_sub(self.last_transfer_ms) >= self.cfg.pending_retry_ms
                    || self.last_transfer_ms == 0
                {
                    self.last_transfer_ms = now;
                    let outs = match &mut self.registry {
                        RegBackend::Raft(node) => node.transfer_leadership(to),
                        RegBackend::Local { .. } => Vec::new(),
                    };
                    self.send_raft(outs);
                    self.events.record_full(
                        EventKind::MembershipChange,
                        0,
                        "",
                        None,
                        Some(HiveId::from_raft(to)),
                        format!("handing registry leadership to hive-{} before demotion", to),
                    );
                }
            }
            return;
        }
        if self.pending_membership.is_some() {
            return; // a demote/remove request is already in flight
        }
        // Step 4: voter → learner; step 5: learner → removed.
        let op = if is_voter {
            MembershipOp::DemoteRequest
        } else {
            MembershipOp::RemoveRequest
        };
        self.pending_membership = Some((op, 0, 0));
        let detail = if is_voter {
            "drained: requesting demotion to learner"
        } else {
            "drained: requesting removal from the configuration"
        };
        self.events
            .record(EventKind::MembershipChange, detail.to_string());
    }

    /// Registry-owned bees currently placed on this hive, in deterministic
    /// order.
    fn owned_bees(&self) -> Vec<(AppName, BeeId)> {
        let mut owned: Vec<(AppName, BeeId)> = self
            .registry_view()
            .bees()
            .filter(|(_, rec)| rec.hive == self.cfg.id)
            .map(|(b, rec)| (rec.app.clone(), *b))
            .collect();
        owned.sort();
        owned
    }

    /// Mass-migrates this draining hive's bees onto survivors through the
    /// placement optimizer's drain mode and the live-migration path.
    /// Platform-app bees (which the optimizer never touches) and bees the
    /// heuristic could not place fall back to the least-occupied survivor.
    fn evacuate(&mut self, owned: Vec<(AppName, BeeId)>) {
        let mut occupancy: BTreeMap<u32, usize> = BTreeMap::new();
        for h in &self.cfg.all_hives {
            occupancy.entry(h.0).or_insert(0);
        }
        for (_, rec) in self.registry_view().bees() {
            *occupancy.entry(rec.hive.0).or_insert(0) += 1;
        }
        let loads: Vec<BeeLoad> = owned
            .iter()
            .filter_map(|(app, bee)| {
                let &ai = self.app_idx.get(app)?;
                let b = self.queens[ai].bee(*bee)?;
                if b.status != BeeStatus::Active {
                    return None; // already mid-migration
                }
                Some(BeeLoad {
                    app: app.clone(),
                    bee: *bee,
                    hive: self.cfg.id,
                    pinned: false,
                    cells: b.colony.len() as u64,
                    in_by_hive: BTreeMap::new(),
                    p99_runtime_us: 0,
                })
            })
            .collect();
        if loads.is_empty() {
            return; // all in flight; their MoveBee commits clear `owned`
        }
        let mut draining: Vec<u32> = self.draining_peers.iter().map(|h| h.0).collect();
        draining.push(self.cfg.id.0);
        draining.sort_unstable();
        let cfg = OptimizerConfig {
            min_messages: 0,
            draining,
            ..OptimizerConfig::default()
        };
        let plans = plan_migrations(&loads, &occupancy, &cfg);
        let mut placed: HashSet<BeeId> = HashSet::new();
        for p in &plans {
            placed.insert(p.bee);
            *occupancy.entry(p.to.0).or_insert(0) += 1;
        }
        let survivors: Vec<HiveId> = self
            .cfg
            .all_hives
            .iter()
            .copied()
            .filter(|&h| h != self.cfg.id && !self.draining_peers.contains(&h))
            .collect();
        let me = self.cfg.id;
        for p in plans {
            self.request_migration(&p.app, p.bee, me, p.to);
        }
        if survivors.is_empty() {
            return; // nothing left to evacuate onto; drain stalls until a peer appears
        }
        for (app, bee) in loads
            .into_iter()
            .filter(|l| !placed.contains(&l.bee))
            .map(|l| (l.app, l.bee))
        {
            let to = survivors
                .iter()
                .copied()
                .min_by_key(|h| (occupancy.get(&h.0).copied().unwrap_or(0), h.0))
                .expect("survivors is non-empty");
            *occupancy.entry(to.0).or_insert(0) += 1;
            self.request_migration(&app, bee, me, to);
        }
    }

    /// (Re-)sends the pending membership request toward the registry
    /// leader. A joiner with no leader hint asks every configured peer —
    /// whoever leads proposes the change, the rest forward or drop it.
    fn flush_membership_request(&mut self, now: u64) {
        let Some((op, last, attempts)) = self.pending_membership else {
            return;
        };
        if last != 0 && now.saturating_sub(last) < self.cfg.pending_retry_ms {
            return;
        }
        if op == MembershipOp::RemoveRequest && attempts >= MAX_REMOVE_ATTEMPTS {
            // The cluster may already have removed (and forgotten) us and
            // the final ack was lost: assume the removal committed and
            // depart rather than retry forever.
            self.pending_membership = None;
            self.lifecycle.set(LifecycleStage::Departed);
            self.events.record(
                EventKind::MembershipChange,
                "departure assumed after unanswered remove requests".to_string(),
            );
            return;
        }
        self.pending_membership = Some((op, now.max(1), attempts + 1));
        let msg = ControlMsg::MembershipChange {
            node: self.cfg.id,
            addr: self.advertise_addr.clone(),
            op,
        };
        let leader = match &self.registry {
            RegBackend::Raft(node) => node.leader_hint(),
            RegBackend::Local { .. } => None,
        };
        match leader {
            Some(l) if HiveId::from_raft(l) != self.cfg.id => {
                self.send_control(HiveId::from_raft(l), &msg);
            }
            _ => {
                let peers: Vec<HiveId> = self
                    .cfg
                    .all_hives
                    .iter()
                    .copied()
                    .filter(|&h| h != self.cfg.id)
                    .collect();
                for p in peers {
                    self.send_control(p, &msg);
                }
            }
        }
    }

    fn on_registry_event(&mut self, cmd: RegistryCommand, event: RegistryEvent) {
        if cmd.origin == self.cfg.id {
            self.pending_ops.remove(&cmd.seq);
        }
        match event {
            RegistryEvent::Routed {
                app,
                bee,
                hive,
                created: _,
                merged,
            } => {
                let app_idx = self.app_idx.get(&app).copied();

                // Handle colony merges this hive participates in. Every
                // hive records the redirect so late mail addressed to a
                // merged-away bee still finds the surviving colony.
                if let Some(ai) = app_idx {
                    for (loser, _) in &merged {
                        self.queens[ai].record_merge(*loser, bee);
                    }
                    for (loser, loser_hive) in &merged {
                        if *loser_hive == self.cfg.id {
                            if let Some((state, mail)) = self.queens[ai].remove_loser(*loser) {
                                self.counters.merges += 1;
                                if hive == self.cfg.id {
                                    self.queens[ai].ensure_bee(bee, []);
                                    self.queens[ai].absorb_merge(bee, *loser, state);
                                } else {
                                    let snapshot = state.snapshot().expect("loser state snapshots");
                                    self.send_control(
                                        hive,
                                        &ControlMsg::MergeState {
                                            app: app.clone(),
                                            winner: bee,
                                            loser: *loser,
                                            state: snapshot,
                                        },
                                    );
                                }
                                // Forward the loser's buffered mail to the winner.
                                for (h, mut env) in mail {
                                    env.dst = Dst::Bee {
                                        app: app.clone(),
                                        bee,
                                        handler: Some(h),
                                        fence: self.applied_seq,
                                    };
                                    self.dispatch_queue.push_back(env);
                                }
                            }
                        }
                    }
                    if hive == self.cfg.id {
                        let colony: Vec<Cell> = self
                            .registry_view()
                            .bee(bee)
                            .map(|r| r.colony.iter().cloned().collect())
                            .unwrap_or_default();
                        self.queens[ai].ensure_bee(bee, colony);
                        let remote_losers: HashSet<BeeId> = merged
                            .iter()
                            .filter(|(_, lh)| *lh != self.cfg.id)
                            .map(|(l, _)| *l)
                            .collect();
                        let conflicts = self.queens[ai].await_merges(bee, remote_losers);
                        self.counters.assign_conflicts += conflicts as u64;
                        if self.queens[ai].bee(bee).is_some_and(|b| b.runnable()) {
                            self.run_queue.push_back((ai, bee));
                        }
                        self.instr.lock().bee_cells.insert(
                            bee.0,
                            self.queens[ai]
                                .bee(bee)
                                .map(|b| b.colony.len() as u64)
                                .unwrap_or(0),
                        );
                    }
                }

                // Resolve our own pending route: re-route every buffered
                // message. The proposal's own message now takes the fast
                // path; messages that queued behind it because their cells
                // merely intersected re-evaluate their own mapping (their
                // cell set may extend beyond this colony).
                if cmd.origin == self.cfg.id {
                    if let Some(p) = self.pending_routes.remove(&cmd.seq) {
                        self.inflight.remove(&(app.clone(), p.cells_key.clone()));
                        if let Some(ai) = app_idx {
                            for (h, env) in p.waiting {
                                match self.apps[ai].map(h, env.msg.as_ref()) {
                                    Mapped::Cells(cells) => {
                                        self.route_cells(ai, Some(h), cells, Some(env));
                                    }
                                    // Non-cell mappings never buffer here, but
                                    // fall back to direct delivery defensively.
                                    _ => self.deliver_or_relay(ai, bee, hive, h, env),
                                }
                            }
                        }
                    }
                }
            }
            RegistryEvent::Moved { app, bee, from, to } => {
                let Some(&ai) = self.app_idx.get(&app) else {
                    return;
                };
                if from == self.cfg.id && to != self.cfg.id {
                    let mail = self.queens[ai].finish_migration_out(bee, to);
                    self.events.record_full(
                        EventKind::MigrationCommit,
                        0,
                        &app,
                        Some(bee),
                        Some(to),
                        "source handoff complete; buffered mail forwarded",
                    );
                    for (h, mut env) in mail {
                        env.dst = Dst::Bee {
                            app: app.clone(),
                            bee,
                            handler: Some(h),
                            fence: self.applied_seq,
                        };
                        self.relay(to, &env);
                    }
                } else if to == self.cfg.id && from != self.cfg.id {
                    if let Some(staged) = self.staged.remove(&(app.clone(), bee)) {
                        self.queens[ai].install_migrated(
                            bee,
                            staged.state,
                            staged.colony,
                            staged.repl_seq,
                        );
                        self.counters.migrations_in += 1;
                        self.events.record_full(
                            EventKind::MigrationCommit,
                            0,
                            &app,
                            Some(bee),
                            Some(from),
                            "staged state activated on move commit",
                        );
                        if self.queens[ai].bee(bee).is_some_and(|b| b.runnable()) {
                            self.run_queue.push_back((ai, bee));
                        }
                    } else if self.recovering.remove(&(app.clone(), bee)) {
                        // Failover: promote the local shadow instead of
                        // waiting for a state shipment from the dead owner.
                        let shadow = self.shadows.take(&app, bee).unwrap_or_default();
                        let colony: Vec<Cell> = self
                            .registry_view()
                            .bee(bee)
                            .map(|r| r.colony.iter().cloned().collect())
                            .unwrap_or_default();
                        self.queens[ai].install_migrated(bee, shadow.state, colony, shadow.seq);
                        self.counters.failovers += 1;
                        self.events.record_full(
                            EventKind::MigrationCommit,
                            0,
                            &app,
                            Some(bee),
                            Some(from),
                            "failover: promoted local shadow",
                        );
                    } else {
                        self.queens[ai].stage_in(bee);
                    }
                }
            }
            RegistryEvent::Assigned { conflicts, .. } => {
                self.counters.assign_conflicts += conflicts.len() as u64;
            }
            RegistryEvent::Removed { app, bee, hive } => {
                if hive == self.cfg.id {
                    if let Some(&ai) = self.app_idx.get(&app) {
                        self.queens[ai].remove(bee);
                    }
                }
            }
            RegistryEvent::Rejected { .. } => {
                self.counters.rejected_commands += 1;
                if cmd.origin == self.cfg.id {
                    if let Some(p) = self.pending_routes.remove(&cmd.seq) {
                        if let RegistryOp::LookupOrCreate { app, .. } = &cmd.op {
                            self.inflight.remove(&(app.clone(), p.cells_key));
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Control protocol
    // ------------------------------------------------------------------

    fn handle_control(&mut self, from: HiveId, msg: ControlMsg) {
        match msg {
            ControlMsg::RegistryForward(cmd) => {
                // We may be the leader — or know who is.
                self.submit_cmd(cmd);
            }
            ControlMsg::RequestMigration { app, bee, to } => {
                let Some(&ai) = self.app_idx.get(&app) else {
                    return;
                };
                if to == self.cfg.id {
                    return; // already here (or a stale order)
                }
                if self.draining_peers.contains(&to) {
                    // A stale placement order racing the drain announcement:
                    // never migrate onto a hive that is leaving.
                    self.events.record_full(
                        EventKind::MigrationAbort,
                        0,
                        &app,
                        Some(bee),
                        Some(to),
                        "destination hive is draining",
                    );
                    return;
                }
                if let Some((state, colony, repl_seq)) = self.queens[ai].start_migration(bee, to) {
                    self.counters.migrations_started += 1;
                    self.events.record_full(
                        EventKind::MigrationStart,
                        0,
                        &app,
                        Some(bee),
                        Some(to),
                        "shipping state to destination",
                    );
                    self.send_control(
                        to,
                        &ControlMsg::MigrateState {
                            app: app.clone(),
                            bee,
                            state,
                            colony,
                            repl_seq,
                        },
                    );
                    self.submit_tracked(RegistryOp::MoveBee { bee, to });
                } else {
                    self.events.record_full(
                        EventKind::MigrationAbort,
                        0,
                        &app,
                        Some(bee),
                        Some(to),
                        "bee unknown, inactive or already migrating",
                    );
                }
            }
            ControlMsg::MigrateState {
                app,
                bee,
                state,
                colony,
                repl_seq,
            } => {
                let Some(&ai) = self.app_idx.get(&app) else {
                    return;
                };
                let state = match BeeState::from_snapshot(&state) {
                    Ok(s) => s,
                    Err(_) => {
                        self.note_decode_error(Some(from));
                        return;
                    }
                };
                if self.queens[ai]
                    .bee(bee)
                    .is_some_and(|b| b.status == BeeStatus::Active)
                {
                    // Duplicate shipment (a chaos fault, or a retransmit): the
                    // bee is already live here; installing the snapshot again
                    // would clobber state mutated since activation.
                    return;
                }
                if self.registry_view().hive_of(bee) == Some(self.cfg.id) {
                    self.queens[ai].install_migrated(bee, state, colony, repl_seq);
                    self.counters.migrations_in += 1;
                    self.events.record_full(
                        EventKind::MigrationCommit,
                        0,
                        &app,
                        Some(bee),
                        Some(from),
                        "state installed and activated",
                    );
                    if self.queens[ai].bee(bee).is_some_and(|b| b.runnable()) {
                        self.run_queue.push_back((ai, bee));
                    }
                } else {
                    self.staged.insert(
                        (app, bee),
                        StagedBee {
                            state,
                            colony,
                            repl_seq,
                        },
                    );
                }
            }
            ControlMsg::MergeState {
                app,
                winner,
                loser,
                state,
            } => {
                let Some(&ai) = self.app_idx.get(&app) else {
                    return;
                };
                let state = match BeeState::from_snapshot(&state) {
                    Ok(s) => s,
                    Err(_) => {
                        self.note_decode_error(Some(from));
                        return;
                    }
                };
                if self.queens[ai].expects_merge(winner, loser) {
                    let conflicts = self.queens[ai].absorb_merge(winner, loser, state);
                    self.counters.assign_conflicts += conflicts as u64;
                    self.counters.merges += 1;
                    if self.queens[ai].bee(winner).is_some_and(|b| b.runnable()) {
                        self.run_queue.push_back((ai, winner));
                    }
                } else {
                    // The shipment outran our registry apply: stash it; the
                    // Routed event's await_merges will consume it.
                    self.queens[ai].stash_early_merge(winner, loser, state);
                }
            }
            ControlMsg::ReplicateTx {
                app,
                bee,
                seq,
                journal,
            } => {
                let journal = match beehive_wire::from_slice::<crate::state::TxJournal>(&journal) {
                    Ok(j) => j,
                    Err(_) => {
                        self.note_decode_error(Some(from));
                        return;
                    }
                };
                match self.shadows.apply(&app, bee, seq, &journal) {
                    ApplyOutcome::Applied | ApplyOutcome::Stale => {}
                    ApplyOutcome::NeedSync => {
                        self.send_control(from, &ControlMsg::ReplicaSyncRequest { app, bee });
                    }
                }
            }
            ControlMsg::ReplicaSyncRequest { app, bee } => {
                let Some(&ai) = self.app_idx.get(&app) else {
                    return;
                };
                let Some(local) = self.queens[ai].bee(bee) else {
                    return;
                };
                let Ok(state) = local.state.snapshot() else {
                    return;
                };
                let seq = local.repl_seq;
                self.counters.replica_syncs += 1;
                self.send_control(
                    from,
                    &ControlMsg::ReplicaSyncState {
                        app,
                        bee,
                        seq,
                        state,
                    },
                );
            }
            ControlMsg::ReplicaSyncState {
                app,
                bee,
                seq,
                state,
            } => {
                let Ok(state) = BeeState::from_snapshot(&state) else {
                    self.note_decode_error(Some(from));
                    return;
                };
                self.shadows.install(&app, bee, seq, state);
                self.counters.replica_syncs += 1;
            }
            ControlMsg::ChannelAck { ack_epoch, upto } => {
                self.channels.on_ack(from, ack_epoch, upto);
            }
            ControlMsg::TraceQuery { query_id, trace_id } => {
                let spans = self.tracer.spans_for(trace_id);
                self.send_control(
                    from,
                    &ControlMsg::TraceReply {
                        query_id,
                        trace_id,
                        spans,
                    },
                );
            }
            ControlMsg::TraceReply {
                query_id, spans, ..
            } => {
                self.trace_hub.add_reply(query_id, spans);
            }
            ControlMsg::MembershipChange { node, addr, op } => {
                self.on_membership_msg(from, node, addr, op);
            }
        }
    }

    // ------------------------------------------------------------------
    // Bee execution
    // ------------------------------------------------------------------

    /// Runs one message on a bee. Returns whether work was done.
    /// One parallel executor round: drains the run queue, checks every
    /// runnable bee out to the worker pool with its full mailbox batch,
    /// blocks for all results, then checks bees back in and applies side
    /// effects deterministically in (app, bee) order. Returns messages
    /// processed. See `DESIGN.md`, "Execution model".
    fn run_parallel_round(&mut self, now: u64) -> usize {
        let executor = self
            .executor
            .as_ref()
            .expect("parallel round requires executor");
        let me = self.cfg.id;
        let replicate = self.cfg.replication_factor > 1;

        // Fan out: one job per distinct runnable bee. Bees that refuse
        // checkout (went inactive, drained mailbox via a merge/migration)
        // are skipped — exactly like the sequential path's early returns.
        let mut seen: HashSet<(usize, BeeId)> = HashSet::new();
        let mut jobs = 0usize;
        while let Some((app_idx, bee)) = self.run_queue.pop_front() {
            if !seen.insert((app_idx, bee)) {
                continue;
            }
            let Some(out) = self.queens[app_idx].check_out(bee, now) else {
                continue;
            };
            executor.submit(BeeJob {
                app_idx,
                bee,
                app: self.apps[app_idx].clone(),
                hive: me,
                now_ms: now,
                state: out.state,
                colony: out.colony,
                pinned: out.pinned,
                repl_seq: out.repl_seq,
                replicate,
                batch: out.mail,
                tracer: self.tracer.clone(),
                faults: self.faults.clone(),
            });
            jobs += 1;
        }
        if jobs == 0 {
            return 0;
        }
        self.instr.lock().executor.record_round(jobs as u64);

        // Barrier: the hive thread blocks until the whole round is back, so
        // no routing, registry event or delivery can race a checked-out bee.
        let mut results = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            results.push(executor.collect());
        }
        results.sort_by_key(|r| (r.app_idx, r.bee));

        // Phase 1: restore every bee before applying any side effect, so
        // effects (which may touch other bees via dispatch) always observe a
        // fully checked-in queen.
        for r in &mut results {
            self.queens[r.app_idx].check_in(
                r.bee,
                std::mem::take(&mut r.state),
                std::mem::take(&mut r.colony),
                r.repl_seq,
            );
        }

        // Phase 2: side effects, in sorted (app, bee) order — the same
        // deterministic order regardless of which worker finished first.
        let mut processed = 0usize;
        for r in results {
            processed += r.processed as usize;
            {
                let mut instr = self.instr.lock();
                instr
                    .executor
                    .record_batch(r.worker, r.processed, r.busy_nanos);
                instr.merge_delta(r.instr);
            }
            self.counters.handler_errors += r.errors;
            self.counters.handled_ok += r.processed - r.errors;
            for env in r.outbox {
                self.dispatch_queue.push_back(env);
            }
            for (to, cmsg) in r.control_out {
                self.send_control(to, &cmsg);
            }
            if !r.journals.is_empty() {
                let app_name = self.apps[r.app_idx].name().clone();
                for (seq, bytes) in r.journals {
                    for replica in replicas_of(me, &self.cfg.all_hives, self.cfg.replication_factor)
                    {
                        self.counters.replicated_txs += 1;
                        self.send_control(
                            replica,
                            &ControlMsg::ReplicateTx {
                                app: app_name.clone(),
                                bee: r.bee,
                                seq,
                                journal: bytes.clone(),
                            },
                        );
                    }
                }
            }
            if !r.new_cells.is_empty() {
                self.submit_tracked(RegistryOp::AssignCells {
                    bee: r.bee,
                    cells: r.new_cells,
                });
            }
            if r.retire && !r.pinned {
                let empty_and_idle = self.queens[r.app_idx]
                    .bee(r.bee)
                    .is_some_and(|b| b.state.total_entries() == 0 && b.mailbox.is_empty());
                if empty_and_idle {
                    self.submit_tracked(RegistryOp::RemoveBee { bee: r.bee });
                }
            }
            // Supervision: route each failed message (redelivery or DLQ) and
            // feed the batch outcome to the bee's circuit breaker.
            let saw_failures = !r.failed.is_empty();
            for f in r.failed {
                self.handle_failed_delivery(
                    r.app_idx, r.bee, f.hidx, &f.handler, f.env, f.kind, f.detail, now,
                );
            }
            if r.had_success || saw_failures {
                self.apply_outcome(r.app_idx, r.bee, r.had_success, r.trailing_failures, now);
            }
        }
        processed
    }

    /// Runs one bee's drained batch on the hive thread, returning the number
    /// of messages processed.
    ///
    /// Up to [`HiveConfig::max_drain_batch`] messages run inside ONE open
    /// transaction with a savepoint per message
    /// ([`crate::state::TxState::savepoint`]): commit, encoding and
    /// replication bookkeeping amortize across the batch while a mid-batch
    /// handler failure rolls back exactly its own message. With the default
    /// batch limit of 1 this is behaviourally identical — same message
    /// interleaving across bees, same per-message side-effect order — to the
    /// classic one-message-per-turn sequential path. This mirrors the
    /// parallel executor's `run_batch`; any change here must be reflected
    /// there (and vice versa).
    fn run_bee(&mut self, app_idx: usize, bee_id: BeeId, now: u64, budget: usize) -> usize {
        let me = self.cfg.id;
        let app_name = self.apps[app_idx].name().clone();
        let replicate_on = self.cfg.replication_factor > 1;
        let max_batch = self.cfg.max_drain_batch.max(1).min(budget.max(1));

        /// Per-message effects buffered during the batch (phase 1, bee
        /// borrowed) and applied after it (phase 2, bee released) in the
        /// same order the per-message engine used.
        struct Done {
            src: Source,
            trace: crate::trace::TraceContext,
            in_type: String,
            msg_len: usize,
            ok: bool,
            failure_kind: Option<FailureKind>,
            elapsed: u64,
            outbox: Vec<Envelope>,
            control_out: Vec<(HiveId, ControlMsg)>,
            replicate: Option<(u64, Vec<u8>)>,
            colony_len: u64,
            retire: bool,
        }
        /// A failed message routed to supervision in phase 2.
        struct Failed {
            hidx: u16,
            handler: String,
            env: Envelope,
            kind: FailureKind,
            detail: String,
        }

        // Phase 1: drain the batch and run it inside one transaction, with
        // the bee (and its state) borrowed from the queen.
        let mut records: Vec<Done> = Vec::new();
        let mut failed: Vec<Failed> = Vec::new();
        let mut new_cells: Vec<Cell> = Vec::new();
        let (has_more, pinned) = {
            let queen = &mut self.queens[app_idx];
            let Some(bee) = queen.bee_mut(bee_id) else {
                return 0;
            };
            if bee.status != BeeStatus::Active {
                return 0;
            }
            // Quarantined: leave the backlog queued; the cooldown timer
            // re-queues the bee for its half-open probe.
            if bee.is_quarantined(now) {
                return 0;
            }
            // A half-open probe (cooldown elapsed, breaker still armed)
            // runs exactly one message regardless of the batch limit.
            let probing = bee.quarantined_until_ms.is_some();
            let limit = if probing { 1 } else { max_batch };
            let take = limit.min(bee.mailbox.len());
            if take == 0 {
                return 0;
            }
            let batch: Vec<(u16, Envelope)> = bee.mailbox.drain(..take).collect();
            let has_more = !bee.mailbox.is_empty();
            let pinned = bee.pinned;
            records.reserve(batch.len());

            let apps = &self.apps;
            let mut tx = TxState::begin(&mut bee.state);
            for (hidx, env) in batch {
                let handler = apps[app_idx].handler(hidx).expect("handler index valid");
                let in_type = env.msg.type_name().to_string();
                let msg_len = env.msg.encoded_len();

                let sp = tx.savepoint();
                let mut ctx = RcvCtx {
                    hive: me,
                    app: app_name.clone(),
                    bee: bee_id,
                    src: env.src,
                    now_ms: now,
                    trace: env.trace,
                    deliveries: env.deliveries,
                    tx,
                    outbox: Vec::new(),
                    control_out: Vec::new(),
                    retire: false,
                };
                let started = std::time::Instant::now();
                // A panic is contained at the message boundary, exactly like
                // `Err`: roll back, classify, then redeliver or dead-letter.
                let outcome: Result<(), (FailureKind, String)> = if self
                    .faults
                    .should_fail(&app_name, &in_type)
                {
                    Err((FailureKind::Error, "injected handler fault".to_string()))
                } else {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handler.rcv(env.msg.as_ref(), &mut ctx)
                    })) {
                        Ok(Ok(())) => Ok(()),
                        Ok(Err(e)) => Err((FailureKind::Error, e)),
                        Err(payload) => Err((FailureKind::Panic, panic_detail(payload.as_ref()))),
                    }
                };
                let elapsed = started.elapsed().as_nanos() as u64;

                let RcvCtx {
                    tx: tx_back,
                    outbox,
                    control_out,
                    retire,
                    ..
                } = ctx;
                tx = tx_back;
                let ok = outcome.is_ok();
                let (journal, outbox, control_out) = if ok {
                    (tx.take_journal_since(&sp), outbox, control_out)
                } else {
                    tx.rollback_to(&sp);
                    (crate::state::TxJournal::default(), Vec::new(), Vec::new())
                };

                // Claim newly written cells that fall outside the colony.
                if ok && !pinned {
                    for op in &journal.ops {
                        let (dict, key) = match op {
                            crate::state::JournalOp::Put { dict, key, .. } => (dict, key),
                            crate::state::JournalOp::Del { dict, key } => (dict, key),
                        };
                        if key == crate::cell::WHOLE_DICT_KEY {
                            continue;
                        }
                        let covered = bee.colony.contains(&Cell {
                            dict: dict.clone(),
                            key: key.clone(),
                        }) || bee.colony.contains(&Cell::whole(dict.clone()));
                        if !covered {
                            let cell = Cell {
                                dict: dict.clone(),
                                key: key.clone(),
                            };
                            bee.colony.insert(cell.clone());
                            new_cells.push(cell.clone());
                        }
                    }
                }
                let colony_len = bee.colony.len() as u64;

                // Colony replication: sequence and encode the committed
                // journal for shipping to this bee's shadow hives.
                let mut replicate: Option<(u64, Vec<u8>)> = None;
                if ok && !pinned && replicate_on && !journal.is_empty() {
                    bee.repl_seq += 1;
                    if let Ok(bytes) = beehive_wire::to_vec(&journal) {
                        replicate = Some((bee.repl_seq, bytes));
                    }
                }

                let (src, trace) = (env.src, env.trace);
                let failure_kind = match &outcome {
                    Err((kind, _)) => Some(*kind),
                    Ok(()) => None,
                };
                if let Err((kind, detail)) = outcome {
                    failed.push(Failed {
                        hidx,
                        handler: handler.name.clone(),
                        env,
                        kind,
                        detail,
                    });
                }
                records.push(Done {
                    src,
                    trace,
                    in_type,
                    msg_len,
                    ok,
                    failure_kind,
                    elapsed,
                    outbox,
                    control_out,
                    replicate,
                    colony_len,
                    retire: ok && retire,
                });
            }
            // Per-message journals were drained at their savepoints; the
            // residual commit is empty and O(1).
            let residue = tx.commit();
            debug_assert!(residue.is_empty(), "all journals drained per message");
            (has_more, pinned)
        };

        // Phase 2: apply per-message effects in the per-message engine's
        // order: instrumentation + counters, supervision, breaker outcome,
        // requeue, outputs, cell claims, retirement.
        {
            let mut instr = self.instr.lock();
            for r in &records {
                if r.src.bee().is_some() {
                    instr.record_matrix(r.src.hive(), me);
                }
                let stats = instr.bee(&app_name, bee_id);
                stats.record_in(r.src.hive(), r.src.bee(), r.msg_len);
                stats.handler_nanos += r.elapsed;
                if !r.ok {
                    stats.errors += 1;
                }
                if let Some(kind) = r.failure_kind {
                    instr.record_failure(kind);
                }
                for out in &r.outbox {
                    instr
                        .bee(&app_name, bee_id)
                        .record_out(out.msg.encoded_len());
                    instr.record_provenance(&app_name, &r.in_type, out.msg.type_name());
                }
                instr.record_in_type(&app_name, &r.in_type);
                instr.bee_cells.insert(bee_id.0, r.colony_len);
                let wait_us = now.saturating_sub(r.trace.enqueued_ms) * 1_000;
                instr.record_latency(&app_name, &r.in_type, wait_us, r.elapsed / 1_000);
                self.tracer.record(TraceSpan {
                    trace_id: r.trace.trace_id,
                    span_id: r.trace.span_id,
                    parent_span: r.trace.parent_span,
                    hive: me,
                    app: app_name.clone(),
                    bee: bee_id,
                    msg_type: r.in_type.clone(),
                    start_ms: now,
                    queue_wait_us: wait_us,
                    runtime_ns: r.elapsed,
                    ok: r.ok,
                });
            }
        }
        let mut had_success = false;
        let mut trailing_failures = 0u32;
        for r in &records {
            if r.ok {
                self.counters.handled_ok += 1;
                had_success = true;
                trailing_failures = 0;
            } else {
                self.counters.handler_errors += 1;
                trailing_failures = trailing_failures.saturating_add(1);
            }
        }
        let retire = records.last().is_some_and(|r| r.retire);
        let processed = records.len();

        // Supervision: route each failure (redelivery or dead-letter) and
        // feed the batch outcome to the bee's circuit breaker. With a batch
        // of one this is exactly the per-message outcome.
        for f in failed {
            self.handle_failed_delivery(
                app_idx, bee_id, f.hidx, &f.handler, f.env, f.kind, f.detail, now,
            );
        }
        self.apply_outcome(app_idx, bee_id, had_success, trailing_failures, now);

        // Requeue if there is more mail.
        if has_more {
            self.run_queue.push_back((app_idx, bee_id));
        }

        // Emit the handlers' outputs in message order.
        for r in &mut records {
            for env in r.outbox.drain(..) {
                self.dispatch_queue.push_back(env);
            }
            for (to, cmsg) in r.control_out.drain(..) {
                self.send_control(to, &cmsg);
            }
            if let Some((seq, bytes)) = r.replicate.take() {
                for replica in replicas_of(me, &self.cfg.all_hives, self.cfg.replication_factor) {
                    self.counters.replicated_txs += 1;
                    self.send_control(
                        replica,
                        &ControlMsg::ReplicateTx {
                            app: app_name.clone(),
                            bee: bee_id,
                            seq,
                            journal: bytes.clone(),
                        },
                    );
                }
            }
        }
        if !new_cells.is_empty() {
            self.submit_tracked(RegistryOp::AssignCells {
                bee: bee_id,
                cells: new_cells,
            });
        }
        // Colony garbage collection: a retired bee with empty state and an
        // idle mailbox is removed from the registry (the queen drops it when
        // the Removed event applies).
        if retire && !pinned {
            let empty_and_idle = self.queens[app_idx]
                .bee(bee_id)
                .is_some_and(|b| b.state.total_entries() == 0 && b.mailbox.is_empty());
            if empty_and_idle {
                self.submit_tracked(RegistryOp::RemoveBee { bee: bee_id });
            }
        }
        processed
    }
}

impl std::fmt::Debug for Hive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hive")
            .field("id", &self.cfg.id)
            .field("apps", &self.apps.len())
            .field("pending_routes", &self.pending_routes.len())
            .finish()
    }
}
