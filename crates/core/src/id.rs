//! Identifiers: hives, bees and applications.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hive (a controller instance / physical machine).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HiveId(pub u32);

impl HiveId {
    /// The corresponding Raft node id (hives double as registry Raft members).
    pub fn as_raft(self) -> u64 {
        self.0 as u64
    }

    /// Inverse of [`HiveId::as_raft`].
    pub fn from_raft(id: u64) -> Self {
        HiveId(id as u32)
    }
}

impl fmt::Display for HiveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hive-{}", self.0)
    }
}

/// Identifier of a bee: globally unique without coordination, because it
/// embeds the id of the hive that created it plus a per-hive sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BeeId(pub u64);

impl BeeId {
    /// Packs a creator hive and a local sequence number.
    pub fn new(creator: HiveId, seq: u32) -> Self {
        BeeId(((creator.0 as u64) << 32) | seq as u64)
    }

    /// The hive that allocated this id (not necessarily where the bee now
    /// lives — bees migrate).
    pub fn creator(self) -> HiveId {
        HiveId((self.0 >> 32) as u32)
    }

    /// The per-creator sequence number.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for BeeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bee-{}.{}", self.creator().0, self.seq())
    }
}

/// Application name. Applications are identified by name cluster-wide.
pub type AppName = String;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bee_id_packs_and_unpacks() {
        let id = BeeId::new(HiveId(7), 42);
        assert_eq!(id.creator(), HiveId(7));
        assert_eq!(id.seq(), 42);
    }

    #[test]
    fn bee_ids_from_different_hives_never_collide() {
        assert_ne!(BeeId::new(HiveId(1), 5), BeeId::new(HiveId(2), 5));
        assert_ne!(BeeId::new(HiveId(1), 5), BeeId::new(HiveId(1), 6));
    }

    #[test]
    fn hive_raft_mapping_roundtrips() {
        let h = HiveId(39);
        assert_eq!(HiveId::from_raft(h.as_raft()), h);
    }

    #[test]
    fn display_formats() {
        assert_eq!(HiveId(3).to_string(), "hive-3");
        assert_eq!(BeeId::new(HiveId(3), 9).to_string(), "bee-3.9");
    }
}
