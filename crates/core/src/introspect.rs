//! Live cluster introspection: a dependency-free HTTP/1.0 status server
//! plus the shared Prometheus render path used by both the server and the
//! `--metrics-dump` file exporter (one renderer, two transports — the dump
//! flag is the fallback for environments that cannot open a port).
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition ([`render_metrics`]).
//! * `GET /healthz` — `200 ok` / `503 degraded` JSON verdict, degraded when
//!   bees are quarantined, dead letters are retained, or the channel outbox
//!   backs up past [`HEALTH_OUTBOX_LIMIT`]. A hive mid-membership-change
//!   reports its lifecycle stage (`joining`/`draining`/`departed`) with a
//!   200 instead — a deliberate transition is not degradation.
//! * `GET /events?n=K` — the last `K` flight-recorder events (default 100)
//!   as a JSON array ([`crate::events::EventJournal`]).
//! * `GET /trace/<id>` — one merged chrome://tracing JSON document for a
//!   trace id, assembled from every reachable hive via
//!   [`crate::trace::TraceHub`]; decimal or `0x`-prefixed hex ids.
//! * `GET /dlq` — the retained dead letters as a JSON array.
//!
//! The server is deliberately minimal: blocking std networking, one short-
//! lived thread per connection, `Connection: close` on every response. It
//! observes shared state and never schedules hive work (the one exception:
//! a trace query nudges the hive awake so its step loop can fan the query
//! out — submission is lock-free and the hive consumes it on its own
//! schedule).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::analytics::Analytics;
use crate::events::EventJournal;
use crate::lifecycle::{Lifecycle, LifecycleStage};
use crate::supervision::DeadLetterStore;
use crate::trace::{chrome_trace_merged, TraceCollector, TraceHub};
use crate::transport::{FrameKind, TransportCounters, TransportSnapshot};

/// `/healthz` reports degraded when the summed channel outbox depth exceeds
/// this (unacked envelopes buffered for resend — a stuck peer).
pub const HEALTH_OUTBOX_LIMIT: u64 = 10_000;

/// How long `/trace/<id>` waits for remote hives before answering with
/// whatever arrived. Slightly above the hive-side query expiry so the hive
/// normally completes the query first.
const TRACE_WAIT: Duration = Duration::from_millis(2_500);

/// Default `/events` count when no `?n=` is given.
const DEFAULT_EVENT_COUNT: usize = 100;

/// Per-connection socket timeout: a stalled client cannot pin a thread.
const CONN_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything the status server observes. All fields are shared handles
/// onto live hive state; the server holds no state of its own.
#[derive(Clone)]
pub struct StatusContext {
    /// The merged analytics store (fed by the exporter app).
    pub analytics: Arc<std::sync::Mutex<Analytics>>,
    /// TCP transport counters, when running over the network.
    pub transport: Option<Arc<TransportCounters>>,
    /// The hive's dead-letter queue.
    pub dead_letters: Arc<DeadLetterStore>,
    /// The hive's flight-recorder event journal.
    pub events: Arc<EventJournal>,
    /// The hive's local span ring (fallback when no cluster query runs).
    pub tracer: Arc<TraceCollector>,
    /// The cross-hive trace assembly hub.
    pub trace_hub: Arc<TraceHub>,
    /// Wakes the hive's run loop so it notices a submitted trace query.
    /// `None` degrades `/trace/<id>` to local spans only.
    pub nudge: Option<Arc<dyn Fn() + Send + Sync>>,
    /// The hive's membership lifecycle cell. `None` reports `active`.
    /// A non-`active` stage takes precedence over the degraded verdict on
    /// `/healthz`: a draining hive dead-letters abandoned envelopes by
    /// design and must still answer 200 so orchestration can watch it.
    pub lifecycle: Option<Arc<Lifecycle>>,
}

/// Renders the full Prometheus exposition: analytics families plus (when
/// present) the transport families. The single render path shared by
/// `GET /metrics` and `--metrics-dump`.
pub fn render_metrics(analytics: &Analytics, transport: Option<&TransportSnapshot>) -> String {
    let mut text = analytics.render_prometheus();
    if let Some(snap) = transport {
        text.push_str(&render_transport(snap));
    }
    text
}

/// Renders the TCP transport counters as Prometheus text.
pub fn render_transport(snap: &TransportSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str(
        "# HELP beehive_transport_frames_total Frames exchanged by the TCP transport.\n\
         # TYPE beehive_transport_frames_total counter\n",
    );
    for kind in FrameKind::ALL {
        let (fo, _) = snap.sent(kind);
        let (fi, _) = snap.received(kind);
        let k = kind.label();
        writeln!(
            out,
            "beehive_transport_frames_total{{kind=\"{k}\",direction=\"out\"}} {fo}"
        )
        .unwrap();
        writeln!(
            out,
            "beehive_transport_frames_total{{kind=\"{k}\",direction=\"in\"}} {fi}"
        )
        .unwrap();
    }
    out.push_str(
        "# HELP beehive_transport_bytes_total Wire bytes exchanged by the TCP transport.\n\
         # TYPE beehive_transport_bytes_total counter\n",
    );
    for kind in FrameKind::ALL {
        let (_, bo) = snap.sent(kind);
        let (_, bi) = snap.received(kind);
        let k = kind.label();
        writeln!(
            out,
            "beehive_transport_bytes_total{{kind=\"{k}\",direction=\"out\"}} {bo}"
        )
        .unwrap();
        writeln!(
            out,
            "beehive_transport_bytes_total{{kind=\"{k}\",direction=\"in\"}} {bi}"
        )
        .unwrap();
    }
    out.push_str(
        "# HELP beehive_transport_connect_failures_total Failed connect attempts to peers.\n\
         # TYPE beehive_transport_connect_failures_total counter\n",
    );
    writeln!(
        out,
        "beehive_transport_connect_failures_total {}",
        snap.connect_failures
    )
    .unwrap();
    out.push_str(
        "# HELP beehive_transport_deferred_total Frames queued for retransmission on \
         reconnect instead of sent (dead or backed-off peer).\n\
         # TYPE beehive_transport_deferred_total counter\n",
    );
    writeln!(out, "beehive_transport_deferred_total {}", snap.deferred).unwrap();
    out.push_str(
        "# HELP beehive_transport_deferred_evicted_total Frames evicted from a full \
         deferred queue (dropped; App/Raft recover via retransmission, Control does not).\n\
         # TYPE beehive_transport_deferred_evicted_total counter\n",
    );
    writeln!(
        out,
        "beehive_transport_deferred_evicted_total {}",
        snap.deferred_evicted
    )
    .unwrap();
    out.push_str(
        "# HELP beehive_transport_peer_backoff_ms Current dead-peer backoff window per peer.\n\
         # TYPE beehive_transport_peer_backoff_ms gauge\n",
    );
    for (peer, ms) in &snap.peer_backoff_ms {
        writeln!(
            out,
            "beehive_transport_peer_backoff_ms{{peer=\"{peer}\"}} {ms}"
        )
        .unwrap();
    }
    out
}

/// The status server: accepts HTTP/1.0 connections on its own thread until
/// dropped.
pub struct StatusServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl StatusServer {
    /// Binds `addr` (port 0 allocates) and starts serving `ctx`.
    pub fn bind(addr: SocketAddr, ctx: StatusContext) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        std::thread::Builder::new()
            .name("bh-status".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let ctx = ctx.clone();
                    std::thread::Builder::new()
                        .name("bh-status-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, &ctx);
                        })
                        .ok();
                }
            })?;
        Ok(StatusServer {
            local_addr,
            shutdown,
        })
    }

    /// The address the server actually listens on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the accept loop with a dummy connection so it can exit.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// Reads one request, routes it, writes one response, closes.
fn serve_connection(mut stream: TcpStream, ctx: &StatusContext) -> std::io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT)).ok();
    stream.set_write_timeout(Some(CONN_TIMEOUT)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; HTTP/1.0 GETs carry no body we care about.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "beehive status endpoints: /metrics /healthz /events?n=K /trace/<id> /dlq\n",
        ),
        "/metrics" => {
            let snap = ctx.transport.as_ref().map(|c| c.snapshot());
            let text = {
                let analytics = ctx.analytics.lock().unwrap();
                render_metrics(&analytics, snap.as_ref())
            };
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &text)
        }
        "/healthz" => {
            let (quarantined, outbox_depth, snapshot_lag) = {
                let analytics = ctx.analytics.lock().unwrap();
                (
                    analytics.quarantined_bees(),
                    analytics.outbox_depth(),
                    analytics.snapshot_lag(),
                )
            };
            let dead_letters = ctx.dead_letters.len() as u64;
            let stage = ctx
                .lifecycle
                .as_ref()
                .map_or(LifecycleStage::Active, |l| l.stage());
            let healthy =
                quarantined == 0 && dead_letters == 0 && outbox_depth <= HEALTH_OUTBOX_LIMIT;
            // A deliberate lifecycle transition is not degradation: report
            // the stage itself (joining/draining/departed) with a 200.
            let verdict = if stage != LifecycleStage::Active {
                stage.label()
            } else if healthy {
                "ok"
            } else {
                "degraded"
            };
            let body = format!(
                "{{\"status\":\"{verdict}\",\"lifecycle\":\"{}\",\
                 \"quarantined_bees\":{quarantined},\
                 \"dead_letters\":{dead_letters},\"outbox_depth\":{outbox_depth},\
                 \"snapshot_lag\":{snapshot_lag},\
                 \"events_recorded\":{}}}\n",
                stage.label(),
                ctx.events.recorded(),
            );
            let status = if healthy || stage != LifecycleStage::Active {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, "application/json", &body)
        }
        "/events" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n="))
                        .and_then(|v| v.parse::<usize>().ok())
                })
                .unwrap_or(DEFAULT_EVENT_COUNT);
            let body = EventJournal::to_json_array(&ctx.events.recent(n));
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/dlq" => {
            let body = render_dlq(&ctx.dead_letters);
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => {
            if let Some(id) = path.strip_prefix("/trace/").and_then(parse_trace_id) {
                let spans = collect_trace(ctx, id);
                let body = chrome_trace_merged(&spans, id);
                respond(&mut stream, "200 OK", "application/json", &body)
            } else {
                respond(&mut stream, "404 Not Found", "text/plain", "not found\n")
            }
        }
    }
}

/// Pulls a trace's spans from the whole cluster when the hive loop is
/// reachable, falling back to the local span ring.
fn collect_trace(ctx: &StatusContext, trace_id: u64) -> Vec<crate::trace::TraceSpan> {
    if let Some(nudge) = &ctx.nudge {
        let query_id = ctx.trace_hub.submit(trace_id);
        nudge();
        let spans = ctx.trace_hub.wait(query_id, TRACE_WAIT);
        if !spans.is_empty() {
            return spans;
        }
    }
    ctx.tracer.spans_for(trace_id)
}

/// Accepts decimal or `0x`-prefixed hex trace ids (the DLQ dump and logs
/// print them in hex).
fn parse_trace_id(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// JSON-escapes into a fresh string (wrapper over the journal's escaper).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    crate::events::escape_json(s, &mut out);
    out
}

/// The retained dead letters as a JSON array.
fn render_dlq(dlq: &DeadLetterStore) -> String {
    use std::fmt::Write;
    let letters = dlq.snapshot();
    let mut out = String::from("[");
    for (i, l) in letters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"recorded_ms\":{},\"app\":\"{}\",\"bee\":{},\"handler\":\"{}\",\
             \"msg_type\":\"{}\",\"kind\":\"{}\",\"attempts\":{},\"trace_id\":{},\
             \"detail\":\"{}\"}}",
            l.recorded_ms,
            esc(&l.app),
            l.bee.0,
            esc(&l.handler),
            esc(&l.msg_type),
            l.kind.label(),
            l.attempts,
            l.trace_id,
            esc(&l.detail),
        )
        .unwrap();
    }
    out.push_str("]\n");
    out
}

/// Writes one HTTP/1.0 response with an explicit length and closes.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::id::HiveId;

    #[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
    struct Dummy;
    crate::impl_message!(Dummy);

    fn test_ctx() -> StatusContext {
        let clock = Arc::new(SimClock::new());
        StatusContext {
            analytics: Arc::new(std::sync::Mutex::new(Analytics::new())),
            transport: Some(Arc::new(TransportCounters::new())),
            dead_letters: Arc::new(DeadLetterStore::new(16)),
            events: Arc::new(EventJournal::new(HiveId(1), 16, clock)),
            tracer: Arc::new(TraceCollector::new(16)),
            trace_hub: Arc::new(TraceHub::new()),
            nudge: None,
            lifecycle: None,
        }
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = String::new();
        use std::io::Read;
        stream.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn render_metrics_appends_transport_families_once() {
        let analytics = Analytics::new();
        let counters = TransportCounters::new();
        counters.record_out(FrameKind::App, 64);
        let text = render_metrics(&analytics, Some(&counters.snapshot()));
        assert!(text.contains("beehive_build_info{"), "{text}");
        assert!(text.contains("beehive_uptime_seconds"), "{text}");
        assert_eq!(
            text.matches("# TYPE beehive_transport_frames_total ")
                .count(),
            1
        );
        assert!(
            text.contains("beehive_transport_frames_total{kind=\"app\",direction=\"out\"} 1"),
            "{text}"
        );
        // Without a transport, the families are simply absent.
        let local = render_metrics(&analytics, None);
        assert!(!local.contains("beehive_transport_frames_total"));
    }

    #[test]
    fn status_server_serves_metrics_healthz_events_and_404() {
        let ctx = test_ctx();
        ctx.events
            .record(crate::events::EventKind::BeeSpawned, "test event");
        let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("Content-Length:"), "{head}");
        assert!(body.contains("beehive_build_info{"), "{body}");

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"snapshot_lag\":0"), "{body}");
        assert!(body.contains("\"events_recorded\":1"), "{body}");

        let (head, body) = http_get(addr, "/events?n=10");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"kind\":\"bee_spawned\""), "{body}");
        assert!(body.contains("\"detail\":\"test event\""), "{body}");

        let (head, body) = http_get(addr, "/dlq");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body.trim(), "[]");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }

    #[test]
    fn trace_endpoint_falls_back_to_local_spans_without_a_hive() {
        let ctx = test_ctx();
        ctx.tracer.record(crate::trace::TraceSpan {
            trace_id: 42,
            span_id: 1,
            parent_span: 0,
            hive: HiveId(1),
            app: "te".into(),
            bee: crate::id::BeeId::new(HiveId(1), 1),
            msg_type: "M".into(),
            start_ms: 5,
            queue_wait_us: 1,
            runtime_ns: 1_000,
            ok: true,
        });
        let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).unwrap();
        let (head, body) = http_get(server.local_addr(), "/trace/42");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.trim_start().starts_with('['), "{body}");
        assert!(body.contains("\"ph\":\"X\""), "{body}");
        assert!(body.contains("\"pid\":1"), "{body}");
        // Hex form resolves to the same trace.
        let (_, hex_body) = http_get(server.local_addr(), "/trace/0x2a");
        assert_eq!(body, hex_body);
    }

    #[test]
    fn healthz_reports_lifecycle_and_draining_stays_200() {
        let lifecycle = Arc::new(Lifecycle::default());
        let ctx = StatusContext {
            lifecycle: Some(lifecycle.clone()),
            ..test_ctx()
        };
        // Even with retained dead letters (abandoned envelopes are
        // dead-lettered during a drain by design), a draining hive answers
        // 200 and reports the stage.
        ctx.dead_letters.record(crate::supervision::DeadLetter {
            app: "te".into(),
            bee: crate::id::BeeId::new(HiveId(1), 1),
            handler: "h".into(),
            msg_type: "M".into(),
            kind: crate::supervision::FailureKind::Panic,
            detail: "drain casualty".into(),
            attempts: 1,
            trace_id: 7,
            recorded_ms: 1,
            envelope: crate::message::Envelope {
                msg: Arc::new(Dummy),
                src: crate::message::Source::External(HiveId(1)),
                dst: crate::message::Dst::Broadcast,
                trace: crate::trace::TraceContext::root(HiveId(1)),
                deliveries: 0,
            },
        });
        let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).unwrap();
        let (head, body) = http_get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 503"), "{head}");
        assert!(body.contains("\"lifecycle\":\"active\""), "{body}");
        lifecycle.set(LifecycleStage::Draining);
        let (head, body) = http_get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"status\":\"draining\""), "{body}");
        assert!(body.contains("\"lifecycle\":\"draining\""), "{body}");
    }

    #[test]
    fn healthz_degrades_on_dead_letters() {
        let ctx = test_ctx();
        let dlq = Arc::new(DeadLetterStore::new(4));
        let ctx = StatusContext {
            dead_letters: dlq.clone(),
            ..ctx
        };
        dlq.record(crate::supervision::DeadLetter {
            app: "te".into(),
            bee: crate::id::BeeId::new(HiveId(1), 1),
            handler: "h".into(),
            msg_type: "M".into(),
            kind: crate::supervision::FailureKind::Panic,
            detail: "boom \"quoted\"\nline2".into(),
            attempts: 3,
            trace_id: 7,
            recorded_ms: 1,
            envelope: crate::message::Envelope {
                msg: Arc::new(Dummy),
                src: crate::message::Source::External(HiveId(1)),
                dst: crate::message::Dst::Broadcast,
                trace: crate::trace::TraceContext::root(HiveId(1)),
                deliveries: 0,
            },
        });
        let server = StatusServer::bind("127.0.0.1:0".parse().unwrap(), ctx).unwrap();
        let (head, body) = http_get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 503"), "{head}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        // The DLQ endpoint escapes the panic payload into valid JSON.
        let (_, dlq_body) = http_get(server.local_addr(), "/dlq");
        assert!(dlq_body.contains("\\\"quoted\\\""), "{dlq_body}");
        assert!(dlq_body.contains("\\u000a"), "{dlq_body}");
        assert!(dlq_body.contains("\"kind\":\"panic\""), "{dlq_body}");
    }
}
