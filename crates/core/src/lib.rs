#![warn(missing_docs)]

//! `beehive-core` — a distributed SDN control platform with a programming
//! abstraction that is almost identical to a centralized controller.
//!
//! This crate implements the system described in *"Beehive: Towards a Simple
//! Abstraction for Scalable Software-Defined Networking"* (HotNets-XIII,
//! 2014):
//!
//! * **Applications** ([`App`]) are sets of functions triggered by
//!   asynchronous [`Message`]s. Functions declare the state entries they
//!   need; state lives in transactional dictionaries.
//! * The platform infers each message's **mapped cells** and guarantees that
//!   messages with intersecting cells are processed by the same **bee** — an
//!   exclusive owner of those cells — wherever in the cluster it lives.
//! * **Hives** ([`Hive`]) are controller instances; the cell→bee registry is
//!   replicated across hives with Raft ([`beehive_raft`]).
//! * Bees **migrate** live between hives; the platform **instruments**
//!   applications at runtime, **optimizes placement** with a greedy
//!   heuristic ([`optimizer`]), and produces **design feedback**
//!   ([`feedback`]).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use beehive_core::prelude::*;
//! use serde::{Serialize, Deserialize};
//!
//! // 1. Define messages.
//! #[derive(Debug, Clone, Serialize, Deserialize)]
//! struct Seen { host: String }
//! beehive_core::impl_message!(Seen);
//!
//! // 2. Define an app: count sightings per host, one cell per host.
//! let counter = App::builder("counter")
//!     .handle::<Seen>(
//!         |m| Mapped::cell("counts", &m.host),
//!         |m, ctx| {
//!             let n: u64 = ctx.get("counts", &m.host).map_err(|e| e.to_string())?.unwrap_or(0);
//!             ctx.put("counts", m.host.clone(), &(n + 1)).map_err(|e| e.to_string())?;
//!             Ok(())
//!         },
//!     )
//!     .build();
//!
//! // 3. Run a standalone hive.
//! let mut hive = Hive::new(
//!     HiveConfig::standalone(HiveId(1)),
//!     Arc::new(SystemClock::new()),
//!     Box::new(Loopback::new(HiveId(1))),
//! );
//! hive.install(counter);
//! hive.emit(Seen { host: "h1".into() });
//! hive.emit(Seen { host: "h1".into() });
//! hive.step_until_quiescent(100);
//!
//! let (bee, _) = hive.local_bees("counter")[0];
//! assert_eq!(hive.peek_state::<u64>("counter", bee, "counts", "h1"), Some(2));
//! ```

pub mod analytics;
pub mod app;
pub mod cell;
pub mod channel;
pub mod clock;
pub mod control;
pub mod error;
pub mod events;
mod executor;
pub mod feedback;
pub mod hive;
pub mod id;
pub mod introspect;
pub mod lifecycle;
pub mod message;
pub mod metrics;
pub mod optimizer;
pub mod outbox;
pub mod platform;
pub mod queen;
pub mod registry;
pub mod replication;
pub mod state;
pub mod supervision;
pub mod trace;
pub mod transport;

pub use analytics::{Analytics, AppLoad, ProvenanceRow};
pub use app::{App, AppBuilder, HandlerResult, MapSpec, RcvCtx};
pub use beehive_raft::{FsyncPolicy, StorageError};
pub use cell::{Cell, Mapped};
pub use channel::{
    ChannelDelivery, ChannelDelta, ChannelFrame, ChannelStats, ChannelTuning, ChannelWork,
    ReliableChannels,
};
pub use clock::{Clock, SimClock, SystemClock};
pub use control::{ControlMsg, MembershipOp};
pub use error::{Error, Result};
pub use events::{Event, EventJournal, EventKind};
pub use hive::{Hive, HiveConfig, HiveCounters, HiveHandle};
pub use id::{AppName, BeeId, HiveId};
pub use introspect::{render_metrics, StatusContext, StatusServer};
pub use lifecycle::{Lifecycle, LifecycleStage};
pub use message::{cast, Dst, Envelope, Message, MessageRegistry, Source, TypedMessage};
pub use metrics::{
    BeeStats, BeeStatsSnapshot, ExecutorStats, HiveMetrics, Instrumentation, LatencyHistogram,
    MsgLatency, WorkerStats, LATENCY_BUCKETS_US,
};
pub use outbox::{JournalEntry, Outbox, OutboxState};
pub use platform::{collector_app, optimizer_app, Tick, COLLECTOR_APP, OPTIMIZER_APP};
pub use queen::Delivery;
pub use registry::{RegistryCommand, RegistryEvent, RegistryOp, RegistryState};
pub use replication::{replicas_of, ShadowStore};
pub use state::{BeeState, Dict, JournalOp, Savepoint, SharedBytes, TxJournal, TxState};
pub use supervision::{
    backoff_delay_ms, DeadLetter, DeadLetterStore, FailureKind, HandlerFaults, OverflowPolicy,
};
pub use trace::{
    chrome_trace, chrome_trace_merged, TraceCollector, TraceContext, TraceHub, TraceSpan,
};
pub use transport::{
    Frame, FrameKind, Loopback, Transport, TransportCounters, TransportPreference,
    TransportSnapshot,
};

/// Common imports for application authors.
pub mod prelude {
    pub use crate::app::{App, HandlerResult, RcvCtx};
    pub use crate::cell::{Cell, Mapped};
    pub use crate::clock::{Clock, SimClock, SystemClock};
    pub use crate::hive::{Hive, HiveConfig, HiveHandle};
    pub use crate::id::{AppName, BeeId, HiveId};
    pub use crate::impl_message;
    pub use crate::message::{cast, Message, TypedMessage};
    pub use crate::platform::Tick;
    pub use crate::supervision::{DeadLetter, DeadLetterStore, FailureKind, OverflowPolicy};
    pub use crate::transport::Loopback;
}
