//! Cluster-membership lifecycle of a hive.
//!
//! Elastic membership (live join / drain) moves a hive through a small
//! state machine: `joining → active → draining → departed` (a seed member
//! starts directly at `active`). The current stage lives in a lock-free
//! [`Lifecycle`] cell shared between the hive's step loop (which drives the
//! transitions), the status server (which reports it on `/healthz`), and
//! the process signal handler (which requests a drain). The authoritative
//! membership transitions travel through the registry Raft log as
//! conf-change entries; this cell only mirrors the side states observers
//! care about.

use std::sync::atomic::{AtomicU8, Ordering};

/// Where a hive currently stands in the membership lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleStage {
    /// A full voter (or standalone hive) serving traffic normally.
    Active,
    /// Booted with `--join`: following the registry log as a learner,
    /// catching up before asking for promotion.
    Joining,
    /// Leaving the cluster: evacuating bees, flushing the channel outbox,
    /// stepping down voter → learner → removed. Not a failure state —
    /// `/healthz` reports it with a 200.
    Draining,
    /// Fully removed from the configuration; the process exits shortly.
    Departed,
}

impl LifecycleStage {
    /// Stable lower-case label (used on `/healthz` and in events).
    pub fn label(self) -> &'static str {
        match self {
            LifecycleStage::Active => "active",
            LifecycleStage::Joining => "joining",
            LifecycleStage::Draining => "draining",
            LifecycleStage::Departed => "departed",
        }
    }

    fn from_u8(v: u8) -> LifecycleStage {
        match v {
            1 => LifecycleStage::Joining,
            2 => LifecycleStage::Draining,
            3 => LifecycleStage::Departed,
            _ => LifecycleStage::Active,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            LifecycleStage::Active => 0,
            LifecycleStage::Joining => 1,
            LifecycleStage::Draining => 2,
            LifecycleStage::Departed => 3,
        }
    }
}

/// A shared, lock-free cell holding a hive's [`LifecycleStage`].
///
/// Cloneable via `Arc`; safe to read from the status server and signal
/// handlers while the hive's step loop writes it.
#[derive(Debug, Default)]
pub struct Lifecycle {
    stage: AtomicU8,
}

impl Lifecycle {
    /// A cell starting at `stage`.
    pub fn new(stage: LifecycleStage) -> Lifecycle {
        Lifecycle {
            stage: AtomicU8::new(stage.as_u8()),
        }
    }

    /// The current stage.
    pub fn stage(&self) -> LifecycleStage {
        LifecycleStage::from_u8(self.stage.load(Ordering::Relaxed))
    }

    /// Moves to `stage`.
    pub fn set(&self, stage: LifecycleStage) {
        self.stage.store(stage.as_u8(), Ordering::Relaxed);
    }

    /// True once the hive is draining or fully departed.
    pub fn is_leaving(&self) -> bool {
        matches!(
            self.stage(),
            LifecycleStage::Draining | LifecycleStage::Departed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_roundtrip_and_label() {
        for stage in [
            LifecycleStage::Active,
            LifecycleStage::Joining,
            LifecycleStage::Draining,
            LifecycleStage::Departed,
        ] {
            let cell = Lifecycle::new(stage);
            assert_eq!(cell.stage(), stage);
            assert_eq!(LifecycleStage::from_u8(stage.as_u8()), stage);
            assert!(!stage.label().is_empty());
        }
    }

    #[test]
    fn default_is_active_and_transitions_apply() {
        let cell = Lifecycle::default();
        assert_eq!(cell.stage(), LifecycleStage::Active);
        assert!(!cell.is_leaving());
        cell.set(LifecycleStage::Draining);
        assert!(cell.is_leaving());
        cell.set(LifecycleStage::Departed);
        assert_eq!(cell.stage(), LifecycleStage::Departed);
        assert!(cell.is_leaving());
    }
}
