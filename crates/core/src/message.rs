//! Asynchronous messages — the only way Beehive functions communicate.
//!
//! A message is any `'static` serde-serializable struct wired up with the
//! [`crate::impl_message!`] macro. Local deliveries pass `Arc<dyn Message>` without
//! serializing; remote deliveries encode through `beehive-wire` and are
//! revived on the receiving hive by its [`MessageRegistry`].

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::id::{AppName, BeeId, HiveId};
use crate::trace::TraceContext;

/// A Beehive message. Implement via [`crate::impl_message!`], not by hand.
pub trait Message: Any + Send + Sync + fmt::Debug {
    /// Stable name used to find decoders on remote hives.
    fn type_name(&self) -> &'static str;
    /// Serializes the payload for remote delivery.
    fn encode(&self) -> Result<Vec<u8>>;
    /// Size the payload would have on the wire (bandwidth accounting).
    fn encoded_len(&self) -> usize;
    /// Upcast for downcasting in typed handlers.
    fn as_any(&self) -> &dyn Any;
}

/// Implemented by the [`crate::impl_message!`] macro; enables registration of a
/// decoder and typed emission.
pub trait TypedMessage: Message + Sized {
    /// The type's wire name (same value [`Message::type_name`] returns).
    fn wire_name() -> &'static str;
    /// Decodes a payload produced by [`Message::encode`].
    fn decode(bytes: &[u8]) -> Result<Self>;
}

/// Wires a serde-serializable struct into the Beehive message system.
///
/// ```
/// use serde::{Serialize, Deserialize};
/// use beehive_core::impl_message;
///
/// #[derive(Debug, Clone, Serialize, Deserialize)]
/// pub struct SwitchJoined { pub switch: u64 }
/// impl_message!(SwitchJoined);
/// ```
#[macro_export]
macro_rules! impl_message {
    ($($ty:ty),+ $(,)?) => {$(
        impl $crate::message::Message for $ty {
            fn type_name(&self) -> &'static str {
                <$ty as $crate::message::TypedMessage>::wire_name()
            }
            fn encode(&self) -> $crate::error::Result<Vec<u8>> {
                ::beehive_wire::to_vec(self).map_err($crate::error::Error::from)
            }
            fn encoded_len(&self) -> usize {
                ::beehive_wire::encoded_len(self).unwrap_or(0)
            }
            fn as_any(&self) -> &dyn ::std::any::Any {
                self
            }
        }
        impl $crate::message::TypedMessage for $ty {
            fn wire_name() -> &'static str {
                ::std::any::type_name::<$ty>()
            }
            fn decode(bytes: &[u8]) -> $crate::error::Result<Self> {
                ::beehive_wire::from_slice(bytes).map_err($crate::error::Error::from)
            }
        }
    )+};
}

/// Downcasts a dynamic message to a concrete type.
pub fn cast<T: 'static>(msg: &dyn Message) -> Option<&T> {
    msg.as_any().downcast_ref::<T>()
}

/// Where a message came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Injected from outside the platform (IO channels, drivers, tests),
    /// tagged with the hive it entered through.
    External(HiveId),
    /// Emitted by a bee.
    Bee {
        /// The emitting bee.
        bee: BeeId,
        /// The hive the bee was on when it emitted.
        hive: HiveId,
    },
}

impl Source {
    /// The hive the message originated on.
    pub fn hive(&self) -> HiveId {
        match self {
            Source::External(h) => *h,
            Source::Bee { hive, .. } => *hive,
        }
    }

    /// The emitting bee, if any.
    pub fn bee(&self) -> Option<BeeId> {
        match self {
            Source::External(_) => None,
            Source::Bee { bee, .. } => Some(*bee),
        }
    }
}

/// Delivery target of an envelope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dst {
    /// Offer the message to every installed application's `map`.
    Broadcast,
    /// Offer only to one application.
    App(AppName),
    /// Deliver straight to a specific bee of an application (replies,
    /// post-mapping relays between hives).
    Bee {
        /// Owning application.
        app: AppName,
        /// Target bee.
        bee: BeeId,
        /// Pre-resolved handler index (post-mapping relays). `None` means
        /// "the unique handler for this message type" (replies).
        handler: Option<u16>,
        /// Registry fence: the number of registry events the sender had
        /// applied when it routed this message. The receiving hive defers
        /// delivery until it has applied at least as many, so a relayed
        /// message can never run against a pre-merge / pre-migration view
        /// of the colony. All hives apply the same registry log, so the
        /// counter is comparable across hives.
        fence: u64,
    },
}

/// A message in flight inside the platform.
#[derive(Clone)]
pub struct Envelope {
    /// The payload.
    pub msg: Arc<dyn Message>,
    /// Origin.
    pub src: Source,
    /// Target.
    pub dst: Dst,
    /// Causal trace context (propagated across emits and hives).
    pub trace: TraceContext,
    /// How many times a handler already attempted (and failed) this message.
    /// 0 on first delivery; the supervisor increments it on each redelivery
    /// and dead-letters the envelope once it exceeds
    /// `HiveConfig::max_redeliveries`. Survives the TCP hop.
    pub deliveries: u32,
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("type", &self.msg.type_name())
            .field("trace_id", &format_args!("{:#x}", self.trace.trace_id))
            .field("seq", &format_args!("{:#x}", self.trace.span_id))
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("deliveries", &self.deliveries)
            .finish()
    }
}

impl Envelope {
    /// An externally injected broadcast; starts a fresh causal trace.
    pub fn external(hive: HiveId, msg: Arc<dyn Message>) -> Self {
        Envelope {
            msg,
            src: Source::External(hive),
            dst: Dst::Broadcast,
            trace: TraceContext::root(hive),
            deliveries: 0,
        }
    }
}

/// The on-the-wire form of an [`Envelope`] for inter-hive relays.
#[derive(Debug, Serialize, Deserialize)]
pub struct WireEnvelope {
    /// Origin.
    pub src: Source,
    /// Target.
    pub dst: Dst,
    /// [`Message::type_name`] of the payload.
    pub type_name: String,
    /// Encoded payload.
    pub payload: Vec<u8>,
    /// Causal trace context. The enqueue stamp inside it is meaningful only
    /// on the sending hive and is cleared on decode.
    pub trace: TraceContext,
    /// Redelivery attempt count — survives the hop so a relayed poison
    /// message cannot reset its retry budget by crossing hives.
    pub deliveries: u32,
}

impl WireEnvelope {
    /// Encodes an envelope for the wire.
    pub fn from_envelope(env: &Envelope) -> Result<Vec<u8>> {
        let we = WireEnvelope {
            src: env.src,
            dst: env.dst.clone(),
            type_name: env.msg.type_name().to_string(),
            payload: env.msg.encode()?,
            trace: env.trace,
            deliveries: env.deliveries,
        };
        beehive_wire::to_vec(&we).map_err(Error::from)
    }

    /// Decodes wire bytes back into an envelope using `registry`'s decoders.
    /// The trace context survives the hop; its enqueue stamp is reset so the
    /// receiving hive re-stamps queue wait against its own clock.
    pub fn to_envelope(bytes: &[u8], registry: &MessageRegistry) -> Result<Envelope> {
        let we: WireEnvelope = beehive_wire::from_slice(bytes)?;
        let msg = registry.decode(&we.type_name, &we.payload)?;
        Ok(Envelope {
            msg,
            src: we.src,
            dst: we.dst,
            trace: we.trace.rewired(),
            deliveries: we.deliveries,
        })
    }
}

type DecodeFn = fn(&[u8]) -> Result<Arc<dyn Message>>;

/// Per-hive table of message decoders, populated as applications register
/// the message types they handle.
#[derive(Default)]
pub struct MessageRegistry {
    decoders: HashMap<&'static str, DecodeFn>,
}

impl MessageRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the decoder for `T`. Idempotent.
    pub fn register<T: TypedMessage>(&mut self) {
        fn decode_erased<T: TypedMessage>(bytes: &[u8]) -> Result<Arc<dyn Message>> {
            Ok(Arc::new(T::decode(bytes)?) as Arc<dyn Message>)
        }
        self.decoders.insert(T::wire_name(), decode_erased::<T>);
    }

    /// Decodes a payload by wire name.
    pub fn decode(&self, type_name: &str, payload: &[u8]) -> Result<Arc<dyn Message>> {
        let f = self
            .decoders
            .get(type_name)
            .ok_or_else(|| Error::UnknownMessageType(type_name.to_string()))?;
        f(payload)
    }

    /// Whether a decoder exists for `type_name`.
    pub fn knows(&self, type_name: &str) -> bool {
        self.decoders.contains_key(type_name)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.decoders.len()
    }

    /// Whether no decoders are registered.
    pub fn is_empty(&self) -> bool {
        self.decoders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Ping {
        n: u32,
    }
    impl_message!(Ping);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Pong {
        text: String,
    }
    impl_message!(Pong);

    #[test]
    fn typed_roundtrip_through_registry() {
        let mut reg = MessageRegistry::new();
        reg.register::<Ping>();
        let original = Ping { n: 9 };
        let bytes = original.encode().unwrap();
        let revived = reg.decode(Ping::wire_name(), &bytes).unwrap();
        assert_eq!(cast::<Ping>(revived.as_ref()), Some(&Ping { n: 9 }));
    }

    #[test]
    fn unknown_type_is_an_error() {
        let reg = MessageRegistry::new();
        let err = reg.decode("nope", &[]).unwrap_err();
        assert!(matches!(err, Error::UnknownMessageType(_)));
    }

    #[test]
    fn cast_rejects_wrong_type() {
        let msg: Arc<dyn Message> = Arc::new(Ping { n: 1 });
        assert!(cast::<Pong>(msg.as_ref()).is_none());
        assert!(cast::<Ping>(msg.as_ref()).is_some());
    }

    #[test]
    fn wire_envelope_roundtrip() {
        let mut reg = MessageRegistry::new();
        reg.register::<Pong>();
        let mut trace = TraceContext::root(HiveId(1));
        trace.enqueued_ms = 42; // sender-local stamp; must not survive the hop
        let env = Envelope {
            msg: Arc::new(Pong {
                text: "hello".into(),
            }),
            src: Source::Bee {
                bee: BeeId::new(HiveId(1), 2),
                hive: HiveId(1),
            },
            dst: Dst::App("router".into()),
            trace,
            deliveries: 2,
        };
        let bytes = WireEnvelope::from_envelope(&env).unwrap();
        let back = WireEnvelope::to_envelope(&bytes, &reg).unwrap();
        assert_eq!(back.src, env.src);
        assert_eq!(back.dst, env.dst);
        assert_eq!(cast::<Pong>(back.msg.as_ref()).unwrap().text, "hello");
        // Causal identity crosses the wire; the enqueue stamp does not.
        assert_eq!(back.trace.trace_id, trace.trace_id);
        assert_eq!(back.trace.span_id, trace.span_id);
        assert_eq!(back.trace.parent_span, trace.parent_span);
        assert_eq!(back.trace.enqueued_ms, 0);
        // The redelivery budget also crosses the wire.
        assert_eq!(back.deliveries, 2);
    }

    #[test]
    fn external_envelopes_start_fresh_traces() {
        let a = Envelope::external(HiveId(1), Arc::new(Ping { n: 1 }));
        let b = Envelope::external(HiveId(1), Arc::new(Ping { n: 2 }));
        assert_ne!(a.trace.trace_id, b.trace.trace_id);
        assert_eq!(a.trace.parent_span, 0);
        // The Debug impl names the trace so failures are attributable.
        let dbg = format!("{a:?}");
        assert!(dbg.contains("trace_id"), "{dbg}");
        assert!(dbg.contains("seq"), "{dbg}");
    }

    #[test]
    fn encoded_len_matches_encode() {
        let p = Pong { text: "xyz".into() };
        assert_eq!(p.encoded_len(), p.encode().unwrap().len());
    }

    #[test]
    fn source_accessors() {
        let s = Source::Bee {
            bee: BeeId::new(HiveId(2), 1),
            hive: HiveId(3),
        };
        assert_eq!(s.hive(), HiveId(3));
        assert_eq!(s.bee(), Some(BeeId::new(HiveId(2), 1)));
        assert_eq!(Source::External(HiveId(1)).bee(), None);
    }
}
