//! Runtime instrumentation (paper §3): per-bee resource consumption, message
//! exchange counts, and provenance (which input types produce which output
//! types). Collected locally on each hive and periodically aggregated on one
//! hive by the platform applications in [`crate::platform`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::id::{AppName, BeeId, HiveId};
use crate::supervision::FailureKind;

/// Counters for a single bee.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BeeStats {
    /// Messages delivered to this bee.
    pub msgs_in: u64,
    /// Messages emitted by this bee.
    pub msgs_out: u64,
    /// Wire bytes of delivered messages.
    pub bytes_in: u64,
    /// Wire bytes of emitted messages.
    pub bytes_out: u64,
    /// Nanoseconds spent in rcv functions.
    pub handler_nanos: u64,
    /// Handler invocations that returned an error (rolled-back transactions).
    pub errors: u64,
    /// Deliveries *from other bees*, broken down by the hive the sender was
    /// on — the optimizer's primary signal ("the majority of messages
    /// processed by B1 are from bees deployed on H2"). External inputs
    /// (timeouts, IO) are counted in `external_in`, not here, because they
    /// say nothing about inter-bee affinity.
    pub in_by_hive: BTreeMap<u32, u64>,
    /// Deliveries broken down by source bee.
    pub in_by_bee: BTreeMap<u64, u64>,
    /// Deliveries from external sources (timers, drivers' IO threads).
    pub external_in: u64,
}

impl BeeStats {
    /// Records a delivery from `src_hive`/`src_bee` of `bytes` wire bytes.
    pub fn record_in(&mut self, src_hive: HiveId, src_bee: Option<BeeId>, bytes: usize) {
        self.msgs_in += 1;
        self.bytes_in += bytes as u64;
        match src_bee {
            Some(b) => {
                *self.in_by_hive.entry(src_hive.0).or_insert(0) += 1;
                *self.in_by_bee.entry(b.0).or_insert(0) += 1;
            }
            None => self.external_in += 1,
        }
    }

    /// Records an emission of `bytes` wire bytes.
    pub fn record_out(&mut self, bytes: usize) {
        self.msgs_out += 1;
        self.bytes_out += bytes as u64;
    }

    /// The hive sending this bee the most messages, with its count and the
    /// total over all hives.
    pub fn dominant_source_hive(&self) -> Option<(HiveId, u64, u64)> {
        let total: u64 = self.in_by_hive.values().sum();
        let (&hive, &count) = self.in_by_hive.iter().max_by_key(|(_, &c)| c)?;
        Some((HiveId(hive), count, total))
    }

    /// Folds another stats delta into this one.
    pub fn merge(&mut self, other: &BeeStats) {
        self.msgs_in += other.msgs_in;
        self.msgs_out += other.msgs_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.handler_nanos += other.handler_nanos;
        self.errors += other.errors;
        self.external_in += other.external_in;
        for (h, c) in &other.in_by_hive {
            *self.in_by_hive.entry(*h).or_insert(0) += c;
        }
        for (b, c) in &other.in_by_bee {
            *self.in_by_bee.entry(*b).or_insert(0) += c;
        }
    }
}

/// Per-worker counters for the parallel executor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Bee batches this worker ran.
    pub batches: u64,
    /// Messages this worker processed.
    pub messages: u64,
    /// Wall nanoseconds spent running batches (busy time).
    pub busy_nanos: u64,
}

/// Executor-level counters: round/queue-depth shape plus per-worker load.
/// Empty (and omitted from analytics) when the hive runs sequentially.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutorStats {
    /// Parallel rounds executed.
    pub rounds: u64,
    /// Total bees fanned out across all rounds (sum of round queue depths).
    pub queued_bees: u64,
    /// Largest single-round queue depth observed.
    pub max_queue_depth: u64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl ExecutorStats {
    /// Records one parallel round that fanned out `queued` bees.
    pub fn record_round(&mut self, queued: u64) {
        self.rounds += 1;
        self.queued_bees += queued;
        self.max_queue_depth = self.max_queue_depth.max(queued);
    }

    /// Records one finished batch: `worker` processed `messages` messages in
    /// `busy_nanos` wall nanoseconds.
    pub fn record_batch(&mut self, worker: usize, messages: u64, busy_nanos: u64) {
        if self.workers.len() <= worker {
            self.workers.resize(worker + 1, WorkerStats::default());
        }
        let w = &mut self.workers[worker];
        w.batches += 1;
        w.messages += messages;
        w.busy_nanos += busy_nanos;
    }

    /// Folds another executor-stats delta into this one.
    pub fn merge(&mut self, other: &ExecutorStats) {
        self.rounds += other.rounds;
        self.queued_bees += other.queued_bees;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (i, w) in other.workers.iter().enumerate() {
            let dst = &mut self.workers[i];
            dst.batches += w.batches;
            dst.messages += w.messages;
            dst.busy_nanos += w.busy_nanos;
        }
    }

    /// Whether nothing was recorded (sequential execution).
    pub fn is_empty(&self) -> bool {
        self.rounds == 0 && self.workers.is_empty()
    }
}

/// Upper bounds (inclusive, microseconds) of the fixed latency-histogram
/// buckets, exponential from 50µs to 5s. A seventeenth overflow bucket
/// catches everything above the last bound.
pub const LATENCY_BUCKETS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Number of buckets in a [`LatencyHistogram`] (bounds + overflow).
pub const LATENCY_BUCKET_COUNT: usize = LATENCY_BUCKETS_US.len() + 1;

/// A fixed-bucket latency histogram in microseconds. Buckets are
/// non-cumulative (each observation lands in exactly one), so bucket counts
/// always sum to `count`; the Prometheus exposition re-accumulates them into
/// `le`-style cumulative buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket observation counts; index i counts observations within
    /// `LATENCY_BUCKETS_US[i]`, the last index counts overflows.
    pub buckets: [u64; LATENCY_BUCKET_COUNT],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in microseconds.
    pub sum_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKET_COUNT],
            count: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one observation of `us` microseconds.
    pub fn observe(&mut self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Folds another histogram delta into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The 99th-percentile latency in microseconds, as the upper bound of
    /// the bucket containing the p99 observation (overflow reports twice the
    /// largest bound). `None` when empty.
    pub fn p99_us(&self) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (self.count * 99).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(match LATENCY_BUCKETS_US.get(i) {
                    Some(&bound) => bound,
                    None => LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1] * 2,
                });
            }
        }
        None
    }
}

/// Queue-wait and handler-runtime histograms for one `(app, message type)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgLatency {
    /// Time spent in local dispatch/mailbox queues before the handler ran.
    pub queue_wait: LatencyHistogram,
    /// Time spent inside the rcv function.
    pub runtime: LatencyHistogram,
}

impl MsgLatency {
    /// Folds another delta into this one.
    pub fn merge(&mut self, other: &MsgLatency) {
        self.queue_wait.merge(&other.queue_wait);
        self.runtime.merge(&other.runtime);
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.queue_wait.is_empty() && self.runtime.is_empty()
    }
}

/// Key for provenance counters: within `app`, messages of `in_type` caused
/// emissions of `out_type`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvenanceKey {
    /// Application.
    pub app: AppName,
    /// Triggering message type.
    pub in_type: String,
    /// Emitted message type.
    pub out_type: String,
}

/// A hive's local instrumentation store.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Instrumentation {
    /// Stats per (app, bee).
    pub bees: BTreeMap<(AppName, u64), BeeStats>,
    /// Where each instrumented bee currently lives (this hive) and how many
    /// cells it owns.
    pub bee_cells: BTreeMap<u64, u64>,
    /// Provenance counters: how often `in_type` produced `out_type`.
    pub provenance: BTreeMap<ProvenanceKey, u64>,
    /// Deliveries per (app, message type) — the denominators for
    /// [`Instrumentation::provenance_ratios`].
    pub in_type_counts: BTreeMap<(AppName, String), u64>,
    /// Bees that are pinned to this hive (local singletons).
    pub pinned: std::collections::BTreeSet<u64>,
    /// Cumulative bee-to-bee message matrix: `(src_hive, dst_hive) → msgs`.
    /// Never reset by [`Instrumentation::take`]; this is what regenerates
    /// the paper's Figure 4a–c inter-hive traffic matrices (which include
    /// the diagonal: locally processed messages).
    pub msg_matrix: BTreeMap<(u32, u32), u64>,
    /// Parallel-executor counters (empty when running sequentially).
    pub executor: ExecutorStats,
    /// Queue-wait / handler-runtime histograms per (app, message type).
    pub latency: BTreeMap<(AppName, String), MsgLatency>,
    /// Handler failures by kind (delta): `[error, panic]`.
    pub handler_failures: [u64; 2],
    /// Redeliveries scheduled by the supervisor (delta).
    pub redeliveries: u64,
    /// Messages dead-lettered (delta; all [`FailureKind`]s).
    pub dead_letters: u64,
    /// Wire frames whose payload failed to decode (delta).
    pub decode_errors: u64,
    /// Bees currently quarantined on this hive (gauge; retained by
    /// [`Instrumentation::take`], it describes state, not a delta).
    pub quarantined: u64,
    /// Reliable-channel frames retransmitted after an ack timeout (delta).
    pub retransmits: u64,
    /// Duplicate frames suppressed by receiver-side dedup (delta).
    pub dups_suppressed: u64,
    /// Standalone ack frames emitted by the channel layer (delta;
    /// piggybacked acks ride data frames and are not counted).
    pub channel_acks: u64,
    /// Unacked envelopes currently buffered for resend across all peers
    /// (gauge; retained by [`Instrumentation::take`] like `quarantined`).
    pub outbox_depth: u64,
    /// Index the registry raft log has been compacted through (gauge;
    /// retained by [`Instrumentation::take`]).
    pub snapshot_index: u64,
    /// Applied entries ahead of the last durable snapshot (gauge; retained
    /// by [`Instrumentation::take`]).
    pub snapshot_lag: u64,
    /// Registry snapshots installed from a peer since the previous report
    /// (delta).
    pub snapshot_installs: u64,
    /// Torn journal tails truncated during durable-state recovery (delta).
    pub journal_torn_truncations: u64,
}

impl Instrumentation {
    /// Mutable stats for a bee.
    pub fn bee(&mut self, app: &str, bee: BeeId) -> &mut BeeStats {
        self.bees.entry((app.to_string(), bee.0)).or_default()
    }

    /// Records one bee-to-bee message for the cumulative matrix.
    pub fn record_matrix(&mut self, src_hive: HiveId, dst_hive: HiveId) {
        *self.msg_matrix.entry((src_hive.0, dst_hive.0)).or_insert(0) += 1;
    }

    /// Records a typed delivery (denominator for provenance ratios).
    pub fn record_in_type(&mut self, app: &str, in_type: &str) {
        *self
            .in_type_counts
            .entry((app.to_string(), in_type.to_string()))
            .or_insert(0) += 1;
    }

    /// Records one handler invocation's latencies for `(app, in_type)`:
    /// `wait_us` in local queues before the handler, `runtime_us` inside it.
    pub fn record_latency(&mut self, app: &str, in_type: &str, wait_us: u64, runtime_us: u64) {
        let lat = self
            .latency
            .entry((app.to_string(), in_type.to_string()))
            .or_default();
        lat.queue_wait.observe(wait_us);
        lat.runtime.observe(runtime_us);
    }

    /// Records one handler failure of `kind`. Admission failures
    /// (quarantine, mailbox overflow) don't run a handler and are visible
    /// through `dead_letters` instead.
    pub fn record_failure(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::Error => self.handler_failures[0] += 1,
            FailureKind::Panic => self.handler_failures[1] += 1,
            FailureKind::Quarantined | FailureKind::MailboxOverflow | FailureKind::PeerDeparted => {
            }
        }
    }

    /// Records that processing one `in_type` message emitted one `out_type`.
    pub fn record_provenance(&mut self, app: &str, in_type: &str, out_type: &str) {
        *self
            .provenance
            .entry(ProvenanceKey {
                app: app.to_string(),
                in_type: in_type.to_string(),
                out_type: out_type.to_string(),
            })
            .or_insert(0) += 1;
    }

    /// Folds a worker-produced instrumentation delta into this store
    /// (parallel executor check-in). Counters add; metadata (bee cell
    /// counts, pinned set) overwrites with the delta's fresher view.
    pub fn merge_delta(&mut self, delta: Instrumentation) {
        for (key, stats) in delta.bees {
            self.bees.entry(key).or_default().merge(&stats);
        }
        for (bee, cells) in delta.bee_cells {
            self.bee_cells.insert(bee, cells);
        }
        for (key, count) in delta.provenance {
            *self.provenance.entry(key).or_insert(0) += count;
        }
        for (key, count) in delta.in_type_counts {
            *self.in_type_counts.entry(key).or_insert(0) += count;
        }
        for (pair, count) in delta.msg_matrix {
            *self.msg_matrix.entry(pair).or_insert(0) += count;
        }
        for (key, lat) in delta.latency {
            self.latency.entry(key).or_default().merge(&lat);
        }
        self.pinned.extend(delta.pinned);
        self.executor.merge(&delta.executor);
        self.handler_failures[0] += delta.handler_failures[0];
        self.handler_failures[1] += delta.handler_failures[1];
        self.redeliveries += delta.redeliveries;
        self.dead_letters += delta.dead_letters;
        self.decode_errors += delta.decode_errors;
        self.retransmits += delta.retransmits;
        self.dups_suppressed += delta.dups_suppressed;
        self.channel_acks += delta.channel_acks;
        self.snapshot_installs += delta.snapshot_installs;
        self.journal_torn_truncations += delta.journal_torn_truncations;
        // Gauges: worker deltas always carry 0; the hive sets them directly.
        self.quarantined = self.quarantined.max(delta.quarantined);
        self.outbox_depth = self.outbox_depth.max(delta.outbox_depth);
        self.snapshot_index = self.snapshot_index.max(delta.snapshot_index);
        self.snapshot_lag = self.snapshot_lag.max(delta.snapshot_lag);
    }

    /// Takes the counter deltas, leaving the store empty. Metadata (pinned
    /// bees, colony sizes) is retained — it describes current state, not a
    /// delta.
    pub fn take(&mut self) -> Instrumentation {
        let taken = std::mem::take(self);
        self.pinned = taken.pinned.clone();
        self.bee_cells = taken.bee_cells.clone();
        self.msg_matrix = taken.msg_matrix.clone();
        self.quarantined = taken.quarantined;
        self.outbox_depth = taken.outbox_depth;
        self.snapshot_index = taken.snapshot_index;
        self.snapshot_lag = taken.snapshot_lag;
        taken
    }

    /// Probability-style provenance summary: for each (app, in, out), the
    /// fraction of `in_type` deliveries that produced an `out_type` emission.
    /// (The paper's example: "packet out messages are emitted … upon
    /// receiving 80% of packet in's".)
    pub fn provenance_ratios(&self) -> Vec<(ProvenanceKey, f64)> {
        self.provenance
            .iter()
            .map(|(k, &count)| {
                let denom = self
                    .in_type_counts
                    .get(&(k.app.clone(), k.in_type.clone()))
                    .copied()
                    .unwrap_or(0)
                    .max(1);
                (k.clone(), count as f64 / denom as f64)
            })
            .collect()
    }
}

/// One bee's stats snapshot inside a [`HiveMetrics`] report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeeStatsSnapshot {
    /// Application.
    pub app: AppName,
    /// The bee.
    pub bee: BeeId,
    /// The hive hosting it at snapshot time.
    pub hive: HiveId,
    /// Whether the bee is pinned (local singleton — never migrated).
    pub pinned: bool,
    /// Number of cells in its colony.
    pub cells: u64,
    /// The counters.
    pub stats: BeeStats,
}

/// The periodic per-hive metrics report, emitted by the collector app and
/// aggregated by the aggregator app (both in [`crate::platform`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiveMetrics {
    /// Reporting hive.
    pub hive: HiveId,
    /// Report sequence number.
    pub seq: u64,
    /// Virtual/real timestamp (ms).
    pub now_ms: u64,
    /// Per-bee deltas since the previous report.
    pub bees: Vec<BeeStatsSnapshot>,
    /// Provenance deltas.
    pub provenance: Vec<(ProvenanceKey, u64)>,
    /// Parallel-executor deltas (empty on sequential hives).
    pub executor: ExecutorStats,
    /// Latency-histogram deltas per (app, message type).
    pub latency: Vec<(AppName, String, MsgLatency)>,
    /// Handler failures by kind since the previous report: `[error, panic]`.
    pub handler_failures: [u64; 2],
    /// Redeliveries scheduled since the previous report.
    pub redeliveries: u64,
    /// Messages dead-lettered since the previous report.
    pub dead_letters: u64,
    /// Wire frames that failed to decode since the previous report.
    pub decode_errors: u64,
    /// Bees currently quarantined on this hive (gauge).
    pub quarantined: u64,
    /// Reliable-channel retransmissions since the previous report.
    pub retransmits: u64,
    /// Duplicate frames suppressed by dedup since the previous report.
    pub dups_suppressed: u64,
    /// Standalone channel acks emitted since the previous report.
    pub channel_acks: u64,
    /// Unacked envelopes buffered for resend on this hive (gauge).
    pub outbox_depth: u64,
    /// Index the registry raft log is compacted through (gauge).
    pub snapshot_index: u64,
    /// Applied entries ahead of the last durable snapshot (gauge).
    pub snapshot_lag: u64,
    /// Registry snapshots installed from a peer since the previous report.
    pub snapshot_installs: u64,
    /// Torn journal tails truncated during recovery since the previous
    /// report.
    pub journal_torn_truncations: u64,
}
crate::impl_message!(HiveMetrics);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_dominant_hive() {
        let mut s = BeeStats::default();
        let b = |h: u32| Some(BeeId::new(HiveId(h), 1));
        s.record_in(HiveId(1), b(1), 100);
        s.record_in(HiveId(2), b(2), 50);
        s.record_in(HiveId(2), b(2), 50);
        // External inputs (timers) are not part of the affinity signal.
        s.record_in(HiveId(1), None, 10);
        assert_eq!(s.msgs_in, 4);
        assert_eq!(s.bytes_in, 210);
        assert_eq!(s.external_in, 1);
        let (hive, count, total) = s.dominant_source_hive().unwrap();
        assert_eq!(hive, HiveId(2));
        assert_eq!(count, 2);
        assert_eq!(total, 3);
    }

    #[test]
    fn merge_accumulates() {
        let src = Some(BeeId::new(HiveId(1), 9));
        let mut a = BeeStats::default();
        a.record_in(HiveId(1), src, 10);
        let mut b = BeeStats::default();
        b.record_in(HiveId(1), src, 20);
        b.record_out(5);
        a.merge(&b);
        assert_eq!(a.msgs_in, 2);
        assert_eq!(a.bytes_in, 30);
        assert_eq!(a.msgs_out, 1);
        assert_eq!(a.in_by_hive[&1], 2);
    }

    #[test]
    fn executor_stats_record_and_merge() {
        let mut a = ExecutorStats::default();
        assert!(a.is_empty());
        a.record_round(3);
        a.record_batch(1, 10, 500);
        a.record_batch(0, 4, 200);
        assert_eq!(a.rounds, 1);
        assert_eq!(a.max_queue_depth, 3);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[1].messages, 10);
        let mut b = ExecutorStats::default();
        b.record_round(7);
        b.record_batch(2, 1, 9);
        a.merge(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.queued_bees, 10);
        assert_eq!(a.max_queue_depth, 7);
        assert_eq!(a.workers.len(), 3);
        assert_eq!(a.workers[2].batches, 1);
    }

    #[test]
    fn merge_delta_accumulates_counters() {
        let mut base = Instrumentation::default();
        base.bee("te", BeeId::new(HiveId(1), 1))
            .record_in(HiveId(1), None, 8);
        base.record_in_type("te", "PacketIn");
        let mut delta = Instrumentation::default();
        delta
            .bee("te", BeeId::new(HiveId(1), 1))
            .record_in(HiveId(1), None, 4);
        delta.record_in_type("te", "PacketIn");
        delta.record_provenance("te", "PacketIn", "PacketOut");
        delta.bee_cells.insert(1, 5);
        delta.executor.record_batch(0, 2, 100);
        base.merge_delta(delta);
        assert_eq!(base.bees[&("te".to_string(), 1)].msgs_in, 2);
        assert_eq!(
            base.in_type_counts[&("te".to_string(), "PacketIn".to_string())],
            2
        );
        assert_eq!(base.bee_cells[&1], 5);
        assert_eq!(base.executor.workers[0].messages, 2);
    }

    #[test]
    fn histogram_observe_merge_p99() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p99_us(), None);
        h.observe(0); // below the smallest bound
        h.observe(50); // exactly on a bound → that bucket
        h.observe(51); // just above → next bucket
        h.observe(10_000_000); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_us, 10_000_101);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[LATENCY_BUCKET_COUNT - 1], 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        // p99 of 4 observations is the max → overflow bucket (2× last bound).
        assert_eq!(h.p99_us(), Some(10_000_000));
        let mut other = LatencyHistogram::default();
        for _ in 0..396 {
            other.observe(80);
        }
        other.merge(&h);
        assert_eq!(other.count, 400);
        assert_eq!(other.buckets.iter().sum::<u64>(), 400);
        // 396/400 = 99% of observations are ≤ 100µs: p99 lands there now.
        assert_eq!(other.p99_us(), Some(100));
    }

    #[test]
    fn latency_deltas_flow_and_reset() {
        let mut inst = Instrumentation::default();
        inst.record_latency("te", "StatReply", 200, 900);
        inst.record_latency("te", "StatReply", 70_000, 3_000);
        let taken = inst.take();
        let lat = &taken.latency[&("te".to_string(), "StatReply".to_string())];
        assert_eq!(lat.queue_wait.count, 2);
        assert_eq!(lat.runtime.count, 2);
        assert!(
            inst.latency.is_empty(),
            "take leaves an empty latency delta"
        );
        let mut agg = Instrumentation::default();
        agg.merge_delta(taken);
        assert_eq!(
            agg.latency[&("te".to_string(), "StatReply".to_string())]
                .runtime
                .count,
            2
        );
    }

    /// The collector drains with `take` and the aggregator folds with
    /// `merge_delta`; across two collection cycles every observation must be
    /// counted exactly once.
    #[test]
    fn two_collection_cycles_never_double_count() {
        let bee = BeeId::new(HiveId(1), 1);
        let mut store = Instrumentation::default();
        let mut agg = Instrumentation::default();

        // Cycle 1: 3 deliveries, one provenance emission, one latency sample.
        for _ in 0..3 {
            store.bee("te", bee).record_in(HiveId(2), Some(bee), 10);
        }
        store.record_in_type("te", "PacketIn");
        store.record_provenance("te", "PacketIn", "PacketOut");
        store.record_latency("te", "PacketIn", 100, 1_000);
        store.pinned.insert(bee.0);
        store.bee_cells.insert(bee.0, 4);
        agg.merge_delta(store.take());

        // Cycle 2: 2 more deliveries and another latency sample.
        for _ in 0..2 {
            store.bee("te", bee).record_in(HiveId(2), Some(bee), 10);
        }
        store.record_latency("te", "PacketIn", 100, 1_000);
        agg.merge_delta(store.take());

        let key = ("te".to_string(), bee.0);
        assert_eq!(agg.bees[&key].msgs_in, 5, "3 + 2, no replay of cycle 1");
        assert_eq!(agg.bees[&key].bytes_in, 50);
        assert_eq!(agg.bees[&key].in_by_hive[&2], 5);
        assert_eq!(
            agg.provenance.values().copied().sum::<u64>(),
            1,
            "provenance from cycle 1 reported exactly once"
        );
        let lat = &agg.latency[&("te".to_string(), "PacketIn".to_string())];
        assert_eq!(lat.queue_wait.count, 2, "one sample per cycle");
        assert_eq!(lat.runtime.count, 2);
        // Metadata survives in the store (it describes state, not a delta)…
        assert!(store.pinned.contains(&bee.0));
        assert_eq!(store.bee_cells[&bee.0], 4);
        // …and the second take carried no stale counters.
        assert!(store.bees.is_empty());
    }

    /// `BeeStats::merge` on its own is additive, so merging two disjoint
    /// windows equals recording them into one stats object directly.
    #[test]
    fn bee_stats_merge_equals_direct_recording() {
        let src = Some(BeeId::new(HiveId(3), 7));
        let mut w1 = BeeStats::default();
        w1.record_in(HiveId(3), src, 10);
        w1.record_out(4);
        let mut w2 = BeeStats::default();
        w2.record_in(HiveId(3), src, 20);
        w2.record_in(HiveId(1), None, 5);
        let mut merged = BeeStats::default();
        merged.merge(&w1);
        merged.merge(&w2);
        let mut direct = BeeStats::default();
        direct.record_in(HiveId(3), src, 10);
        direct.record_out(4);
        direct.record_in(HiveId(3), src, 20);
        direct.record_in(HiveId(1), None, 5);
        assert_eq!(merged, direct);
    }

    #[test]
    fn failure_counters_flow_and_the_gauge_is_retained() {
        let mut inst = Instrumentation::default();
        inst.record_failure(FailureKind::Error);
        inst.record_failure(FailureKind::Panic);
        inst.record_failure(FailureKind::Panic);
        // Admission failures never count as handler failures.
        inst.record_failure(FailureKind::Quarantined);
        inst.record_failure(FailureKind::MailboxOverflow);
        inst.redeliveries = 4;
        inst.dead_letters = 2;
        inst.decode_errors = 1;
        inst.quarantined = 3;
        let taken = inst.take();
        assert_eq!(taken.handler_failures, [1, 2]);
        assert_eq!(taken.redeliveries, 4);
        assert_eq!(taken.dead_letters, 2);
        assert_eq!(taken.decode_errors, 1);
        // Deltas reset; the quarantine gauge survives the take.
        assert_eq!(inst.handler_failures, [0, 0]);
        assert_eq!(inst.redeliveries, 0);
        assert_eq!(inst.quarantined, 3);
        let mut agg = Instrumentation::default();
        agg.merge_delta(taken);
        agg.merge_delta(Instrumentation {
            handler_failures: [0, 1],
            ..Default::default()
        });
        assert_eq!(agg.handler_failures, [1, 3]);
        assert_eq!(agg.dead_letters, 2);
        assert_eq!(agg.quarantined, 3, "gauge merges by max, not sum");
    }

    #[test]
    fn channel_counters_flow_and_the_depth_gauge_is_retained() {
        let mut inst = Instrumentation::default();
        inst.retransmits = 3;
        inst.dups_suppressed = 5;
        inst.channel_acks = 2;
        inst.outbox_depth = 7;
        let taken = inst.take();
        assert_eq!(taken.retransmits, 3);
        assert_eq!(taken.dups_suppressed, 5);
        assert_eq!(taken.channel_acks, 2);
        // Deltas reset; the depth gauge survives the take.
        assert_eq!(inst.retransmits, 0);
        assert_eq!(inst.dups_suppressed, 0);
        assert_eq!(inst.outbox_depth, 7);
        let mut agg = Instrumentation::default();
        agg.merge_delta(taken);
        agg.merge_delta(Instrumentation {
            retransmits: 1,
            outbox_depth: 4,
            ..Default::default()
        });
        assert_eq!(agg.retransmits, 4);
        assert_eq!(agg.dups_suppressed, 5);
        assert_eq!(agg.outbox_depth, 7, "gauge merges by max, not sum");
    }

    #[test]
    fn snapshot_counters_flow_and_the_gauges_are_retained() {
        let mut inst = Instrumentation::default();
        inst.snapshot_index = 40;
        inst.snapshot_lag = 3;
        inst.snapshot_installs = 2;
        inst.journal_torn_truncations = 1;
        let taken = inst.take();
        assert_eq!(taken.snapshot_installs, 2);
        assert_eq!(taken.journal_torn_truncations, 1);
        // Deltas reset; the compaction gauges survive the take.
        assert_eq!(inst.snapshot_installs, 0);
        assert_eq!(inst.journal_torn_truncations, 0);
        assert_eq!(inst.snapshot_index, 40);
        assert_eq!(inst.snapshot_lag, 3);
        let mut agg = Instrumentation::default();
        agg.merge_delta(taken);
        agg.merge_delta(Instrumentation {
            snapshot_index: 24,
            snapshot_installs: 1,
            ..Default::default()
        });
        assert_eq!(agg.snapshot_installs, 3);
        assert_eq!(agg.journal_torn_truncations, 1);
        assert_eq!(agg.snapshot_index, 40, "gauge merges by max, not sum");
    }

    #[test]
    fn take_resets_store() {
        let mut inst = Instrumentation::default();
        inst.bee("te", BeeId::new(HiveId(1), 1))
            .record_in(HiveId(1), None, 8);
        inst.record_provenance("te", "StatReply", "FlowMod");
        let taken = inst.take();
        assert_eq!(taken.bees.len(), 1);
        assert_eq!(taken.provenance.len(), 1);
        assert!(inst.bees.is_empty());
        assert!(inst.provenance.is_empty());
    }
}
