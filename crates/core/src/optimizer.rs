//! The greedy placement heuristic (paper §3, "On Optimal Placement").
//!
//! Finding the optimal placement of bees is NP-hard (facility location
//! reduces to it), so Beehive migrates a bee `B` from `H1` to `H2` when the
//! majority of the messages `B` processes come from bees on `H2` and `H2`
//! has capacity. The decision logic is a pure function here; the
//! [`crate::platform`] aggregator app feeds it and issues the migrations.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::id::{AppName, BeeId, HiveId};

/// Aggregated load of one bee, as seen by the optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeeLoad {
    /// Application.
    pub app: AppName,
    /// The bee.
    pub bee: BeeId,
    /// Where it currently lives.
    pub hive: HiveId,
    /// Pinned bees (singletons) never move.
    pub pinned: bool,
    /// Number of cells in the colony (weight for capacity checks).
    pub cells: u64,
    /// Messages received, by source hive.
    pub in_by_hive: BTreeMap<u32, u64>,
    /// p99 handler runtime of the bee's application in microseconds
    /// (0 = no latency data). Hot apps are placed first so they win
    /// capacity-constrained moves.
    pub p99_runtime_us: u64,
}

/// Optimizer tunables.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Required fraction of a bee's inbound messages from the target hive
    /// (strictly more than this). The paper uses "the majority": 0.5.
    pub majority_threshold: f64,
    /// Minimum number of observed messages before a bee is considered
    /// (avoids migrating on noise).
    pub min_messages: u64,
    /// Maximum bees a hive may host (`None` = unbounded).
    pub max_bees_per_hive: Option<usize>,
    /// Applications that must never be migrated (platform apps by default).
    pub frozen_apps: Vec<AppName>,
    /// Hives leaving the cluster: never a migration target, and every
    /// migratable bee still hosted on one is evacuated regardless of the
    /// traffic-majority and `min_messages` thresholds.
    pub draining: Vec<u32>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            majority_threshold: 0.5,
            min_messages: 10,
            max_bees_per_hive: None,
            frozen_apps: vec![],
            draining: vec![],
        }
    }
}

/// A migration decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Application.
    pub app: AppName,
    /// The bee to move.
    pub bee: BeeId,
    /// Where it currently lives.
    pub from: HiveId,
    /// Where to move it.
    pub to: HiveId,
}

/// Applies the greedy heuristic to a set of bee loads, producing migrations.
///
/// Deterministic: bees are considered by descending p99 handler runtime
/// (latency-hot apps claim scarce capacity first), then `(app, bee)` order;
/// capacity is accounted as decisions accumulate. Bees hosted on a hive in
/// [`OptimizerConfig::draining`] are evacuated unconditionally; everyone
/// else follows the traffic-majority rule, never targeting a draining hive.
pub fn plan_migrations(
    loads: &[BeeLoad],
    current_bees_per_hive: &BTreeMap<u32, usize>,
    cfg: &OptimizerConfig,
) -> Vec<MigrationPlan> {
    let mut occupancy = current_bees_per_hive.clone();
    let mut plans = Vec::new();

    let mut sorted: Vec<&BeeLoad> = loads.iter().collect();
    sorted.sort_by(|a, b| {
        b.p99_runtime_us
            .cmp(&a.p99_runtime_us)
            .then_with(|| (&a.app, a.bee).cmp(&(&b.app, b.bee)))
    });

    for load in sorted {
        if load.pinned || cfg.frozen_apps.contains(&load.app) || load.app.starts_with("beehive.") {
            continue;
        }
        let target = if cfg.draining.contains(&load.hive.0) {
            evacuation_target(load, &occupancy, cfg)
        } else {
            affinity_target(load, &occupancy, cfg)
        };
        let Some(to) = target else {
            continue;
        };
        *occupancy.entry(to).or_insert(0) += 1;
        if let Some(o) = occupancy.get_mut(&load.hive.0) {
            *o = o.saturating_sub(1);
        }
        plans.push(MigrationPlan {
            app: load.app.clone(),
            bee: load.bee,
            from: load.hive,
            to: HiveId(to),
        });
    }
    plans
}

/// The paper's majority-traffic move for a normally placed bee, if any.
fn affinity_target(
    load: &BeeLoad,
    occupancy: &BTreeMap<u32, usize>,
    cfg: &OptimizerConfig,
) -> Option<u32> {
    let total: u64 = load.in_by_hive.values().sum();
    if total < cfg.min_messages {
        return None;
    }
    let (&best_hive, &best_count) = load
        .in_by_hive
        .iter()
        .max_by_key(|(h, c)| (**c, std::cmp::Reverse(**h)))?;
    if HiveId(best_hive) == load.hive || cfg.draining.contains(&best_hive) {
        return None;
    }
    if (best_count as f64) <= cfg.majority_threshold * total as f64 {
        return None;
    }
    if let Some(cap) = cfg.max_bees_per_hive {
        if occupancy.get(&best_hive).copied().unwrap_or(0) >= cap {
            return None;
        }
    }
    Some(best_hive)
}

/// The evacuation move for a bee on a draining hive: its majority traffic
/// source if that hive survives and has room, otherwise the least-occupied
/// survivor. Capacity is a preference here rather than a veto — the drain
/// must complete even when every survivor is nominally full.
fn evacuation_target(
    load: &BeeLoad,
    occupancy: &BTreeMap<u32, usize>,
    cfg: &OptimizerConfig,
) -> Option<u32> {
    let survives = |h: u32| h != load.hive.0 && !cfg.draining.contains(&h);
    if let Some((&best, _)) = load
        .in_by_hive
        .iter()
        .filter(|(h, _)| survives(**h))
        .max_by_key(|(h, c)| (**c, std::cmp::Reverse(**h)))
    {
        let under_cap = match cfg.max_bees_per_hive {
            Some(cap) => occupancy.get(&best).copied().unwrap_or(0) < cap,
            None => true,
        };
        if under_cap {
            return Some(best);
        }
    }
    occupancy
        .keys()
        .copied()
        .filter(|&h| survives(h))
        .min_by_key(|&h| (occupancy.get(&h).copied().unwrap_or(0), h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(app: &str, bee: u32, hive: u32, sources: &[(u32, u64)]) -> BeeLoad {
        BeeLoad {
            app: app.to_string(),
            bee: BeeId::new(HiveId(1), bee),
            hive: HiveId(hive),
            pinned: false,
            cells: 1,
            in_by_hive: sources.iter().copied().collect(),
            p99_runtime_us: 0,
        }
    }

    #[test]
    fn migrates_to_majority_source() {
        let loads = vec![load("te", 1, 1, &[(1, 2), (7, 98)])];
        let plans = plan_migrations(&loads, &BTreeMap::new(), &OptimizerConfig::default());
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].to, HiveId(7));
        assert_eq!(plans[0].from, HiveId(1));
    }

    #[test]
    fn stays_when_majority_is_local() {
        let loads = vec![load("te", 1, 1, &[(1, 90), (7, 10)])];
        assert!(plan_migrations(&loads, &BTreeMap::new(), &OptimizerConfig::default()).is_empty());
    }

    #[test]
    fn no_migration_without_strict_majority() {
        // Exactly half is not a majority.
        let loads = vec![load("te", 1, 1, &[(1, 50), (7, 50)])];
        assert!(plan_migrations(&loads, &BTreeMap::new(), &OptimizerConfig::default()).is_empty());
    }

    #[test]
    fn respects_min_messages() {
        let loads = vec![load("te", 1, 1, &[(7, 5)])];
        let cfg = OptimizerConfig {
            min_messages: 10,
            ..Default::default()
        };
        assert!(plan_migrations(&loads, &BTreeMap::new(), &cfg).is_empty());
        let cfg = OptimizerConfig {
            min_messages: 5,
            ..Default::default()
        };
        assert_eq!(plan_migrations(&loads, &BTreeMap::new(), &cfg).len(), 1);
    }

    #[test]
    fn pinned_and_platform_apps_never_move() {
        let mut pinned = load("te", 1, 1, &[(7, 100)]);
        pinned.pinned = true;
        let platform = load("beehive.optimizer", 2, 1, &[(7, 100)]);
        assert!(plan_migrations(
            &[pinned, platform],
            &BTreeMap::new(),
            &OptimizerConfig::default()
        )
        .is_empty());
    }

    #[test]
    fn capacity_limits_are_enforced_incrementally() {
        let loads = vec![load("te", 1, 1, &[(7, 100)]), load("te", 2, 1, &[(7, 100)])];
        let mut occupancy = BTreeMap::new();
        occupancy.insert(7u32, 0usize);
        let cfg = OptimizerConfig {
            max_bees_per_hive: Some(1),
            ..Default::default()
        };
        let plans = plan_migrations(&loads, &occupancy, &cfg);
        assert_eq!(
            plans.len(),
            1,
            "second migration must be blocked by capacity"
        );
    }

    #[test]
    fn frozen_apps_are_skipped() {
        let loads = vec![load("driver", 1, 1, &[(7, 100)])];
        let cfg = OptimizerConfig {
            frozen_apps: vec!["driver".into()],
            ..Default::default()
        };
        assert!(plan_migrations(&loads, &BTreeMap::new(), &cfg).is_empty());
    }

    #[test]
    fn deterministic_order() {
        let loads = vec![load("te", 2, 1, &[(7, 100)]), load("te", 1, 1, &[(7, 100)])];
        let plans = plan_migrations(&loads, &BTreeMap::new(), &OptimizerConfig::default());
        assert_eq!(plans[0].bee, BeeId::new(HiveId(1), 1));
        assert_eq!(plans[1].bee, BeeId::new(HiveId(1), 2));
    }

    #[test]
    fn draining_hive_is_evacuated_unconditionally() {
        // Bee on draining hive 1 with almost no traffic: still evacuated,
        // to its (surviving) majority source.
        let loads = vec![load("te", 1, 1, &[(7, 2)])];
        let cfg = OptimizerConfig {
            draining: vec![1],
            ..Default::default()
        };
        let plans = plan_migrations(&loads, &BTreeMap::new(), &cfg);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].from, HiveId(1));
        assert_eq!(plans[0].to, HiveId(7));
    }

    #[test]
    fn evacuation_falls_back_to_least_occupied_survivor() {
        // No observed traffic at all: the evacuation target comes from the
        // occupancy map — the least-occupied non-draining hive.
        let loads = vec![load("te", 1, 1, &[])];
        let mut occupancy = BTreeMap::new();
        occupancy.insert(1u32, 5usize);
        occupancy.insert(2u32, 3usize);
        occupancy.insert(3u32, 1usize);
        let cfg = OptimizerConfig {
            draining: vec![1],
            ..Default::default()
        };
        let plans = plan_migrations(&loads, &occupancy, &cfg);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].to, HiveId(3));
    }

    #[test]
    fn draining_hive_is_never_a_target() {
        // Majority source is draining: the bee stays put.
        let loads = vec![load("te", 1, 1, &[(7, 100)])];
        let cfg = OptimizerConfig {
            draining: vec![7],
            ..Default::default()
        };
        assert!(plan_migrations(&loads, &BTreeMap::new(), &cfg).is_empty());
    }

    #[test]
    fn latency_hot_apps_win_scarce_capacity() {
        // "cold" sorts before "hot" alphabetically, but hot's p99 must let it
        // claim the single slot on hive 7 first.
        let mut hot = load("hot", 1, 1, &[(7, 100)]);
        hot.p99_runtime_us = 5_000;
        let cold = load("cold", 1, 1, &[(7, 100)]);
        let mut occupancy = BTreeMap::new();
        occupancy.insert(7u32, 0usize);
        let cfg = OptimizerConfig {
            max_bees_per_hive: Some(1),
            ..Default::default()
        };
        let plans = plan_migrations(&[hot, cold], &occupancy, &cfg);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].app, "hot");
    }
}
