//! Durable outbox journal backing the reliable channel layer
//! ([`crate::channel`]).
//!
//! Every channel-relevant event — an application envelope handed to the
//! channel, a cumulative ack received, a frame delivered locally — is
//! appended to a per-hive journal file in the hive's storage directory
//! (the same directory the registry Raft state persists to). On restart the
//! journal is replayed into an [`OutboxState`]: unacked envelopes re-enter
//! the resend buffer (at-least-once across crashes), and the receive-side
//! dedup state is restored so redelivered envelopes are suppressed instead
//! of double-applied.
//!
//! The format is a flat sequence of checksummed
//! `[u32 length][u64 fnv1a][beehive-wire bytes]` records
//! ([`beehive_wire::record`]). Appends go straight to the file descriptor
//! (no userspace buffering), so a SIGKILLed process loses at most the
//! record being written. Recovery follows the durability contract
//! (DESIGN.md §3.15): a torn tail — a crash mid-append — is truncated off
//! and counted, while interior corruption (a flipped bit inside a verified
//! prefix) fails the open with `InvalidData` so the hive halts instead of
//! silently diverging from its peers. Compaction rewrites the journal as a
//! state snapshot (atomic tmp + rename) once enough incremental records
//! accumulate.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use beehive_wire::record::{encode_record, scan_records};

use serde::{Deserialize, Serialize};

/// One durable record of the channel journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// This hive's channel epoch (stamped once at channel creation and
    /// preserved by compaction; receivers use it to tell a durable restart
    /// from an amnesiac one).
    Epoch {
        /// The epoch value.
        epoch: u64,
    },
    /// An application envelope was sequenced toward peer `to`. Journaled
    /// *before* the frame reaches the transport, so the durable `next_seq`
    /// never lags what a receiver may have seen.
    Send {
        /// Destination hive.
        to: u32,
        /// Per-peer monotonic sequence number.
        seq: u64,
        /// Serialized [`crate::message::WireEnvelope`].
        env: Vec<u8>,
    },
    /// Peer `to` cumulatively acknowledged every sequence up to `upto`.
    Acked {
        /// The acking peer.
        to: u32,
        /// Highest contiguous acknowledged sequence.
        upto: u64,
    },
    /// Frame `seq` of peer `from` (in its epoch `epoch`) was delivered to
    /// the local dispatcher. Journaled at delivery time — before the
    /// handler runs — so a crash-restart suppresses the retransmission
    /// instead of double-applying it.
    Delivered {
        /// The sending peer.
        from: u32,
        /// The sender's channel epoch.
        epoch: u64,
        /// The delivered sequence number.
        seq: u64,
    },
    /// Receive-side state for `from` was reset because its sender restarted
    /// with a newer epoch; `retired` frames delivered under the old epoch
    /// fold into the retired accumulator (keeps delivery stats monotonic).
    RecvReset {
        /// The sending peer.
        from: u32,
        /// The new epoch.
        epoch: u64,
        /// Frames delivered under the replaced epoch.
        retired: u64,
    },
    /// Compaction summary of one peer's send-side state (`Send` records for
    /// the still-unacked envelopes follow separately).
    SendState {
        /// The peer.
        to: u32,
        /// Next sequence to assign.
        next_seq: u64,
        /// Highest contiguous acknowledged sequence.
        acked: u64,
    },
    /// Compaction summary of one peer's receive-side dedup state.
    RecvState {
        /// The sending peer.
        from: u32,
        /// The sender's epoch being tracked.
        epoch: u64,
        /// Contiguous delivered prefix.
        last_delivered: u64,
        /// Out-of-order sequences already delivered.
        seen_ahead: Vec<u64>,
        /// Frames delivered under earlier epochs of this peer.
        retired: u64,
    },
    /// Peer `peer` left the cluster: its send/recv state was dropped and its
    /// counters folded into the channel-wide retirement accumulators so the
    /// cumulative stats stay monotonic. `expired` counts the unacked
    /// envelopes that will never be delivered (dead-lettered by the hive).
    /// Compaction re-emits one cumulative record with `peer = 0`.
    PeerRetired {
        /// The departed peer (0 for the compaction accumulator record).
        peer: u32,
        /// Envelopes that had been sequenced toward the peer.
        sent: u64,
        /// Envelopes that had been delivered from the peer.
        delivered: u64,
        /// Unacked envelopes abandoned (returned for dead-lettering).
        expired: u64,
    },
}

/// Recovered send-side state for one peer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SendRecovery {
    /// Next sequence to assign.
    pub next_seq: u64,
    /// Highest contiguous acknowledged sequence.
    pub acked: u64,
    /// Unacked envelopes by sequence (replayed into the resend buffer).
    pub unacked: BTreeMap<u64, Vec<u8>>,
}

/// Recovered receive-side dedup state for one peer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecvRecovery {
    /// The sender's epoch being tracked.
    pub epoch: u64,
    /// Contiguous delivered prefix.
    pub last_delivered: u64,
    /// Out-of-order sequences already delivered.
    pub seen_ahead: BTreeSet<u64>,
    /// Frames delivered under earlier epochs of this peer.
    pub retired: u64,
}

/// Everything a journal replay recovers.
#[derive(Debug, Clone, Default)]
pub struct OutboxState {
    /// This hive's channel epoch, if the journal recorded one.
    pub epoch: Option<u64>,
    /// Send-side state per peer.
    pub send: BTreeMap<u32, SendRecovery>,
    /// Receive-side state per peer.
    pub recv: BTreeMap<u32, RecvRecovery>,
    /// Envelopes sequenced toward peers retired since (membership removal).
    pub retired_sent: u64,
    /// Envelopes delivered from peers retired since.
    pub retired_delivered: u64,
    /// Unacked envelopes abandoned when their peer was retired.
    pub expired: u64,
    /// Torn tail records discarded (and truncated off the file) during this
    /// recovery: each one is a crash mid-append whose record never became
    /// durable. Surfaced as `beehive_journal_torn_truncations_total`.
    pub torn_truncations: u64,
}

impl OutboxState {
    fn apply(&mut self, entry: JournalEntry) {
        match entry {
            JournalEntry::Epoch { epoch } => self.epoch = Some(epoch),
            JournalEntry::Send { to, seq, env } => {
                let s = self.send.entry(to).or_default();
                s.next_seq = s.next_seq.max(seq + 1);
                if seq > s.acked {
                    s.unacked.insert(seq, env);
                }
            }
            JournalEntry::Acked { to, upto } => {
                let s = self.send.entry(to).or_default();
                s.acked = s.acked.max(upto);
                s.unacked.retain(|&seq, _| seq > upto);
            }
            JournalEntry::SendState {
                to,
                next_seq,
                acked,
            } => {
                let s = self.send.entry(to).or_default();
                s.next_seq = s.next_seq.max(next_seq);
                s.acked = s.acked.max(acked);
            }
            JournalEntry::Delivered { from, epoch, seq } => {
                let r = self.recv.entry(from).or_default();
                if r.epoch == 0 && r.last_delivered == 0 && r.seen_ahead.is_empty() {
                    r.epoch = epoch;
                }
                if epoch != r.epoch || seq <= r.last_delivered {
                    return;
                }
                r.seen_ahead.insert(seq);
                while r.seen_ahead.remove(&(r.last_delivered + 1)) {
                    r.last_delivered += 1;
                }
            }
            JournalEntry::RecvReset {
                from,
                epoch,
                retired,
            } => {
                let r = self.recv.entry(from).or_default();
                r.epoch = epoch;
                r.last_delivered = 0;
                r.seen_ahead.clear();
                r.retired += retired;
            }
            JournalEntry::RecvState {
                from,
                epoch,
                last_delivered,
                seen_ahead,
                retired,
            } => {
                let r = self.recv.entry(from).or_default();
                r.epoch = epoch;
                r.last_delivered = last_delivered;
                r.seen_ahead = seen_ahead.into_iter().collect();
                r.retired = retired;
            }
            JournalEntry::PeerRetired {
                peer,
                sent,
                delivered,
                expired,
            } => {
                self.send.remove(&peer);
                self.recv.remove(&peer);
                self.retired_sent += sent;
                self.retired_delivered += delivered;
                self.expired += expired;
            }
        }
    }
}

/// The append-only journal file.
pub struct Outbox {
    path: PathBuf,
    file: File,
    appends_since_compact: u64,
}

impl std::fmt::Debug for Outbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Outbox")
            .field("path", &self.path)
            .field("appends_since_compact", &self.appends_since_compact)
            .finish()
    }
}

impl Outbox {
    /// Opens (or creates) the journal at `path` and replays it.
    ///
    /// A torn tail record — a crash mid-append — is truncated off the file
    /// (so later appends extend the verified prefix, not the garbage) and
    /// counted in [`OutboxState::torn_truncations`]. Interior corruption
    /// fails with `InvalidData`: callers must treat that as fatal, because
    /// a journal that fails its checksums mid-file cannot be trusted to
    /// reproduce the dedup/resend state the peers have observed.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Outbox, OutboxState)> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut state = OutboxState::default();
        match std::fs::read(&path) {
            Ok(bytes) => {
                let scan = scan_records(&bytes).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("outbox journal {}: {e}", path.display()),
                    )
                })?;
                for payload in &scan.payloads {
                    // A record that passed its checksum but does not decode
                    // is not a torn write — it is a format-level fault, and
                    // skipping it would replay a different history than the
                    // one acked to peers.
                    let entry = beehive_wire::from_slice::<JournalEntry>(payload).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "outbox journal {}: verified record does not decode: {e}",
                                path.display()
                            ),
                        )
                    })?;
                    state.apply(entry);
                }
                if let Some(torn) = &scan.torn {
                    state.torn_truncations += 1;
                    let keep = torn.valid_len as u64;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(keep)?;
                    f.sync_data()?;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Outbox {
                path,
                file,
                appends_since_compact: 0,
            },
            state,
        ))
    }

    /// Appends one record. The write goes straight to the file descriptor
    /// (no userspace buffering), so a killed process loses at most the
    /// record being written.
    pub fn append(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let bytes = beehive_wire::to_vec(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let rec = beehive_wire::record::record_frame(&bytes);
        self.file.write_all(&rec)?;
        self.appends_since_compact += 1;
        Ok(())
    }

    /// Number of records appended since the journal was last compacted (or
    /// opened). The channel layer compacts once this grows large.
    pub fn appends_since_compact(&self) -> u64 {
        self.appends_since_compact
    }

    /// Atomically replaces the journal with `snapshot` (tmp + rename).
    /// Returns the size in bytes of the rewritten journal.
    pub fn compact(&mut self, snapshot: &[JournalEntry]) -> io::Result<u64> {
        let tmp = self.path.with_extension("outbox.tmp");
        let mut buf = Vec::new();
        for entry in snapshot {
            let bytes = beehive_wire::to_vec(entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            encode_record(&bytes, &mut buf);
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.appends_since_compact = 0;
        Ok(buf.len() as u64)
    }

    /// The journal's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "beehive-outbox-{}-{tag}-{n}.outbox",
            std::process::id()
        ))
    }

    #[test]
    fn replay_reconstructs_send_and_recv_state() {
        let path = tmp_journal("replay");
        {
            let (mut ob, state) = Outbox::open(&path).unwrap();
            assert!(state.epoch.is_none());
            ob.append(&JournalEntry::Epoch { epoch: 7 }).unwrap();
            ob.append(&JournalEntry::Send {
                to: 2,
                seq: 1,
                env: vec![0xAA],
            })
            .unwrap();
            ob.append(&JournalEntry::Send {
                to: 2,
                seq: 2,
                env: vec![0xBB],
            })
            .unwrap();
            ob.append(&JournalEntry::Acked { to: 2, upto: 1 }).unwrap();
            ob.append(&JournalEntry::Delivered {
                from: 3,
                epoch: 9,
                seq: 1,
            })
            .unwrap();
            ob.append(&JournalEntry::Delivered {
                from: 3,
                epoch: 9,
                seq: 3,
            })
            .unwrap();
        }
        let (_ob, state) = Outbox::open(&path).unwrap();
        assert_eq!(state.epoch, Some(7));
        let s = &state.send[&2];
        assert_eq!(s.next_seq, 3);
        assert_eq!(s.acked, 1);
        assert_eq!(s.unacked.len(), 1);
        assert_eq!(s.unacked[&2], vec![0xBB]);
        let r = &state.recv[&3];
        assert_eq!(r.epoch, 9);
        assert_eq!(r.last_delivered, 1);
        assert!(r.seen_ahead.contains(&3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_record_is_tolerated() {
        let path = tmp_journal("trunc");
        {
            let (mut ob, _) = Outbox::open(&path).unwrap();
            ob.append(&JournalEntry::Epoch { epoch: 1 }).unwrap();
            ob.append(&JournalEntry::Send {
                to: 2,
                seq: 1,
                env: vec![1, 2, 3],
            })
            .unwrap();
        }
        // Simulate a crash mid-append: chop the last few bytes off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let torn_file_len;
        {
            let (_ob, state) = Outbox::open(&path).unwrap();
            assert_eq!(state.epoch, Some(1));
            assert!(state.send.is_empty(), "torn record must be discarded");
            assert_eq!(state.torn_truncations, 1, "torn tail must be counted");
            torn_file_len = std::fs::metadata(&path).unwrap().len();
        }
        // The garbage tail was physically truncated, so the journal ends at
        // the verified prefix and a second recovery is clean.
        assert!(torn_file_len < bytes.len() as u64 - 2);
        let (_ob, state) = Outbox::open(&path).unwrap();
        assert_eq!(state.epoch, Some(1));
        assert_eq!(state.torn_truncations, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_after_torn_tail_survive_the_next_recovery() {
        let path = tmp_journal("torn-append");
        {
            let (mut ob, _) = Outbox::open(&path).unwrap();
            ob.append(&JournalEntry::Epoch { epoch: 3 }).unwrap();
            ob.append(&JournalEntry::Send {
                to: 2,
                seq: 1,
                env: vec![9],
            })
            .unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        {
            // Reopen over the torn tail and append a fresh record: it must
            // land right after the verified prefix, not after the garbage
            // (the pre-checksum format appended after the torn bytes, which
            // silently dropped every later record on the NEXT replay).
            let (mut ob, state) = Outbox::open(&path).unwrap();
            assert_eq!(state.torn_truncations, 1);
            ob.append(&JournalEntry::Send {
                to: 2,
                seq: 1,
                env: vec![7],
            })
            .unwrap();
        }
        let (_ob, state) = Outbox::open(&path).unwrap();
        assert_eq!(state.epoch, Some(3));
        assert_eq!(state.send[&2].unacked[&1], vec![7]);
        assert_eq!(state.torn_truncations, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interior_bit_flip_fails_the_open() {
        let path = tmp_journal("corrupt");
        {
            let (mut ob, _) = Outbox::open(&path).unwrap();
            ob.append(&JournalEntry::Epoch { epoch: 2 }).unwrap();
            ob.append(&JournalEntry::Send {
                to: 5,
                seq: 1,
                env: vec![1, 2, 3, 4],
            })
            .unwrap();
            ob.append(&JournalEntry::Acked { to: 5, upto: 1 }).unwrap();
        }
        // Flip a bit inside the FIRST record: interior corruption, not a
        // torn tail — recovery must refuse rather than replay a divergent
        // history.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[13] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let err = Outbox::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_is_atomic_and_preserves_state() {
        let path = tmp_journal("compact");
        {
            let (mut ob, _) = Outbox::open(&path).unwrap();
            for seq in 1..=10u64 {
                ob.append(&JournalEntry::Send {
                    to: 4,
                    seq,
                    env: vec![seq as u8],
                })
                .unwrap();
            }
            ob.append(&JournalEntry::Acked { to: 4, upto: 9 }).unwrap();
            assert_eq!(ob.appends_since_compact(), 11);
            // Compact to the equivalent snapshot.
            ob.compact(&[
                JournalEntry::Epoch { epoch: 5 },
                JournalEntry::SendState {
                    to: 4,
                    next_seq: 11,
                    acked: 9,
                },
                JournalEntry::Send {
                    to: 4,
                    seq: 10,
                    env: vec![10],
                },
            ])
            .unwrap();
            assert_eq!(ob.appends_since_compact(), 0);
            // Appends keep working after the rename.
            ob.append(&JournalEntry::Acked { to: 4, upto: 10 }).unwrap();
        }
        let (_ob, state) = Outbox::open(&path).unwrap();
        assert_eq!(state.epoch, Some(5));
        let s = &state.send[&4];
        assert_eq!(s.next_seq, 11);
        assert_eq!(s.acked, 10);
        assert!(s.unacked.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn peer_retired_drops_state_and_accumulates() {
        let mut state = OutboxState::default();
        state.apply(JournalEntry::Send {
            to: 2,
            seq: 1,
            env: vec![0xAA],
        });
        state.apply(JournalEntry::Delivered {
            from: 2,
            epoch: 1,
            seq: 1,
        });
        state.apply(JournalEntry::PeerRetired {
            peer: 2,
            sent: 1,
            delivered: 1,
            expired: 1,
        });
        assert!(state.send.is_empty(), "retired peer's send state lingers");
        assert!(state.recv.is_empty(), "retired peer's recv state lingers");
        assert_eq!(state.retired_sent, 1);
        assert_eq!(state.retired_delivered, 1);
        assert_eq!(state.expired, 1);
    }

    #[test]
    fn recv_reset_folds_retired_deliveries() {
        let mut state = OutboxState::default();
        state.apply(JournalEntry::Delivered {
            from: 2,
            epoch: 1,
            seq: 1,
        });
        state.apply(JournalEntry::Delivered {
            from: 2,
            epoch: 1,
            seq: 2,
        });
        state.apply(JournalEntry::RecvReset {
            from: 2,
            epoch: 8,
            retired: 2,
        });
        state.apply(JournalEntry::Delivered {
            from: 2,
            epoch: 8,
            seq: 1,
        });
        let r = &state.recv[&2];
        assert_eq!(r.epoch, 8);
        assert_eq!(r.last_delivered, 1);
        assert_eq!(r.retired, 2);
    }
}
