//! Platform applications, built with the very abstraction they serve (the
//! paper: "We implemented this mechanism using the proposed abstraction as a
//! control application"):
//!
//! * [`Tick`] — the periodic timer message (`on TimeOut` in the paper);
//! * [`collector_app`] — per-hive, reads the local instrumentation store and
//!   emits [`HiveMetrics`] reports;
//! * [`optimizer_app`] — aggregates reports on a single bee (its dictionary
//!   is monolithic — dogfooding the centralized-app pattern) and issues
//!   migration orders per the greedy heuristic.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::app::App;
use crate::id::{BeeId, HiveId};
use crate::metrics::{BeeStats, BeeStatsSnapshot, HiveMetrics, Instrumentation, LatencyHistogram};
use crate::optimizer::{plan_migrations, BeeLoad, OptimizerConfig};

/// The periodic platform timer message; the abstraction's `on TimeOut`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tick {
    /// Monotonic tick counter (per emitting hive).
    pub seq: u64,
    /// Platform time at emission, in ms.
    pub now_ms: u64,
}
crate::impl_message!(Tick);

/// Name of the collector platform app.
pub const COLLECTOR_APP: &str = "beehive.collector";
/// Name of the optimizer platform app.
pub const OPTIMIZER_APP: &str = "beehive.optimizer";

/// Builds the per-hive metrics collector. It runs on a pinned local
/// singleton bee; on every [`Tick`] it drains the hive's instrumentation
/// store and emits the delta as a [`HiveMetrics`] report.
pub fn collector_app(instr: Arc<Mutex<Instrumentation>>) -> App {
    App::builder(COLLECTOR_APP)
        .handle_local::<Tick>("collect", move |tick, ctx| {
            let delta = instr.lock().take();
            if delta.bees.is_empty()
                && delta.provenance.is_empty()
                && delta.executor.is_empty()
                && delta.latency.is_empty()
                && delta.handler_failures == [0, 0]
                && delta.redeliveries == 0
                && delta.dead_letters == 0
                && delta.decode_errors == 0
                && delta.quarantined == 0
                && delta.retransmits == 0
                && delta.dups_suppressed == 0
                && delta.channel_acks == 0
                && delta.outbox_depth == 0
                && delta.snapshot_index == 0
                && delta.snapshot_lag == 0
                && delta.snapshot_installs == 0
                && delta.journal_torn_truncations == 0
            {
                return Ok(());
            }
            let hive = ctx.hive();
            let bees = delta
                .bees
                .iter()
                .map(|((app, bee), stats)| BeeStatsSnapshot {
                    app: app.clone(),
                    bee: BeeId(*bee),
                    hive,
                    pinned: delta.pinned.contains(bee),
                    cells: delta.bee_cells.get(bee).copied().unwrap_or(0),
                    stats: stats.clone(),
                })
                .collect();
            let provenance = delta
                .provenance
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            let latency = delta
                .latency
                .iter()
                .map(|((app, ty), lat)| (app.clone(), ty.clone(), lat.clone()))
                .collect();
            ctx.emit(HiveMetrics {
                hive,
                seq: tick.seq,
                now_ms: tick.now_ms,
                bees,
                provenance,
                executor: delta.executor.clone(),
                latency,
                handler_failures: delta.handler_failures,
                redeliveries: delta.redeliveries,
                dead_letters: delta.dead_letters,
                decode_errors: delta.decode_errors,
                quarantined: delta.quarantined,
                retransmits: delta.retransmits,
                dups_suppressed: delta.dups_suppressed,
                channel_acks: delta.channel_acks,
                outbox_depth: delta.outbox_depth,
                snapshot_index: delta.snapshot_index,
                snapshot_lag: delta.snapshot_lag,
                snapshot_installs: delta.snapshot_installs,
                journal_torn_truncations: delta.journal_torn_truncations,
            });
            Ok(())
        })
        .build()
}

/// A per-bee aggregate stored by the optimizer app.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct AggRecord {
    app: String,
    bee: u64,
    hive: u32,
    pinned: bool,
    cells: u64,
    stats: BeeStats,
    last_seen_ms: u64,
}

/// Builds the aggregator/optimizer. Its `agg` dictionary is declared whole
/// (`MapSpec::WholeDicts`), so all reports flow to one bee cluster-wide —
/// exactly the paper's "periodically aggregate them on a single hive". Every
/// `optimize_every` ticks it applies the greedy heuristic and orders
/// migrations.
pub fn optimizer_app(cfg: OptimizerConfig, optimize_every: u64) -> App {
    let cfg2 = cfg.clone();
    App::builder(OPTIMIZER_APP)
        .handle_whole::<HiveMetrics>("aggregate", &["agg"], move |m, ctx| {
            for snap in &m.bees {
                let key = format!("{}/{}", snap.app, snap.bee.0);
                let mut rec: AggRecord = ctx
                    .get("agg", &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                rec.app = snap.app.clone();
                rec.bee = snap.bee.0;
                rec.hive = snap.hive.0;
                rec.pinned = rec.pinned || snap.pinned;
                rec.cells = snap.cells;
                // A migration between windows means older in_by_hive data
                // describes a stale placement; fold with decay by simply
                // replacing with the latest window once the bee moved.
                if rec.last_seen_ms != 0 && rec.stats.msgs_in > 0 && rec.hive != snap.hive.0 {
                    rec.stats = BeeStats::default();
                }
                rec.stats.merge(&snap.stats);
                rec.last_seen_ms = m.now_ms;
                ctx.put("agg", key, &rec).map_err(|e| e.to_string())?;
            }
            // Per-app handler-runtime histograms, stored under reserved
            // "latency:" keys alongside the per-bee records. The optimize
            // pass uses their p99 to rank which bees to place first.
            for (app, _ty, lat) in &m.latency {
                let key = format!("latency:{app}");
                let mut hist: LatencyHistogram = ctx
                    .get("agg", &key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or_default();
                hist.merge(&lat.runtime);
                ctx.put("agg", key, &hist).map_err(|e| e.to_string())?;
            }
            Ok(())
        })
        .handle_whole::<Tick>("optimize", &["agg"], move |t, ctx| {
            if optimize_every == 0 || t.seq % optimize_every != 0 {
                return Ok(());
            }
            let keys = ctx.keys("agg");
            // First pass: per-app p99 handler runtimes from the reserved
            // "latency:" keys (they hold LatencyHistograms, not AggRecords).
            let mut p99_by_app = std::collections::BTreeMap::new();
            for k in &keys {
                let Some(app) = k.strip_prefix("latency:") else {
                    continue;
                };
                if let Some(hist) = ctx
                    .get::<LatencyHistogram>("agg", k)
                    .map_err(|e| e.to_string())?
                {
                    if let Some(p99) = hist.p99_us() {
                        p99_by_app.insert(app.to_string(), p99);
                    }
                }
            }
            let mut loads = Vec::with_capacity(keys.len());
            let mut occupancy = std::collections::BTreeMap::new();
            for k in &keys {
                if k.starts_with("latency:") {
                    continue;
                }
                let Some(rec) = ctx.get::<AggRecord>("agg", k).map_err(|e| e.to_string())? else {
                    continue;
                };
                *occupancy.entry(rec.hive).or_insert(0usize) += 1;
                loads.push(BeeLoad {
                    app: rec.app.clone(),
                    bee: BeeId(rec.bee),
                    hive: HiveId(rec.hive),
                    pinned: rec.pinned,
                    cells: rec.cells,
                    in_by_hive: rec.stats.in_by_hive.clone(),
                    p99_runtime_us: p99_by_app.get(&rec.app).copied().unwrap_or(0),
                });
            }
            let plans = plan_migrations(&loads, &occupancy, &cfg2);
            for plan in plans {
                // Reset the moved bee's window so the next decision uses
                // post-migration traffic only.
                let key = format!("{}/{}", plan.app, plan.bee.0);
                if let Some(mut rec) = ctx
                    .get::<AggRecord>("agg", &key)
                    .map_err(|e| e.to_string())?
                {
                    rec.stats = BeeStats::default();
                    rec.hive = plan.to.0;
                    ctx.put("agg", key, &rec).map_err(|e| e.to_string())?;
                }
                ctx.order_migration(plan.app, plan.bee, plan.from, plan.to);
            }
            Ok(())
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Mapped;
    use crate::message::TypedMessage;

    #[test]
    fn tick_is_a_message() {
        let t = Tick {
            seq: 1,
            now_ms: 1000,
        };
        let bytes = crate::message::Message::encode(&t).unwrap();
        let back = Tick::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn collector_is_local_singleton() {
        let instr = Arc::new(Mutex::new(Instrumentation::default()));
        let app = collector_app(instr);
        assert_eq!(app.name(), COLLECTOR_APP);
        let idx = app.handlers_for(Tick::wire_name());
        assert_eq!(idx.len(), 1);
        assert_eq!(
            app.map(idx[0], &Tick { seq: 1, now_ms: 0 }),
            Mapped::LocalSingleton
        );
    }

    #[test]
    fn optimizer_agg_dict_is_monolithic() {
        let app = optimizer_app(OptimizerConfig::default(), 5);
        assert!(app.is_monolithic("agg"));
        // Both handlers exist: one for HiveMetrics, one for Tick.
        assert_eq!(app.handlers_for(HiveMetrics::wire_name()).len(), 1);
        assert_eq!(app.handlers_for(Tick::wire_name()).len(), 1);
    }
}
