//! The queen: per-application, per-hive management of local bees — their
//! state, mailboxes, lifecycle (creation, merge, migration) and tombstones.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::cell::Cell;
use crate::events::{EventJournal, EventKind};
use crate::id::{AppName, BeeId, HiveId};
use crate::message::Envelope;
use crate::state::BeeState;
use crate::supervision::OverflowPolicy;

/// Lifecycle of a local bee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeeStatus {
    /// Processing messages normally.
    Active,
    /// Waiting for `MergeState` shipments from losing colonies on other
    /// hives before resuming (consistency: the merged state must be complete
    /// before the next message is processed).
    AwaitingMerges {
        /// Losers whose state has not arrived yet.
        remaining: HashSet<BeeId>,
    },
    /// Migrating away; the mailbox buffers until the registry's `Moved`
    /// event commits, then everything is forwarded.
    MigratingOut {
        /// Destination hive.
        to: HiveId,
    },
    /// Created here ahead of an inbound migration: the `Moved` event has been
    /// applied but the state shipment hasn't arrived (or vice versa).
    StagedIn,
    /// Checked out to an executor worker for a parallel round: state, colony
    /// and mailbox are on loan to the worker; deliveries still buffer here.
    /// The hive thread blocks for the round, so nothing else can observe or
    /// mutate the bee before [`Queen::check_in`] restores it.
    CheckedOut,
}

/// A bee living on this hive.
#[derive(Debug)]
pub struct LocalBee {
    /// Identity (stable across migrations).
    pub id: BeeId,
    /// The state slice this bee owns.
    pub state: BeeState,
    /// The cells this bee owns (mirrors the registry's view).
    pub colony: BTreeSet<Cell>,
    /// Buffered work: `(handler index, envelope)`.
    pub mailbox: VecDeque<(u16, Envelope)>,
    /// Lifecycle.
    pub status: BeeStatus,
    /// Pinned bees (hive-local singletons) are never migrated.
    pub pinned: bool,
    /// Replication sequence number: count of committed, replicated
    /// transactions (colony replication).
    pub repl_seq: u64,
    /// Consecutive handler failures; reset by any success. Drives the
    /// quarantine circuit breaker.
    pub consecutive_failures: u32,
    /// If set, the circuit breaker tripped: while `now < until` the colony
    /// stops dequeuing and new mail dead-letters fast. Once the cooldown
    /// expires the next dequeue is a half-open probe (one message); a
    /// success clears this, a failure re-arms it.
    pub quarantined_until_ms: Option<u64>,
}

impl LocalBee {
    fn new(id: BeeId, colony: BTreeSet<Cell>, pinned: bool) -> Self {
        LocalBee {
            id,
            state: BeeState::new(),
            colony,
            mailbox: VecDeque::new(),
            status: BeeStatus::Active,
            pinned,
            repl_seq: 0,
            consecutive_failures: 0,
            quarantined_until_ms: None,
        }
    }

    /// Whether this bee can process mail right now.
    pub fn runnable(&self) -> bool {
        self.status == BeeStatus::Active && !self.mailbox.is_empty()
    }

    /// Whether the circuit breaker is open at `now_ms` (cooldown running).
    pub fn is_quarantined(&self, now_ms: u64) -> bool {
        self.quarantined_until_ms
            .is_some_and(|until| now_ms < until)
    }
}

/// Outcome of a policy-aware delivery ([`Queen::offer`]). Variants that
/// carry an [`Envelope`] hand it back to the hive for dead-lettering.
#[derive(Debug)]
pub enum Delivery {
    /// Queued on the bee's mailbox.
    Delivered,
    /// No such local bee; the envelope is returned untouched.
    NoBee(Envelope),
    /// The bee is quarantined: dead-letter fast, without queueing.
    Quarantined(Envelope),
    /// Mailbox full under [`OverflowPolicy::Shed`]: the incoming message
    /// was queued and the *oldest* queued message was shed (returned).
    Shed(Envelope),
    /// Mailbox full under [`OverflowPolicy::DeadLetter`]: the incoming
    /// message was rejected (returned) and the backlog preserved.
    Rejected(Envelope),
}

/// A bee's loaned-out pieces during a parallel executor round
/// (see [`Queen::check_out`]).
pub(crate) struct CheckedOutBee {
    /// The bee's state, moved out for the round.
    pub state: BeeState,
    /// The bee's colony, moved out for the round.
    pub colony: BTreeSet<Cell>,
    /// The entire pending mailbox, drained for the round.
    pub mail: Vec<(u16, Envelope)>,
    /// Whether the bee is pinned.
    pub pinned: bool,
    /// Replication sequence at checkout.
    pub repl_seq: u64,
}

/// Per-application bee manager on one hive.
pub struct Queen {
    /// The application this queen serves.
    pub app: AppName,
    bees: HashMap<BeeId, LocalBee>,
    singleton: Option<BeeId>,
    /// Bees that moved away: `bee → destination hive` (used to forward
    /// in-flight messages that raced with the migration).
    tombstones: HashMap<BeeId, HiveId>,
    /// Merge shipments that arrived before the local registry apply told us
    /// to expect them: `(winner, loser) → loser state`. Consumed by
    /// [`Queen::await_merges`].
    early_merges: HashMap<(BeeId, BeeId), BeeState>,
    /// Losers already absorbed (guards against the reverse race: the apply
    /// arriving after the shipment was consumed).
    absorbed: HashSet<BeeId>,
    /// Merge redirects: every hive records `loser → winner` when it applies
    /// a merge event, so late mail addressed to a merged-away bee can be
    /// re-aimed at the surviving colony.
    merge_redirects: HashMap<BeeId, BeeId>,
    /// The hive's flight-recorder journal, for bee spawn/retire and
    /// quarantine-close events. `None` for bare queens (unit tests).
    events: Option<Arc<EventJournal>>,
}

impl Queen {
    /// A queen with no bees.
    pub fn new(app: AppName) -> Self {
        Queen {
            app,
            bees: HashMap::new(),
            singleton: None,
            tombstones: HashMap::new(),
            early_merges: HashMap::new(),
            absorbed: HashSet::new(),
            merge_redirects: HashMap::new(),
            events: None,
        }
    }

    /// Hands this queen the hive's event journal (wired by
    /// [`crate::hive::Hive::install`]).
    pub fn set_events(&mut self, events: Arc<EventJournal>) {
        self.events = Some(events);
    }

    /// Records a bee lifecycle event, if a journal is wired.
    fn emit(&self, kind: EventKind, bee: BeeId, detail: &str) {
        if let Some(events) = &self.events {
            events.record_full(kind, 0, &self.app, Some(bee), None, detail);
        }
    }

    /// The bee, if local.
    pub fn bee(&self, id: BeeId) -> Option<&LocalBee> {
        self.bees.get(&id)
    }

    /// Mutable access to a local bee.
    pub fn bee_mut(&mut self, id: BeeId) -> Option<&mut LocalBee> {
        self.bees.get_mut(&id)
    }

    /// Ids of all local bees.
    pub fn bee_ids(&self) -> Vec<BeeId> {
        self.bees.keys().copied().collect()
    }

    /// Number of local bees.
    pub fn len(&self) -> usize {
        self.bees.len()
    }

    /// Whether this queen manages no bees.
    pub fn is_empty(&self) -> bool {
        self.bees.is_empty()
    }

    /// Where a moved-away bee went, if we know.
    pub fn tombstone(&self, id: BeeId) -> Option<HiveId> {
        self.tombstones.get(&id).copied()
    }

    /// Records that `loser` was merged into `winner` (applied on every hive).
    pub fn record_merge(&mut self, loser: BeeId, winner: BeeId) {
        if loser != winner {
            self.merge_redirects.insert(loser, winner);
        }
    }

    /// The surviving colony for a merged-away bee, following redirect chains
    /// (a winner can itself lose a later merge).
    pub fn merge_redirect(&self, id: BeeId) -> Option<BeeId> {
        let mut cur = *self.merge_redirects.get(&id)?;
        let mut hops = 0;
        while let Some(&next) = self.merge_redirects.get(&cur) {
            cur = next;
            hops += 1;
            if hops > self.merge_redirects.len() {
                break; // defensive: never loop forever
            }
        }
        Some(cur)
    }

    /// Ensures a cell-routed bee exists locally with (at least) `colony`.
    pub fn ensure_bee(
        &mut self,
        id: BeeId,
        colony: impl IntoIterator<Item = Cell>,
    ) -> &mut LocalBee {
        self.tombstones.remove(&id); // a bee can migrate back
        if !self.bees.contains_key(&id) {
            self.emit(EventKind::BeeSpawned, id, "created by cell routing");
        }
        let bee = self
            .bees
            .entry(id)
            .or_insert_with(|| LocalBee::new(id, BTreeSet::new(), false));
        bee.colony.extend(colony);
        bee
    }

    /// The hive-local singleton bee, created on first use with `alloc`.
    pub fn ensure_singleton(&mut self, alloc: impl FnOnce() -> BeeId) -> BeeId {
        if let Some(id) = self.singleton {
            return id;
        }
        let id = alloc();
        self.emit(EventKind::BeeSpawned, id, "created as hive-local singleton");
        self.bees
            .insert(id, LocalBee::new(id, BTreeSet::new(), true));
        self.singleton = Some(id);
        id
    }

    /// The singleton's id, if created.
    pub fn singleton(&self) -> Option<BeeId> {
        self.singleton
    }

    /// Queues a message for a local bee. Returns false if the bee is not here.
    /// Bypasses quarantine and mailbox bounds — used for internal requeues
    /// (migration forwarding, merge drains) that must never lose mail; new
    /// traffic goes through [`Queen::offer`].
    pub fn deliver(&mut self, id: BeeId, handler: u16, env: Envelope) -> bool {
        match self.bees.get_mut(&id) {
            Some(bee) => {
                bee.mailbox.push_back((handler, env));
                true
            }
            None => false,
        }
    }

    /// Policy-aware delivery for new traffic: applies the quarantine
    /// circuit breaker and the bounded-mailbox overflow policy
    /// (`capacity == 0` = unbounded).
    pub fn offer(
        &mut self,
        id: BeeId,
        handler: u16,
        env: Envelope,
        now_ms: u64,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Delivery {
        let Some(bee) = self.bees.get_mut(&id) else {
            return Delivery::NoBee(env);
        };
        if bee.is_quarantined(now_ms) {
            return Delivery::Quarantined(env);
        }
        if capacity > 0 && bee.mailbox.len() >= capacity {
            match policy {
                OverflowPolicy::Shed => {
                    let (_, shed) = bee
                        .mailbox
                        .pop_front()
                        .expect("mailbox full implies nonempty");
                    bee.mailbox.push_back((handler, env));
                    return Delivery::Shed(shed);
                }
                OverflowPolicy::DeadLetter => return Delivery::Rejected(env),
            }
        }
        bee.mailbox.push_back((handler, env));
        Delivery::Delivered
    }

    /// Records the outcome of a bee's run (one message or a whole batch) and
    /// applies the circuit breaker. `had_success` breaks any earlier failure
    /// streak; `trailing_failures` is the number of consecutive failures at
    /// the end of the run. Returns `Some(until_ms)` when the bee is (re-)
    /// quarantined: the streak reached `threshold` (0 disables the breaker).
    /// A clean run (`had_success` and no trailing failures) closes the
    /// breaker — this is the half-open probe succeeding.
    pub fn record_outcome(
        &mut self,
        id: BeeId,
        had_success: bool,
        trailing_failures: u32,
        threshold: u32,
        cooldown_ms: u64,
        now_ms: u64,
    ) -> Option<u64> {
        let bee = self.bees.get_mut(&id)?;
        let mut closed = false;
        if had_success {
            bee.consecutive_failures = trailing_failures;
            if trailing_failures == 0 {
                closed = bee.quarantined_until_ms.take().is_some();
            }
        } else {
            bee.consecutive_failures = bee.consecutive_failures.saturating_add(trailing_failures);
        }
        let tripped = if threshold > 0 && bee.consecutive_failures >= threshold {
            let until = now_ms + cooldown_ms;
            bee.quarantined_until_ms = Some(until);
            Some(until)
        } else {
            None
        };
        if closed && tripped.is_none() {
            self.emit(
                EventKind::QuarantineClose,
                id,
                "half-open probe succeeded; breaker closed",
            );
        }
        tripped
    }

    /// Whether `id` is quarantined at `now_ms`.
    pub fn is_quarantined(&self, id: BeeId, now_ms: u64) -> bool {
        self.bees.get(&id).is_some_and(|b| b.is_quarantined(now_ms))
    }

    /// Local bees whose circuit breaker is currently open.
    pub fn quarantined_bees(&self, now_ms: u64) -> Vec<BeeId> {
        self.bees
            .values()
            .filter(|b| b.is_quarantined(now_ms))
            .map(|b| b.id)
            .collect()
    }

    /// Ids of local bees that can run now.
    pub fn runnable(&self) -> impl Iterator<Item = BeeId> + '_ {
        self.bees.values().filter(|b| b.runnable()).map(|b| b.id)
    }

    /// Active local bees (broadcast targets).
    pub fn active_bees(&self) -> impl Iterator<Item = BeeId> + '_ {
        self.bees
            .values()
            .filter(|b| b.status == BeeStatus::Active)
            .map(|b| b.id)
    }

    /// Checks a bee out for a parallel executor round: takes its state,
    /// colony and the *entire* pending mailbox, and freezes the bee as
    /// [`BeeStatus::CheckedOut`]. Returns `None` unless the bee is `Active`
    /// with pending mail (mid-merge/mid-migration bees stay on the hive
    /// thread's sequential path by construction), or while quarantined. A
    /// bee whose quarantine cooldown has expired is checked out with a
    /// single message — the half-open probe — so a still-broken handler
    /// cannot burn the whole backlog in one round.
    pub(crate) fn check_out(&mut self, id: BeeId, now_ms: u64) -> Option<CheckedOutBee> {
        let bee = self.bees.get_mut(&id)?;
        if bee.status != BeeStatus::Active || bee.mailbox.is_empty() || bee.is_quarantined(now_ms) {
            return None;
        }
        let probing = bee.quarantined_until_ms.is_some();
        bee.status = BeeStatus::CheckedOut;
        let mail: Vec<(u16, Envelope)> = if probing {
            bee.mailbox.drain(..1).collect()
        } else {
            bee.mailbox.drain(..).collect()
        };
        Some(CheckedOutBee {
            state: std::mem::take(&mut bee.state),
            colony: std::mem::take(&mut bee.colony),
            mail,
            pinned: bee.pinned,
            repl_seq: bee.repl_seq,
        })
    }

    /// Checks a bee back in after a parallel round: restores state, colony
    /// and replication sequence and reactivates it. Deliveries that arrived
    /// while checked out are already buffered in the mailbox and are
    /// untouched. The colony is unioned defensively in case a registry event
    /// extended it mid-round (cannot happen today — the hive thread blocks
    /// for the round — but the union is free).
    pub(crate) fn check_in(
        &mut self,
        id: BeeId,
        state: BeeState,
        colony: BTreeSet<Cell>,
        repl_seq: u64,
    ) {
        let Some(bee) = self.bees.get_mut(&id) else {
            return;
        };
        debug_assert_eq!(bee.status, BeeStatus::CheckedOut);
        let extended = std::mem::take(&mut bee.colony);
        bee.state = state;
        bee.colony = colony;
        bee.colony.extend(extended);
        bee.repl_seq = repl_seq;
        if bee.status == BeeStatus::CheckedOut {
            bee.status = BeeStatus::Active;
        }
    }

    /// Starts an outbound migration: freezes the bee and returns a snapshot
    /// of its state, colony and replication sequence for shipping. `None` if
    /// the bee isn't here, is pinned, or is already busy migrating/merging.
    pub fn start_migration(&mut self, id: BeeId, to: HiveId) -> Option<(Vec<u8>, Vec<Cell>, u64)> {
        let bee = self.bees.get_mut(&id)?;
        if bee.pinned || bee.status != BeeStatus::Active {
            return None;
        }
        let snapshot = bee.state.snapshot().ok()?;
        let colony: Vec<Cell> = bee.colony.iter().cloned().collect();
        bee.status = BeeStatus::MigratingOut { to };
        Some((snapshot, colony, bee.repl_seq))
    }

    /// Completes an outbound migration after the registry committed the move:
    /// removes the bee and returns its buffered mailbox for forwarding.
    pub fn finish_migration_out(&mut self, id: BeeId, to: HiveId) -> Vec<(u16, Envelope)> {
        let Some(bee) = self.bees.remove(&id) else {
            return Vec::new();
        };
        self.emit(
            EventKind::BeeRetired,
            id,
            &format!("migrated out to hive-{}", to.0),
        );
        self.tombstones.insert(id, to);
        bee.mailbox.into_iter().collect()
    }

    /// Installs a migrated-in bee's state. The bee may already exist as a
    /// `StagedIn` placeholder buffering early messages.
    pub fn install_migrated(
        &mut self,
        id: BeeId,
        state: BeeState,
        colony: Vec<Cell>,
        repl_seq: u64,
    ) {
        self.tombstones.remove(&id);
        if !self.bees.contains_key(&id) {
            self.emit(EventKind::BeeSpawned, id, "created by migration install");
        }
        let bee = self
            .bees
            .entry(id)
            .or_insert_with(|| LocalBee::new(id, BTreeSet::new(), false));
        bee.state = state;
        bee.colony.extend(colony);
        bee.status = BeeStatus::Active;
        bee.repl_seq = repl_seq;
    }

    /// Creates a placeholder for a bee the registry moved here whose state
    /// shipment is still in flight; its mailbox buffers until installation.
    pub fn stage_in(&mut self, id: BeeId) -> &mut LocalBee {
        self.tombstones.remove(&id);
        if !self.bees.contains_key(&id) {
            self.emit(
                EventKind::BeeSpawned,
                id,
                "staged in ahead of state shipment",
            );
        }
        let bee = self
            .bees
            .entry(id)
            .or_insert_with(|| LocalBee::new(id, BTreeSet::new(), false));
        if bee.status == BeeStatus::Active
            && bee.state.total_entries() == 0
            && bee.mailbox.is_empty()
        {
            bee.status = BeeStatus::StagedIn;
        }
        bee
    }

    /// Marks `winner` as waiting for merge shipments from `remote_losers`.
    /// Shipments that already arrived (see [`Queen::stash_early_merge`]) are
    /// absorbed immediately instead of being waited on.
    pub fn await_merges(&mut self, winner: BeeId, mut remote_losers: HashSet<BeeId>) -> usize {
        // Consume shipments that raced ahead of the registry apply.
        let mut conflicts = 0;
        let early: Vec<BeeId> = remote_losers
            .iter()
            .copied()
            .filter(|l| self.early_merges.contains_key(&(winner, *l)) || self.absorbed.contains(l))
            .collect();
        for loser in early {
            remote_losers.remove(&loser);
            if let Some(state) = self.early_merges.remove(&(winner, loser)) {
                conflicts += self.absorb_merge(winner, loser, state);
            }
        }
        if remote_losers.is_empty() {
            return conflicts;
        }
        if let Some(bee) = self.bees.get_mut(&winner) {
            let remaining = match &mut bee.status {
                BeeStatus::AwaitingMerges { remaining } => {
                    remaining.extend(remote_losers);
                    return conflicts;
                }
                _ => remote_losers,
            };
            bee.status = BeeStatus::AwaitingMerges { remaining };
        }
        conflicts
    }

    /// Stashes a merge shipment that arrived before this hive applied the
    /// registry event announcing the merge.
    pub fn stash_early_merge(&mut self, winner: BeeId, loser: BeeId, state: BeeState) {
        self.early_merges.insert((winner, loser), state);
    }

    /// Whether the winner bee is currently expecting `loser`'s shipment.
    pub fn expects_merge(&self, winner: BeeId, loser: BeeId) -> bool {
        matches!(
            self.bees.get(&winner).map(|b| &b.status),
            Some(BeeStatus::AwaitingMerges { remaining }) if remaining.contains(&loser)
        )
    }

    /// Absorbs a loser's state into the winner (local or shipped). Returns
    /// the number of key conflicts (should be zero under the invariant).
    pub fn absorb_merge(&mut self, winner: BeeId, loser: BeeId, state: BeeState) -> usize {
        self.absorbed.insert(loser);
        let Some(bee) = self.bees.get_mut(&winner) else {
            return 0;
        };
        let conflicts = bee.state.absorb(state);
        if let BeeStatus::AwaitingMerges { remaining } = &mut bee.status {
            remaining.remove(&loser);
            if remaining.is_empty() {
                bee.status = BeeStatus::Active;
            }
        }
        conflicts
    }

    /// Removes a merged-away loser locally, returning its state and mailbox
    /// so the hive can ship/forward them to the winner.
    pub fn remove_loser(&mut self, loser: BeeId) -> Option<(BeeState, Vec<(u16, Envelope)>)> {
        let bee = self.bees.remove(&loser)?;
        self.emit(EventKind::BeeRetired, loser, "absorbed by colony merge");
        if self.singleton == Some(loser) {
            self.singleton = None;
        }
        Some((bee.state, bee.mailbox.into_iter().collect()))
    }

    /// Clears a bee's pinned flag so a draining hive can evacuate its
    /// hive-local singletons over the normal migration path. Returns whether
    /// the bee was pinned. Pinning otherwise means "never migrate", so this
    /// is only called once the whole hive is leaving the cluster.
    pub fn unpin(&mut self, id: BeeId) -> bool {
        match self.bees.get_mut(&id) {
            Some(bee) => std::mem::replace(&mut bee.pinned, false),
            None => false,
        }
    }

    /// Removes a bee entirely (registry `Removed` event).
    pub fn remove(&mut self, id: BeeId) {
        if self.bees.remove(&id).is_some() {
            self.emit(EventKind::BeeRetired, id, "removed by registry event");
        }
        if self.singleton == Some(id) {
            self.singleton = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Dst, Source};
    use serde::{Deserialize, Serialize};
    use std::sync::Arc;

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Dummy;
    crate::impl_message!(Dummy);

    fn env() -> Envelope {
        Envelope {
            msg: Arc::new(Dummy),
            src: Source::External(HiveId(1)),
            dst: Dst::Broadcast,
            trace: crate::trace::TraceContext::root(HiveId(1)),
            deliveries: 0,
        }
    }

    fn bid(seq: u32) -> BeeId {
        BeeId::new(HiveId(1), seq)
    }

    #[test]
    fn ensure_and_deliver() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        assert!(q.deliver(bid(1), 0, env()));
        assert!(!q.deliver(bid(2), 0, env()));
        assert_eq!(q.runnable().collect::<Vec<_>>(), vec![bid(1)]);
    }

    #[test]
    fn singleton_is_created_once_and_pinned() {
        let mut q = Queen::new("a".into());
        let s1 = q.ensure_singleton(|| bid(7));
        let s2 = q.ensure_singleton(|| bid(8));
        assert_eq!(s1, s2);
        assert!(q.bee(s1).unwrap().pinned);
        // Pinned bees refuse to migrate.
        assert!(q.start_migration(s1, HiveId(2)).is_none());
    }

    #[test]
    fn unpin_allows_drain_migration() {
        let mut q = Queen::new("a".into());
        let s = q.ensure_singleton(|| bid(7));
        assert!(q.unpin(s), "singleton was pinned");
        assert!(!q.unpin(s), "second unpin reports already-unpinned");
        assert!(!q.unpin(bid(99)), "unknown bee");
        assert!(q.start_migration(s, HiveId(2)).is_some());
    }

    #[test]
    fn migration_freezes_then_forwards() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        let (snapshot, colony, repl_seq) = q.start_migration(bid(1), HiveId(2)).unwrap();
        assert_eq!(repl_seq, 0);
        assert!(!snapshot.is_empty() || snapshot.is_empty()); // snapshot produced
        assert_eq!(colony, vec![Cell::new("S", "k")]);
        // Frozen: message buffers, bee not runnable.
        assert!(q.deliver(bid(1), 0, env()));
        assert_eq!(q.runnable().count(), 0);
        // Second migration attempt is rejected while in flight.
        assert!(q.start_migration(bid(1), HiveId(3)).is_none());
        // Registry commits: buffered mail comes back, tombstone set.
        let mail = q.finish_migration_out(bid(1), HiveId(2));
        assert_eq!(mail.len(), 1);
        assert_eq!(q.tombstone(bid(1)), Some(HiveId(2)));
        assert!(q.bee(bid(1)).is_none());
    }

    #[test]
    fn stage_in_buffers_until_install() {
        let mut q = Queen::new("a".into());
        q.stage_in(bid(1));
        assert!(q.deliver(bid(1), 0, env()));
        assert_eq!(q.runnable().count(), 0, "staged bee must not run");
        let mut state = BeeState::new();
        state.dict_mut("S").put("k", &1u32).unwrap();
        q.install_migrated(bid(1), state, vec![Cell::new("S", "k")], 3);
        assert_eq!(q.bee(bid(1)).unwrap().repl_seq, 3);
        assert_eq!(q.runnable().count(), 1);
        assert_eq!(
            q.bee(bid(1))
                .unwrap()
                .state
                .dict("S")
                .unwrap()
                .get::<u32>("k")
                .unwrap(),
            Some(1)
        );
    }

    #[test]
    fn merge_wait_and_absorb() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "a")]);
        q.await_merges(bid(1), [bid(9)].into_iter().collect());
        assert!(q.deliver(bid(1), 0, env()));
        assert_eq!(q.runnable().count(), 0, "awaiting merge must not run");
        let mut loser_state = BeeState::new();
        loser_state.dict_mut("S").put("b", &2u32).unwrap();
        let conflicts = q.absorb_merge(bid(1), bid(9), loser_state);
        assert_eq!(conflicts, 0);
        assert_eq!(q.runnable().count(), 1);
        let bee = q.bee(bid(1)).unwrap();
        assert_eq!(
            bee.state.dict("S").unwrap().get::<u32>("b").unwrap(),
            Some(2)
        );
    }

    #[test]
    fn remove_loser_returns_state_and_mail() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "a")]);
        q.deliver(bid(1), 0, env());
        let (state, mail) = q.remove_loser(bid(1)).unwrap();
        assert_eq!(state.total_entries(), 0);
        assert_eq!(mail.len(), 1);
        assert!(q.bee(bid(1)).is_none());
    }

    #[test]
    fn check_out_freezes_and_check_in_restores() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        q.deliver(bid(1), 0, env());
        let mut out = q.check_out(bid(1), 0).unwrap();
        assert_eq!(out.mail.len(), 1);
        assert!(!out.pinned);
        // Frozen: not runnable, not migratable, deliveries buffer.
        assert_eq!(q.runnable().count(), 0);
        assert!(q.start_migration(bid(1), HiveId(2)).is_none());
        assert!(
            q.check_out(bid(1), 0).is_none(),
            "double checkout must fail"
        );
        assert!(q.deliver(bid(1), 0, env()));
        // Worker "runs" the batch: mutate state, claim a cell.
        out.state.dict_mut("S").put("k", &7u32).unwrap();
        out.colony.insert(Cell::new("S", "k2"));
        q.check_in(bid(1), out.state, out.colony, 5);
        let bee = q.bee(bid(1)).unwrap();
        assert_eq!(bee.status, BeeStatus::Active);
        assert_eq!(bee.repl_seq, 5);
        assert_eq!(bee.colony.len(), 2);
        assert_eq!(bee.mailbox.len(), 1, "delivery during checkout preserved");
        assert_eq!(
            bee.state.dict("S").unwrap().get::<u32>("k").unwrap(),
            Some(7)
        );
    }

    #[test]
    fn check_out_requires_active_with_mail() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        assert!(q.check_out(bid(1), 0).is_none(), "empty mailbox");
        q.deliver(bid(1), 0, env());
        q.await_merges(bid(1), [bid(9)].into_iter().collect());
        assert!(q.check_out(bid(1), 0).is_none(), "awaiting merges");
    }

    #[test]
    fn consecutive_failures_trip_and_probe_closes_the_breaker() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        // Two failures with threshold 3: breaker stays closed.
        assert_eq!(q.record_outcome(bid(1), false, 2, 3, 100, 10), None);
        assert!(!q.is_quarantined(bid(1), 10));
        // Third consecutive failure trips it.
        assert_eq!(q.record_outcome(bid(1), false, 1, 3, 100, 20), Some(120));
        assert!(q.is_quarantined(bid(1), 119));
        assert_eq!(q.quarantined_bees(119), vec![bid(1)]);
        // While open: no checkout, offers dead-letter fast.
        q.deliver(bid(1), 0, env());
        assert!(q.check_out(bid(1), 50).is_none(), "quarantined");
        let d = q.offer(bid(1), 0, env(), 50, 0, OverflowPolicy::DeadLetter);
        assert!(matches!(d, Delivery::Quarantined(_)));
        // Cooldown expired: half-open probe checks out exactly one message.
        q.deliver(bid(1), 0, env());
        assert!(!q.is_quarantined(bid(1), 120));
        let out = q.check_out(bid(1), 120).unwrap();
        assert_eq!(out.mail.len(), 1, "probe runs one message");
        q.check_in(bid(1), out.state, out.colony, 0);
        // Probe fails → re-quarantined with a fresh cooldown.
        assert_eq!(q.record_outcome(bid(1), false, 1, 3, 100, 130), Some(230));
        assert!(q.is_quarantined(bid(1), 200));
        // Probe succeeds → breaker closes, streak resets, full batches again.
        assert_eq!(q.record_outcome(bid(1), true, 0, 3, 100, 240), None);
        assert!(!q.is_quarantined(bid(1), 240));
        assert_eq!(q.bee(bid(1)).unwrap().consecutive_failures, 0);
        let out = q.check_out(bid(1), 240).unwrap();
        assert_eq!(out.mail.len(), 1, "remaining backlog drains normally");
    }

    #[test]
    fn offer_applies_mailbox_bounds() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        // Capacity 2, DeadLetter: third offer is rejected, backlog intact.
        for _ in 0..2 {
            let d = q.offer(bid(1), 0, env(), 0, 2, OverflowPolicy::DeadLetter);
            assert!(matches!(d, Delivery::Delivered));
        }
        let d = q.offer(bid(1), 0, env(), 0, 2, OverflowPolicy::DeadLetter);
        assert!(matches!(d, Delivery::Rejected(_)));
        assert_eq!(q.bee(bid(1)).unwrap().mailbox.len(), 2);
        // Shed: the oldest message is returned, the new one is queued.
        let d = q.offer(bid(1), 0, env(), 0, 2, OverflowPolicy::Shed);
        assert!(matches!(d, Delivery::Shed(_)));
        assert_eq!(q.bee(bid(1)).unwrap().mailbox.len(), 2);
        // Capacity 0 = unbounded.
        let d = q.offer(bid(1), 0, env(), 0, 0, OverflowPolicy::Shed);
        assert!(matches!(d, Delivery::Delivered));
        // Unknown bee hands the envelope back.
        let d = q.offer(bid(9), 0, env(), 0, 0, OverflowPolicy::Shed);
        assert!(matches!(d, Delivery::NoBee(_)));
    }

    #[test]
    fn success_mid_batch_resets_the_streak() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "k")]);
        assert_eq!(q.record_outcome(bid(1), false, 2, 5, 100, 0), None);
        // A batch with a success and 2 trailing failures: streak = 2, not 4.
        assert_eq!(q.record_outcome(bid(1), true, 2, 5, 100, 0), None);
        assert_eq!(q.bee(bid(1)).unwrap().consecutive_failures, 2);
    }

    #[test]
    fn migrate_back_clears_tombstone() {
        let mut q = Queen::new("a".into());
        q.ensure_bee(bid(1), [Cell::new("S", "a")]);
        q.start_migration(bid(1), HiveId(2)).unwrap();
        q.finish_migration_out(bid(1), HiveId(2));
        assert_eq!(q.tombstone(bid(1)), Some(HiveId(2)));
        q.install_migrated(bid(1), BeeState::new(), vec![], 0);
        assert_eq!(q.tombstone(bid(1)), None);
    }
}
