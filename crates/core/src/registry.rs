//! The cluster-wide cell registry: which bee owns which cells, and which
//! hive hosts which bee.
//!
//! The registry is a deterministic state machine replicated with
//! `beehive-raft` (our substitute for the paper's Chubby-style locking). All
//! hives — registry voters and learners alike — apply the same command log,
//! so every hive can serve lookups from its local mirror, and the hive that
//! proposed a command recognizes the answer by the `(origin, seq)` pair it
//! embedded in the command.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::id::{AppName, BeeId, HiveId};

/// Registry mutations, proposed by hives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegistryOp {
    /// Finds the bee owning `cells` for `app`; creates `new_bee` on `origin`
    /// when nothing owns any of them; merges colonies when several bees own
    /// parts of the set (the paper's K1 ∩ K2 ≠ ∅ consistency guarantee).
    LookupOrCreate {
        /// The application the cells belong to.
        app: AppName,
        /// Canonicalized mapped cells of the message being routed.
        cells: Vec<Cell>,
        /// Proposer-allocated id for the bee to create if none exists.
        new_bee: BeeId,
    },
    /// Moves a bee to another hive (live migration).
    MoveBee {
        /// The bee to move.
        bee: BeeId,
        /// Destination hive.
        to: HiveId,
    },
    /// Claims additional cells for an existing bee (keys first written inside
    /// a handler rather than named by `map`).
    AssignCells {
        /// The owning bee.
        bee: BeeId,
        /// Cells to claim.
        cells: Vec<Cell>,
    },
    /// Deletes a bee and frees its cells.
    RemoveBee {
        /// The bee to remove.
        bee: BeeId,
    },
}

/// A proposed command: the op plus its proposer and a proposer-local sequence
/// number for correlating the applied result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistryCommand {
    /// Proposing hive.
    pub origin: HiveId,
    /// Proposer-local sequence number.
    pub seq: u64,
    /// The operation.
    pub op: RegistryOp,
}

impl RegistryCommand {
    /// Encodes for proposing into Raft.
    pub fn encode(&self) -> Vec<u8> {
        beehive_wire::to_vec(self).expect("registry command encodes")
    }

    /// Decodes an applied Raft entry.
    pub fn decode(bytes: &[u8]) -> crate::error::Result<Self> {
        beehive_wire::from_slice(bytes).map_err(crate::error::Error::from)
    }
}

/// The deterministic result of applying a [`RegistryCommand`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegistryEvent {
    /// The outcome of a `LookupOrCreate`.
    Routed {
        /// Application.
        app: AppName,
        /// The owning (possibly new) bee.
        bee: BeeId,
        /// The hive currently hosting it.
        hive: HiveId,
        /// Whether the bee was created by this command.
        created: bool,
        /// Colonies merged into the winner: `(loser_bee, losers_hive)`.
        merged: Vec<(BeeId, HiveId)>,
    },
    /// A bee moved hives.
    Moved {
        /// Application.
        app: AppName,
        /// The bee.
        bee: BeeId,
        /// Previous hive.
        from: HiveId,
        /// New hive.
        to: HiveId,
    },
    /// Cells were assigned to a bee; cells already owned by *another* bee are
    /// reported as conflicts (an application design error — writes outside
    /// the mapped cells — surfaced through feedback).
    Assigned {
        /// Application.
        app: AppName,
        /// The owning bee.
        bee: BeeId,
        /// Newly assigned cells.
        assigned: Vec<Cell>,
        /// Cells already owned elsewhere.
        conflicts: Vec<Cell>,
    },
    /// A bee was removed.
    Removed {
        /// Application.
        app: AppName,
        /// The removed bee.
        bee: BeeId,
        /// The hive that hosted it.
        hive: HiveId,
    },
    /// The command could not be applied.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

/// Everything the registry knows about one bee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeeRecord {
    /// Owning application.
    pub app: AppName,
    /// Hosting hive.
    pub hive: HiveId,
    /// Cells the bee exclusively owns.
    pub colony: BTreeSet<Cell>,
}

/// The registry state machine. Also usable directly (without Raft) as the
/// single-hive local registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistryState {
    /// `(app, cell) → bee` ownership index.
    cells: BTreeMap<AppName, BTreeMap<Cell, BeeId>>,
    /// All known bees.
    bees: BTreeMap<BeeId, BeeRecord>,
}

impl RegistryState {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The owner of `cell` in `app`, if any.
    pub fn owner(&self, app: &str, cell: &Cell) -> Option<BeeId> {
        self.cells.get(app)?.get(cell).copied()
    }

    /// The record for `bee`.
    pub fn bee(&self, bee: BeeId) -> Option<&BeeRecord> {
        self.bees.get(&bee)
    }

    /// The hive hosting `bee`.
    pub fn hive_of(&self, bee: BeeId) -> Option<HiveId> {
        self.bees.get(&bee).map(|r| r.hive)
    }

    /// Number of known bees.
    pub fn bee_count(&self) -> usize {
        self.bees.len()
    }

    /// Iterates all bees.
    pub fn bees(&self) -> impl Iterator<Item = (&BeeId, &BeeRecord)> {
        self.bees.iter()
    }

    /// Distinct owners of the given cells.
    pub fn owners_of(&self, app: &str, cells: &[Cell]) -> Vec<BeeId> {
        let mut owners = Vec::new();
        for c in cells {
            if let Some(b) = self.owner(app, c) {
                if !owners.contains(&b) {
                    owners.push(b);
                }
            }
        }
        owners
    }

    /// Fast-path lookup used by dispatchers: `Some((bee, hive))` when a
    /// single bee already owns **all** of `cells`.
    pub fn lookup_exact(&self, app: &str, cells: &[Cell]) -> Option<(BeeId, HiveId)> {
        let owners = self.owners_of(app, cells);
        if owners.len() != 1 {
            return None;
        }
        let bee = owners[0];
        let record = self.bees.get(&bee)?;
        if cells.iter().all(|c| record.colony.contains(c)) {
            Some((bee, record.hive))
        } else {
            None
        }
    }

    /// Applies a command deterministically.
    pub fn apply_command(&mut self, cmd: &RegistryCommand) -> RegistryEvent {
        match &cmd.op {
            RegistryOp::LookupOrCreate {
                app,
                cells,
                new_bee,
            } => self.lookup_or_create(cmd.origin, app, cells, *new_bee),
            RegistryOp::MoveBee { bee, to } => match self.bees.get_mut(bee) {
                Some(rec) => {
                    let from = rec.hive;
                    rec.hive = *to;
                    RegistryEvent::Moved {
                        app: rec.app.clone(),
                        bee: *bee,
                        from,
                        to: *to,
                    }
                }
                None => RegistryEvent::Rejected {
                    reason: format!("move: unknown bee {bee}"),
                },
            },
            RegistryOp::AssignCells { bee, cells } => {
                let Some(rec) = self.bees.get(bee) else {
                    return RegistryEvent::Rejected {
                        reason: format!("assign: unknown bee {bee}"),
                    };
                };
                let app = rec.app.clone();
                let mut assigned = Vec::new();
                let mut conflicts = Vec::new();
                for c in cells {
                    match self.owner(&app, c) {
                        Some(owner) if owner != *bee => conflicts.push(c.clone()),
                        Some(_) => {} // already ours
                        None => {
                            self.cells
                                .entry(app.clone())
                                .or_default()
                                .insert(c.clone(), *bee);
                            self.bees.get_mut(bee).unwrap().colony.insert(c.clone());
                            assigned.push(c.clone());
                        }
                    }
                }
                RegistryEvent::Assigned {
                    app,
                    bee: *bee,
                    assigned,
                    conflicts,
                }
            }
            RegistryOp::RemoveBee { bee } => match self.bees.remove(bee) {
                Some(rec) => {
                    if let Some(index) = self.cells.get_mut(&rec.app) {
                        for c in &rec.colony {
                            index.remove(c);
                        }
                    }
                    RegistryEvent::Removed {
                        app: rec.app,
                        bee: *bee,
                        hive: rec.hive,
                    }
                }
                None => RegistryEvent::Rejected {
                    reason: format!("remove: unknown bee {bee}"),
                },
            },
        }
    }

    fn lookup_or_create(
        &mut self,
        origin: HiveId,
        app: &str,
        cells: &[Cell],
        new_bee: BeeId,
    ) -> RegistryEvent {
        if cells.is_empty() {
            return RegistryEvent::Rejected {
                reason: "lookup with no cells".into(),
            };
        }
        let owners = self.owners_of(app, cells);
        match owners.len() {
            0 => {
                // Nothing owns any of these cells. Create (or reuse, on a
                // duplicate retry) the proposer's bee and assign everything.
                let created = !self.bees.contains_key(&new_bee);
                if created {
                    self.bees.insert(
                        new_bee,
                        BeeRecord {
                            app: app.to_string(),
                            hive: origin,
                            colony: BTreeSet::new(),
                        },
                    );
                }
                let rec_hive = self.bees.get(&new_bee).unwrap().hive;
                for c in cells {
                    self.cells
                        .entry(app.to_string())
                        .or_default()
                        .insert(c.clone(), new_bee);
                    self.bees
                        .get_mut(&new_bee)
                        .unwrap()
                        .colony
                        .insert(c.clone());
                }
                RegistryEvent::Routed {
                    app: app.to_string(),
                    bee: new_bee,
                    hive: rec_hive,
                    created,
                    merged: Vec::new(),
                }
            }
            1 => {
                let bee = owners[0];
                for c in cells {
                    if self.owner(app, c).is_none() {
                        self.cells
                            .entry(app.to_string())
                            .or_default()
                            .insert(c.clone(), bee);
                        self.bees.get_mut(&bee).unwrap().colony.insert(c.clone());
                    }
                }
                let hive = self.bees.get(&bee).unwrap().hive;
                RegistryEvent::Routed {
                    app: app.to_string(),
                    bee,
                    hive,
                    created: false,
                    merged: Vec::new(),
                }
            }
            _ => {
                // Colonies must merge to preserve the intersection guarantee.
                // Winner: largest colony, ties broken by smallest id — both
                // deterministic.
                let winner = *owners
                    .iter()
                    .max_by_key(|b| {
                        (
                            self.bees.get(b).map(|r| r.colony.len()).unwrap_or(0),
                            std::cmp::Reverse(**b),
                        )
                    })
                    .unwrap();
                let mut merged = Vec::new();
                for loser in owners.iter().copied().filter(|&b| b != winner) {
                    let rec = self.bees.remove(&loser).expect("loser exists");
                    merged.push((loser, rec.hive));
                    let index = self.cells.entry(app.to_string()).or_default();
                    for c in &rec.colony {
                        index.insert(c.clone(), winner);
                    }
                    self.bees
                        .get_mut(&winner)
                        .unwrap()
                        .colony
                        .extend(rec.colony);
                }
                // Claim any cells still unowned.
                for c in cells {
                    if self.owner(app, c).is_none() {
                        self.cells
                            .entry(app.to_string())
                            .or_default()
                            .insert(c.clone(), winner);
                        self.bees.get_mut(&winner).unwrap().colony.insert(c.clone());
                    }
                }
                let hive = self.bees.get(&winner).unwrap().hive;
                RegistryEvent::Routed {
                    app: app.to_string(),
                    bee: winner,
                    hive,
                    created: false,
                    merged,
                }
            }
        }
    }
}

impl beehive_raft::StateMachine for RegistryState {
    type Output = (RegistryCommand, RegistryEvent);

    fn apply(&mut self, _index: beehive_raft::LogIndex, data: &[u8]) -> Self::Output {
        let cmd = RegistryCommand::decode(data).expect("registry commands are well-formed");
        let event = self.apply_command(&cmd);
        (cmd, event)
    }

    fn snapshot(&self) -> Vec<u8> {
        beehive_wire::to_vec(self).expect("registry state snapshots")
    }

    fn restore(&mut self, snapshot: &[u8]) {
        *self = beehive_wire::from_slice(snapshot).expect("registry snapshot restores");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(seq: u64, op: RegistryOp) -> RegistryCommand {
        RegistryCommand {
            origin: HiveId(1),
            seq,
            op,
        }
    }

    fn cells(names: &[&str]) -> Vec<Cell> {
        names.iter().map(|n| Cell::new("S", *n)).collect()
    }

    #[test]
    fn create_then_lookup() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let ev = r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "te".into(),
                cells: cells(&["sw1"]),
                new_bee: b1,
            },
        ));
        assert_eq!(
            ev,
            RegistryEvent::Routed {
                app: "te".into(),
                bee: b1,
                hive: HiveId(1),
                created: true,
                merged: vec![]
            }
        );
        assert_eq!(
            r.lookup_exact("te", &cells(&["sw1"])),
            Some((b1, HiveId(1)))
        );
        assert_eq!(r.owner("te", &Cell::new("S", "sw1")), Some(b1));
    }

    #[test]
    fn second_lookup_finds_existing_even_with_new_id() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let b2 = BeeId::new(HiveId(2), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "te".into(),
                cells: cells(&["sw1"]),
                new_bee: b1,
            },
        ));
        let ev = r.apply_command(&RegistryCommand {
            origin: HiveId(2),
            seq: 1,
            op: RegistryOp::LookupOrCreate {
                app: "te".into(),
                cells: cells(&["sw1"]),
                new_bee: b2,
            },
        });
        match ev {
            RegistryEvent::Routed { bee, created, .. } => {
                assert_eq!(bee, b1);
                assert!(!created);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.bee(b2).is_none(), "no spurious bee created");
    }

    #[test]
    fn overlapping_lookup_extends_colony() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1"]),
                new_bee: b1,
            },
        ));
        // {k1, k2} intersects b1's colony → same bee, k2 now owned too.
        let ev = r.apply_command(&cmd(
            2,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1", "k2"]),
                new_bee: BeeId::new(HiveId(1), 2),
            },
        ));
        match ev {
            RegistryEvent::Routed {
                bee,
                created,
                merged,
                ..
            } => {
                assert_eq!(bee, b1);
                assert!(!created && merged.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.owner("a", &Cell::new("S", "k2")), Some(b1));
        assert_eq!(r.bee(b1).unwrap().colony.len(), 2);
    }

    #[test]
    fn disjoint_colonies_merge_when_bridged() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let b2 = BeeId::new(HiveId(2), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1", "k3"]),
                new_bee: b1,
            },
        ));
        r.apply_command(&RegistryCommand {
            origin: HiveId(2),
            seq: 1,
            op: RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k2"]),
                new_bee: b2,
            },
        });
        // A message mapping {k1, k2} bridges the two colonies.
        let ev = r.apply_command(&cmd(
            2,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1", "k2"]),
                new_bee: BeeId::new(HiveId(1), 9),
            },
        ));
        match ev {
            RegistryEvent::Routed { bee, merged, .. } => {
                // b1 has the larger colony (2 cells) and wins.
                assert_eq!(bee, b1);
                assert_eq!(merged, vec![(b2, HiveId(2))]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r.bee(b2).is_none());
        for k in ["k1", "k2", "k3"] {
            assert_eq!(r.owner("a", &Cell::new("S", k)), Some(b1), "cell {k}");
        }
    }

    #[test]
    fn merge_tie_breaks_by_smallest_id() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let b2 = BeeId::new(HiveId(2), 1);
        assert!(b1 < b2);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1"]),
                new_bee: b1,
            },
        ));
        r.apply_command(&cmd(
            2,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k2"]),
                new_bee: b2,
            },
        ));
        let ev = r.apply_command(&cmd(
            3,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1", "k2"]),
                new_bee: BeeId::new(HiveId(1), 9),
            },
        ));
        match ev {
            RegistryEvent::Routed { bee, .. } => assert_eq!(bee, b1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn apps_are_isolated() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let b2 = BeeId::new(HiveId(1), 2);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k"]),
                new_bee: b1,
            },
        ));
        let ev = r.apply_command(&cmd(
            2,
            RegistryOp::LookupOrCreate {
                app: "b".into(),
                cells: cells(&["k"]),
                new_bee: b2,
            },
        ));
        match ev {
            RegistryEvent::Routed { bee, created, .. } => {
                assert_eq!(bee, b2);
                assert!(created, "same cell in a different app is a different bee");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn move_bee_updates_hive() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k"]),
                new_bee: b1,
            },
        ));
        let ev = r.apply_command(&cmd(
            2,
            RegistryOp::MoveBee {
                bee: b1,
                to: HiveId(5),
            },
        ));
        assert_eq!(
            ev,
            RegistryEvent::Moved {
                app: "a".into(),
                bee: b1,
                from: HiveId(1),
                to: HiveId(5)
            }
        );
        assert_eq!(r.hive_of(b1), Some(HiveId(5)));
        assert_eq!(r.lookup_exact("a", &cells(&["k"])), Some((b1, HiveId(5))));
    }

    #[test]
    fn assign_cells_reports_conflicts() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        let b2 = BeeId::new(HiveId(1), 2);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k1"]),
                new_bee: b1,
            },
        ));
        r.apply_command(&cmd(
            2,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k2"]),
                new_bee: b2,
            },
        ));
        let ev = r.apply_command(&cmd(
            3,
            RegistryOp::AssignCells {
                bee: b2,
                cells: cells(&["k1", "k3"]),
            },
        ));
        match ev {
            RegistryEvent::Assigned {
                assigned,
                conflicts,
                ..
            } => {
                assert_eq!(assigned, cells(&["k3"]));
                assert_eq!(conflicts, cells(&["k1"]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_bee_frees_cells() {
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k"]),
                new_bee: b1,
            },
        ));
        r.apply_command(&cmd(2, RegistryOp::RemoveBee { bee: b1 }));
        assert!(r.bee(b1).is_none());
        assert_eq!(r.owner("a", &Cell::new("S", "k")), None);
    }

    #[test]
    fn unknown_bee_operations_are_rejected() {
        let mut r = RegistryState::new();
        let ghost = BeeId::new(HiveId(9), 9);
        for op in [
            RegistryOp::MoveBee {
                bee: ghost,
                to: HiveId(1),
            },
            RegistryOp::AssignCells {
                bee: ghost,
                cells: cells(&["k"]),
            },
            RegistryOp::RemoveBee { bee: ghost },
        ] {
            assert!(matches!(
                r.apply_command(&cmd(1, op)),
                RegistryEvent::Rejected { .. }
            ));
        }
    }

    #[test]
    fn state_machine_snapshot_roundtrip() {
        use beehive_raft::StateMachine;
        let mut r = RegistryState::new();
        let b1 = BeeId::new(HiveId(1), 1);
        r.apply_command(&cmd(
            1,
            RegistryOp::LookupOrCreate {
                app: "a".into(),
                cells: cells(&["k"]),
                new_bee: b1,
            },
        ));
        let snap = r.snapshot();
        let mut r2 = RegistryState::new();
        r2.restore(&snap);
        assert_eq!(r, r2);
    }
}
