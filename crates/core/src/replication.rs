//! Colony replication — the fault-tolerance direction the paper names as
//! ongoing work ("we are enforcing the foundations of our framework
//! specially for fault-tolerance", §7), implemented the way the published
//! Beehive follow-up does it: each bee's committed transactions are
//! replicated to **shadow bees** on other hives, and on hive failure a
//! shadow is promoted by moving the bee's registry record to the replica.
//!
//! Mechanics:
//!
//! * With `replication_factor = r > 1`, a bee's owner hive ships every
//!   committed [`crate::state::TxJournal`] (as `ControlMsg::ReplicateTx`,
//!   sequence-numbered per bee) to the `r - 1` hives that follow the owner
//!   in the cluster ring.
//! * Replicas apply journals in order into a [`ShadowStore`]. A sequence gap
//!   (migration, merge, message loss) triggers a full-state resync from the
//!   owner.
//! * Failure detection is **delegated to the operator/deployment** (as in
//!   most control planes); recovery is [`crate::Hive::recover_from`]: the
//!   surviving replica proposes `MoveBee(bee → self)` for every bee the
//!   registry still places on the dead hive, and installs its shadow state
//!   when the move commits.

use std::collections::HashMap;
use std::sync::Arc;

use crate::events::{EventJournal, EventKind};
use crate::id::{AppName, BeeId, HiveId};
use crate::state::{BeeState, TxJournal};

/// A replica's copy of one bee's state.
#[derive(Debug, Clone, Default)]
pub struct ShadowBee {
    /// The replicated state.
    pub state: BeeState,
    /// Last applied replication sequence number.
    pub seq: u64,
    /// Whether the shadow is out of sync and awaiting a full resync.
    pub dirty: bool,
}

/// All shadows a hive holds for remote bees.
#[derive(Debug, Default)]
pub struct ShadowStore {
    shadows: HashMap<(AppName, BeeId), ShadowBee>,
    /// Flight-recorder journal for replica-gap events. `None` for bare
    /// stores (unit tests).
    events: Option<Arc<EventJournal>>,
}

/// Result of offering a journal to the store.
#[derive(Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Applied in order.
    Applied,
    /// Sequence gap — caller should request a full resync from the owner.
    NeedSync,
    /// Stale duplicate; ignored.
    Stale,
}

impl ShadowStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands the store the hive's event journal (wired by the hive on
    /// construction).
    pub fn set_events(&mut self, events: Arc<EventJournal>) {
        self.events = Some(events);
    }

    /// Number of shadows held.
    pub fn len(&self) -> usize {
        self.shadows.len()
    }

    /// Whether no shadows are held.
    pub fn is_empty(&self) -> bool {
        self.shadows.is_empty()
    }

    /// Applies a sequenced journal for `(app, bee)`.
    pub fn apply(&mut self, app: &str, bee: BeeId, seq: u64, journal: &TxJournal) -> ApplyOutcome {
        let shadow = self.shadows.entry((app.to_string(), bee)).or_default();
        if shadow.dirty {
            return ApplyOutcome::NeedSync;
        }
        if seq == shadow.seq + 1 {
            journal.replay(&mut shadow.state);
            shadow.seq = seq;
            ApplyOutcome::Applied
        } else if seq <= shadow.seq {
            ApplyOutcome::Stale
        } else {
            let expected = shadow.seq + 1;
            shadow.dirty = true;
            if let Some(events) = &self.events {
                events.record_full(
                    EventKind::ReplicaGap,
                    0,
                    app,
                    Some(bee),
                    None,
                    format!("expected seq {expected}, got {seq}; requesting full resync"),
                );
            }
            ApplyOutcome::NeedSync
        }
    }

    /// Installs a full-state resync from the owner.
    pub fn install(&mut self, app: &str, bee: BeeId, seq: u64, state: BeeState) {
        self.shadows.insert(
            (app.to_string(), bee),
            ShadowBee {
                state,
                seq,
                dirty: false,
            },
        );
    }

    /// The shadow for `(app, bee)`, if any.
    pub fn get(&self, app: &str, bee: BeeId) -> Option<&ShadowBee> {
        self.shadows.get(&(app.to_string(), bee))
    }

    /// Removes and returns a shadow (promotion or owner change).
    pub fn take(&mut self, app: &str, bee: BeeId) -> Option<ShadowBee> {
        self.shadows.remove(&(app.to_string(), bee))
    }

    /// All `(app, bee)` pairs shadowed here.
    pub fn keys(&self) -> impl Iterator<Item = (&AppName, BeeId)> {
        self.shadows.keys().map(|(a, b)| (a, *b))
    }
}

/// The replica hives for a bee hosted on `owner`: the next `factor - 1`
/// hives after it in the (sorted) cluster ring. Deterministic, so the owner
/// after a migration and any observer agree on the set.
pub fn replicas_of(owner: HiveId, all_hives: &[HiveId], factor: usize) -> Vec<HiveId> {
    if factor <= 1 || all_hives.len() < 2 {
        return Vec::new();
    }
    let mut ring: Vec<HiveId> = all_hives.to_vec();
    ring.sort();
    let Some(pos) = ring.iter().position(|&h| h == owner) else {
        return Vec::new();
    };
    (1..factor.min(ring.len()))
        .map(|i| ring[(pos + i) % ring.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TxState;

    fn journal(key: &str, value: u64) -> TxJournal {
        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.put("d", key, &value).unwrap();
        tx.commit()
    }

    fn bee() -> BeeId {
        BeeId::new(HiveId(1), 1)
    }

    #[test]
    fn in_order_journals_apply() {
        let mut store = ShadowStore::new();
        assert_eq!(
            store.apply("a", bee(), 1, &journal("x", 1)),
            ApplyOutcome::Applied
        );
        assert_eq!(
            store.apply("a", bee(), 2, &journal("x", 2)),
            ApplyOutcome::Applied
        );
        let shadow = store.get("a", bee()).unwrap();
        assert_eq!(shadow.seq, 2);
        assert_eq!(
            shadow.state.dict("d").unwrap().get::<u64>("x").unwrap(),
            Some(2)
        );
    }

    #[test]
    fn gap_marks_dirty_until_resync() {
        let mut store = ShadowStore::new();
        store.apply("a", bee(), 1, &journal("x", 1));
        assert_eq!(
            store.apply("a", bee(), 3, &journal("x", 3)),
            ApplyOutcome::NeedSync
        );
        // Everything is refused until a resync lands.
        assert_eq!(
            store.apply("a", bee(), 4, &journal("x", 4)),
            ApplyOutcome::NeedSync
        );
        let mut fresh = BeeState::new();
        fresh.dict_mut("d").put("x", &9u64).unwrap();
        store.install("a", bee(), 10, fresh);
        assert_eq!(
            store.apply("a", bee(), 11, &journal("y", 1)),
            ApplyOutcome::Applied
        );
        assert_eq!(store.get("a", bee()).unwrap().seq, 11);
    }

    #[test]
    fn duplicates_are_stale() {
        let mut store = ShadowStore::new();
        store.apply("a", bee(), 1, &journal("x", 1));
        assert_eq!(
            store.apply("a", bee(), 1, &journal("x", 99)),
            ApplyOutcome::Stale
        );
        assert_eq!(
            store
                .get("a", bee())
                .unwrap()
                .state
                .dict("d")
                .unwrap()
                .get::<u64>("x")
                .unwrap(),
            Some(1),
            "stale journal must not overwrite"
        );
    }

    #[test]
    fn take_removes_shadow() {
        let mut store = ShadowStore::new();
        store.apply("a", bee(), 1, &journal("x", 1));
        let shadow = store.take("a", bee()).unwrap();
        assert_eq!(shadow.seq, 1);
        assert!(store.is_empty());
    }

    #[test]
    fn replica_ring_is_deterministic() {
        let hives: Vec<HiveId> = (1..=5).map(HiveId).collect();
        assert_eq!(
            replicas_of(HiveId(1), &hives, 3),
            vec![HiveId(2), HiveId(3)]
        );
        assert_eq!(
            replicas_of(HiveId(4), &hives, 3),
            vec![HiveId(5), HiveId(1)]
        );
        assert_eq!(replicas_of(HiveId(5), &hives, 2), vec![HiveId(1)]);
        assert!(replicas_of(HiveId(1), &hives, 1).is_empty());
        assert!(replicas_of(HiveId(1), &[HiveId(1)], 3).is_empty());
    }

    #[test]
    fn factor_larger_than_cluster_is_clamped() {
        let hives: Vec<HiveId> = (1..=3).map(HiveId).collect();
        assert_eq!(
            replicas_of(HiveId(2), &hives, 10),
            vec![HiveId(3), HiveId(1)]
        );
    }
}
