//! Application state: dictionaries of key→value entries with transactions.
//!
//! Each bee owns a [`BeeState`]: the slice of its application's dictionaries
//! corresponding to the cells in its colony. Handlers run inside a
//! transaction ([`TxState`]) — the paper's "dictionaries … with support for
//! transactions".
//!
//! # Copy-on-write engine
//!
//! Values are shared buffers ([`SharedBytes`], an `Arc<[u8]>`): reads are
//! refcount bumps, never deep copies. Every dictionary entry carries a
//! *generation stamp* — a per-state monotonic counter recorded at write time.
//! A transaction writes directly into the base state and keeps two logs:
//!
//! * an **undo log** recording each touched entry's previous value and
//!   generation (first touch per savepoint era only — a repeated write to an
//!   entry whose generation is at or above the era floor needs no new
//!   record), so rollback is O(touched keys) rather than O(state);
//! * a **redo journal** of every op in execution order, byte-identical to the
//!   pre-COW engine's commit journal, shipped to replicas on commit.
//!
//! [`TxState::savepoint`] marks a point mid-transaction;
//! [`TxState::rollback_to`] unwinds exactly the ops after it and
//! [`TxState::take_journal_since`] drains exactly the ops after it. The
//! executors use this to run a whole mailbox batch inside one open
//! transaction with per-message savepoints: a mid-batch handler failure rolls
//! back only that message.
//!
//! Wire compatibility: [`BeeState::snapshot`], [`Dict`] and [`TxJournal`]
//! serialize byte-identically to the pre-COW clone-based engine — generation
//! stamps are bookkeeping, never persisted or replicated.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::de::{DeserializeOwned, SeqAccess, Visitor};
use serde::ser::SerializeStruct;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::{Error, Result};

/// A dictionary key. Applications typically use switch ids, MAC addresses,
/// prefixes or virtual-network ids rendered as strings.
pub type Key = String;

/// An encoded dictionary value: an immutable, cheaply-clonable shared buffer.
///
/// Cloning bumps a refcount; the bytes are never copied. Serializes
/// byte-identically to `Vec<u8>` under the wire format, so snapshots and
/// replication journals are unchanged from the clone-based engine.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SharedBytes(Arc<[u8]>);

/// An encoded dictionary value.
pub type Value = SharedBytes;

impl SharedBytes {
    /// An owned copy of the bytes (for APIs that need a `Vec<u8>`).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v.into())
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        *self.0 == *other
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl Serialize for SharedBytes {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        // Element-wise, exactly like Vec<u8>'s generic seq impl — NOT
        // serialize_bytes, which some formats frame differently.
        serializer.collect_seq(self.0.iter())
    }
}

impl<'de> Deserialize<'de> for SharedBytes {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        Vec::<u8>::deserialize(deserializer).map(Self::from)
    }
}

/// One dictionary entry: the value plus the generation stamp of the write
/// that produced it. Generation 0 marks non-transactional writes (snapshot
/// restore, journal replay, colony absorption, direct `put_raw`).
#[derive(Debug, Clone)]
struct Entry {
    value: Value,
    gen: u64,
}

/// One state dictionary: an ordered map of keys to encoded values.
#[derive(Debug, Clone, Default)]
pub struct Dict {
    entries: BTreeMap<Key, Entry>,
}

impl Dict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw get.
    pub fn get_raw(&self, key: &str) -> Option<&Value> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Typed get: decodes the stored bytes as `T`.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(e) => {
                beehive_wire::from_slice(&e.value)
                    .map(Some)
                    .map_err(|e| Error::StateDecode {
                        dict: String::new(),
                        key: key.to_string(),
                        source: e,
                    })
            }
        }
    }

    /// Raw put (non-transactional; stamps generation 0).
    pub fn put_raw(&mut self, key: impl Into<Key>, value: impl Into<Value>) {
        self.entries.insert(
            key.into(),
            Entry {
                value: value.into(),
                gen: 0,
            },
        );
    }

    /// Typed put: encodes `value` with the wire format.
    pub fn put<T: Serialize>(&mut self, key: impl Into<Key>, value: &T) -> Result<()> {
        self.put_raw(key, beehive_wire::to_vec(value)?);
        Ok(())
    }

    /// Removes a key, returning whether it existed.
    pub fn del(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.entries.keys()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.entries.iter().map(|(k, e)| (k, &e.value))
    }

    fn from_plain(entries: BTreeMap<Key, Value>) -> Self {
        Self {
            entries: entries
                .into_iter()
                .map(|(k, value)| (k, Entry { value, gen: 0 }))
                .collect(),
        }
    }
}

/// Equality ignores generation stamps: two dicts with the same contents are
/// equal even if written along different execution paths (e.g. workers=1 vs
/// workers=4, or snapshot-restored vs transaction-built).
impl PartialEq for Dict {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|((ka, ea), (kb, eb))| ka == kb && ea.value == eb.value)
    }
}

impl Eq for Dict {}

impl Serialize for Dict {
    fn serialize<S: Serializer>(&self, serializer: S) -> std::result::Result<S::Ok, S::Error> {
        // Mirrors the derived impl for `struct Dict { entries: BTreeMap<Key,
        // Vec<u8>> }`: a one-field struct whose field is a key→bytes map.
        // Generation stamps are never serialized.
        struct EntriesView<'a>(&'a BTreeMap<Key, Entry>);
        impl Serialize for EntriesView<'_> {
            fn serialize<S: Serializer>(
                &self,
                serializer: S,
            ) -> std::result::Result<S::Ok, S::Error> {
                serializer.collect_map(self.0.iter().map(|(k, e)| (k, &e.value)))
            }
        }
        let mut st = serializer.serialize_struct("Dict", 1)?;
        st.serialize_field("entries", &EntriesView(&self.entries))?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Dict {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> std::result::Result<Self, D::Error> {
        struct DictVisitor;
        impl<'de> Visitor<'de> for DictVisitor {
            type Value = Dict;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("struct Dict")
            }
            fn visit_seq<A: SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> std::result::Result<Dict, A::Error> {
                let entries: BTreeMap<Key, Value> = seq
                    .next_element()?
                    .ok_or_else(|| serde::de::Error::invalid_length(0, &self))?;
                Ok(Dict::from_plain(entries))
            }
        }
        deserializer.deserialize_struct("Dict", &["entries"], DictVisitor)
    }
}

/// The state a single bee owns: its application dictionaries restricted to
/// the bee's colony.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BeeState {
    dicts: BTreeMap<String, Dict>,
    /// Monotonic generation counter for transactional writes. Skipped in
    /// serde — snapshots stay wire-identical to the pre-COW format, and a
    /// restored state restarts at zero with every entry at generation 0.
    #[serde(skip)]
    gen: u64,
}

/// Equality compares dictionary contents only; the generation counter is
/// execution-path bookkeeping.
impl PartialEq for BeeState {
    fn eq(&self, other: &Self) -> bool {
        self.dicts == other.dicts
    }
}

impl Eq for BeeState {}

impl BeeState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dictionary named `name`, if it has any entries.
    pub fn dict(&self, name: &str) -> Option<&Dict> {
        self.dicts.get(name)
    }

    /// The dictionary named `name`, created on first use.
    pub fn dict_mut(&mut self, name: &str) -> &mut Dict {
        self.dicts.entry(name.to_string()).or_default()
    }

    /// Names of non-empty dictionaries.
    pub fn dict_names(&self) -> impl Iterator<Item = &String> {
        self.dicts.keys()
    }

    /// Total number of entries across all dictionaries.
    pub fn total_entries(&self) -> usize {
        self.dicts.values().map(Dict::len).sum()
    }

    /// Serializes the whole state (migration, colony merges, replication).
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        beehive_wire::to_vec(self).map_err(Error::from)
    }

    /// Restores a state serialized by [`BeeState::snapshot`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self> {
        beehive_wire::from_slice(bytes).map_err(Error::from)
    }

    /// Merges another bee's state into this one (colony merge). Keys from
    /// `other` win on conflict — but by the platform's exclusivity invariant
    /// there should be none; conflicts are counted and reported.
    pub fn absorb(&mut self, other: BeeState) -> usize {
        let mut conflicts = 0;
        for (name, dict) in other.dicts {
            let target = self.dicts.entry(name).or_default();
            for (k, e) in dict.entries {
                // Absorbed entries are non-transactional writes: gen 0.
                if target
                    .entries
                    .insert(
                        k,
                        Entry {
                            value: e.value,
                            gen: 0,
                        },
                    )
                    .is_some()
                {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }
}

/// One undo record: enough to restore a single touched entry (or un-create a
/// dictionary) during rollback.
#[derive(Debug)]
enum Undo {
    /// `dict[key]` held `prev` (value + generation) when the current era
    /// first touched it; `None` means the key was absent.
    Entry {
        dict: String,
        key: Key,
        prev: Option<(Value, u64)>,
    },
    /// The dictionary itself was created by this transaction.
    CreatedDict { dict: String },
}

/// A point inside an open transaction. [`TxState::rollback_to`] unwinds all
/// writes after it; [`TxState::take_journal_since`] drains their journal.
#[derive(Debug, Clone)]
pub struct Savepoint {
    undo_len: usize,
    redo_len: usize,
    written_len: usize,
}

/// A transaction over a [`BeeState`]: copy-on-write, generation-stamped.
///
/// Writes apply directly to the base state; an undo log (previous value +
/// generation of each first-touched entry) makes [`TxState::rollback`] and
/// [`TxState::rollback_to`] O(touched keys). The redo journal preserves every
/// op in execution order — byte-identical to the clone-based engine's commit
/// journal — for colony replication.
#[derive(Debug)]
pub struct TxState<'a> {
    base: &'a mut BeeState,
    undo: Vec<Undo>,
    /// Ordered journal for deterministic replay (colony replication).
    redo: Vec<JournalOp>,
    /// Every `(dict, key)` written, in op order (deduped on read).
    written: Vec<(String, Key)>,
    /// Entries with `gen >= era_floor` were first touched in the current
    /// savepoint era and already have an undo record.
    era_floor: u64,
}

impl<'a> TxState<'a> {
    /// Opens a transaction over `base`.
    pub fn begin(base: &'a mut BeeState) -> Self {
        let era_floor = base.gen + 1;
        TxState {
            base,
            undo: Vec::new(),
            redo: Vec::new(),
            written: Vec::new(),
            era_floor,
        }
    }

    /// Raw read: a refcount bump, never a byte copy.
    pub fn get_raw(&self, dict: &str, key: &str) -> Option<Value> {
        self.base.dict(dict).and_then(|d| d.get_raw(key)).cloned()
    }

    /// Typed read.
    pub fn get<T: DeserializeOwned>(&self, dict: &str, key: &str) -> Result<Option<T>> {
        match self.base.dict(dict).and_then(|d| d.get_raw(key)) {
            None => Ok(None),
            Some(bytes) => {
                beehive_wire::from_slice(bytes)
                    .map(Some)
                    .map_err(|e| Error::StateDecode {
                        dict: dict.to_string(),
                        key: key.to_string(),
                        source: e,
                    })
            }
        }
    }

    /// Ensures `dict` exists, recording its creation for rollback.
    fn ensure_dict(&mut self, dict: &str) {
        if !self.base.dicts.contains_key(dict) {
            self.base.dicts.insert(dict.to_string(), Dict::new());
            self.undo.push(Undo::CreatedDict {
                dict: dict.to_string(),
            });
        }
    }

    /// Raw write.
    pub fn put_raw(&mut self, dict: &str, key: impl Into<Key>, value: impl Into<Value>) {
        let key = key.into();
        let value: Value = value.into();
        self.ensure_dict(dict);
        self.base.gen += 1;
        let gen = self.base.gen;
        let d = self.base.dicts.get_mut(dict).expect("ensured above");
        let prev = d.entries.insert(
            key.clone(),
            Entry {
                value: value.clone(),
                gen,
            },
        );
        match prev {
            // Already touched this era: its undo record restores the
            // pre-era state, so this write needs none.
            Some(e) if e.gen >= self.era_floor => {}
            Some(e) => self.undo.push(Undo::Entry {
                dict: dict.to_string(),
                key: key.clone(),
                prev: Some((e.value, e.gen)),
            }),
            None => self.undo.push(Undo::Entry {
                dict: dict.to_string(),
                key: key.clone(),
                prev: None,
            }),
        }
        self.redo.push(JournalOp::Put {
            dict: dict.to_string(),
            key: key.clone(),
            value,
        });
        self.written.push((dict.to_string(), key));
    }

    /// Typed write.
    pub fn put<T: Serialize>(&mut self, dict: &str, key: impl Into<Key>, value: &T) -> Result<()> {
        self.put_raw(dict, key, beehive_wire::to_vec(value)?);
        Ok(())
    }

    /// Delete. Like the clone-based engine's commit, this creates the
    /// dictionary if missing (`dict_mut` semantics) — kept so state and
    /// snapshot bytes stay identical across the engine swap.
    pub fn del(&mut self, dict: &str, key: &str) {
        self.ensure_dict(dict);
        let d = self.base.dicts.get_mut(dict).expect("ensured above");
        if let Some(e) = d.entries.remove(key) {
            if e.gen < self.era_floor {
                self.undo.push(Undo::Entry {
                    dict: dict.to_string(),
                    key: key.to_string(),
                    prev: Some((e.value, e.gen)),
                });
            }
            // else: first-touch undo record of this era already restores it.
        }
        // Deleting an absent key needs no undo: nothing to restore.
        self.redo.push(JournalOp::Del {
            dict: dict.to_string(),
            key: key.to_string(),
        });
        self.written.push((dict.to_string(), key.to_string()));
    }

    /// Whether a key is visible.
    pub fn contains(&self, dict: &str, key: &str) -> bool {
        self.base.dict(dict).is_some_and(|d| d.contains(key))
    }

    /// Keys visible for `dict`, in order.
    pub fn keys(&self, dict: &str) -> Vec<Key> {
        self.base
            .dict(dict)
            .map(|d| d.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Keys *written* (put or deleted) so far — used by the platform to
    /// detect writes outside the mapped cells. Deduplicated.
    pub fn written_keys(&self) -> impl Iterator<Item = (&String, &Key)> {
        self.written
            .iter()
            .map(|(d, k)| (d, k))
            .collect::<BTreeSet<_>>()
            .into_iter()
    }

    /// True if no writes have happened.
    pub fn is_read_only(&self) -> bool {
        self.written.is_empty()
    }

    /// Marks a point in the transaction. Ops after it can be unwound with
    /// [`TxState::rollback_to`] or drained with
    /// [`TxState::take_journal_since`]. Starts a new undo era: the next write
    /// to any entry — even one touched before the savepoint — records fresh
    /// undo state.
    pub fn savepoint(&mut self) -> Savepoint {
        self.era_floor = self.base.gen + 1;
        Savepoint {
            undo_len: self.undo.len(),
            redo_len: self.redo.len(),
            written_len: self.written.len(),
        }
    }

    /// Unwinds every write after `sp` by replaying the undo log in reverse:
    /// O(keys touched since the savepoint). Writes before `sp` (including
    /// journal already drained with [`TxState::take_journal_since`]) are
    /// untouched.
    pub fn rollback_to(&mut self, sp: &Savepoint) {
        while self.undo.len() > sp.undo_len {
            match self.undo.pop().expect("len checked") {
                Undo::Entry { dict, key, prev } => match prev {
                    Some((value, gen)) => {
                        self.base
                            .dicts
                            .entry(dict)
                            .or_default()
                            .entries
                            .insert(key, Entry { value, gen });
                    }
                    None => {
                        if let Some(d) = self.base.dicts.get_mut(&dict) {
                            d.entries.remove(&key);
                        }
                    }
                },
                Undo::CreatedDict { dict } => {
                    self.base.dicts.remove(&dict);
                }
            }
        }
        self.redo.truncate(sp.redo_len);
        self.written.truncate(sp.written_len);
    }

    /// Drains the journal of every op since `sp`, in order — the per-message
    /// replication journal in a batched drain. The drained writes remain
    /// applied to the base state.
    pub fn take_journal_since(&mut self, sp: &Savepoint) -> TxJournal {
        TxJournal {
            ops: self.redo.split_off(sp.redo_len),
        }
    }

    /// Closes the transaction, returning the (not yet drained) write journal
    /// for replication. Writes are already applied — this is O(1).
    pub fn commit(self) -> TxJournal {
        TxJournal { ops: self.redo }
    }

    /// Discards the transaction, restoring the base state: O(touched keys).
    pub fn rollback(mut self) -> TxJournal {
        let sp = Savepoint {
            undo_len: 0,
            redo_len: 0,
            written_len: 0,
        };
        self.rollback_to(&sp);
        TxJournal { ops: Vec::new() }
    }
}

/// A committed write, replayable on a replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// Set `dict[key] = value`.
    Put {
        /// Dictionary name.
        dict: String,
        /// Entry key.
        key: Key,
        /// Encoded value.
        value: Value,
    },
    /// Remove `dict[key]`.
    Del {
        /// Dictionary name.
        dict: String,
        /// Entry key.
        key: Key,
    },
}

/// The ordered writes of one committed transaction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TxJournal {
    /// Writes in commit order.
    pub ops: Vec<JournalOp>,
}

impl TxJournal {
    /// Whether the transaction wrote anything.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the journal onto `state` (colony replication).
    pub fn replay(&self, state: &mut BeeState) {
        for op in &self.ops {
            match op {
                JournalOp::Put { dict, key, value } => {
                    state.dict_mut(dict).put_raw(key.clone(), value.clone())
                }
                JournalOp::Del { dict, key } => {
                    state.dict_mut(dict).del(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_typed_roundtrip() {
        let mut d = Dict::new();
        d.put("k", &42u64).unwrap();
        assert_eq!(d.get::<u64>("k").unwrap(), Some(42));
        assert_eq!(d.get::<u64>("missing").unwrap(), None);
        assert!(d.contains("k"));
        assert!(d.del("k"));
        assert!(!d.del("k"));
    }

    #[test]
    fn dict_decode_error_is_reported() {
        let mut d = Dict::new();
        d.put_raw("k", vec![1]); // not a valid String encoding
        assert!(matches!(
            d.get::<String>("k"),
            Err(Error::StateDecode { .. })
        ));
    }

    #[test]
    fn tx_reads_see_uncommitted_writes() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("sw1", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), Some(1));
        tx.put("S", "sw1", &2u32).unwrap();
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), Some(2));
        tx.del("S", "sw1");
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), None);
        assert!(!tx.contains("S", "sw1"));
    }

    #[test]
    fn rollback_discards_everything() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "a", &99u32).unwrap();
        tx.put("S", "b", &100u32).unwrap();
        tx.del("S", "a");
        let j = tx.rollback();
        assert!(j.is_empty());
        assert_eq!(s.dict("S").unwrap().get::<u32>("a").unwrap(), Some(1));
        assert!(!s.dict("S").unwrap().contains("b"));
    }

    #[test]
    fn commit_applies_in_order_and_returns_journal() {
        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "a", &1u32).unwrap();
        tx.put("S", "a", &2u32).unwrap(); // overwrite within tx
        tx.put("T", "x", &"y".to_string()).unwrap();
        let j = tx.commit();
        assert_eq!(j.ops.len(), 3);
        assert_eq!(s.dict("S").unwrap().get::<u32>("a").unwrap(), Some(2));
        assert_eq!(
            s.dict("T").unwrap().get::<String>("x").unwrap(),
            Some("y".to_string())
        );
    }

    #[test]
    fn journal_replay_reproduces_state() {
        let mut s1 = BeeState::new();
        let mut tx = TxState::begin(&mut s1);
        tx.put("S", "a", &5u32).unwrap();
        tx.put("S", "b", &6u32).unwrap();
        tx.del("S", "b");
        let j = tx.commit();

        let mut s2 = BeeState::new();
        j.replay(&mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn tx_keys_merges_overlay() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        s.dict_mut("S").put("b", &2u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        tx.del("S", "a");
        tx.put("S", "c", &3u32).unwrap();
        assert_eq!(tx.keys("S"), vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("sw1", &vec![1u64, 2, 3]).unwrap();
        s.dict_mut("T")
            .put("l1", &("sw1".to_string(), "sw2".to_string()))
            .unwrap();
        let snap = s.snapshot().unwrap();
        assert_eq!(BeeState::from_snapshot(&snap).unwrap(), s);
    }

    #[test]
    fn absorb_merges_and_counts_conflicts() {
        let mut a = BeeState::new();
        a.dict_mut("S").put("x", &1u32).unwrap();
        let mut b = BeeState::new();
        b.dict_mut("S").put("y", &2u32).unwrap();
        b.dict_mut("S").put("x", &3u32).unwrap(); // conflict
        let conflicts = a.absorb(b);
        assert_eq!(conflicts, 1);
        assert_eq!(a.dict("S").unwrap().get::<u32>("x").unwrap(), Some(3));
        assert_eq!(a.dict("S").unwrap().get::<u32>("y").unwrap(), Some(2));
    }

    #[test]
    fn written_keys_tracks_writes_only() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        let _ = tx.get::<u32>("S", "a");
        assert_eq!(tx.written_keys().count(), 0);
        tx.put("S", "b", &2u32).unwrap();
        assert_eq!(tx.written_keys().count(), 1);
        tx.put("S", "b", &3u32).unwrap();
        assert_eq!(tx.written_keys().count(), 1); // deduped
    }

    #[test]
    fn snapshot_bytes_match_pre_cow_format() {
        // Pins the wire format: a BeeState must serialize exactly like the
        // old derived `struct BeeState { dicts: BTreeMap<String, Dict> }`
        // with `struct Dict { entries: BTreeMap<String, Vec<u8>> }`.
        #[derive(Serialize)]
        struct OldDict {
            entries: BTreeMap<String, Vec<u8>>,
        }
        #[derive(Serialize)]
        struct OldState {
            dicts: BTreeMap<String, OldDict>,
        }

        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "sw1", &7u64).unwrap();
        tx.put("S", "sw2", &"edge".to_string()).unwrap();
        tx.put("T", "l1", &(1u32, 2u32)).unwrap();
        tx.del("U", "ghost"); // creates empty dict "U", like the old engine
        tx.commit();

        let mut dicts = BTreeMap::new();
        for name in s.dict_names() {
            let d = s.dict(name).unwrap();
            dicts.insert(
                name.clone(),
                OldDict {
                    entries: d.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect(),
                },
            );
        }
        assert_eq!(
            s.snapshot().unwrap(),
            beehive_wire::to_vec(&OldState { dicts }).unwrap()
        );
    }

    #[test]
    fn shared_bytes_serde_matches_vec() {
        let v = vec![0u8, 1, 2, 255, 128, 7];
        let sb = SharedBytes::from(v.clone());
        assert_eq!(
            beehive_wire::to_vec(&sb).unwrap(),
            beehive_wire::to_vec(&v).unwrap()
        );
        let back: SharedBytes =
            beehive_wire::from_slice(&beehive_wire::to_vec(&sb).unwrap()).unwrap();
        assert_eq!(back, sb);
    }

    #[test]
    fn journal_bytes_match_pre_cow_format() {
        #[derive(Serialize)]
        enum OldOp {
            #[allow(dead_code)]
            Put {
                dict: String,
                key: String,
                value: Vec<u8>,
            },
            #[allow(dead_code)]
            Del { dict: String, key: String },
        }
        #[derive(Serialize)]
        struct OldJournal {
            ops: Vec<OldOp>,
        }

        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "a", &42u64).unwrap();
        tx.del("S", "b");
        let j = tx.commit();

        let old = OldJournal {
            ops: vec![
                OldOp::Put {
                    dict: "S".into(),
                    key: "a".into(),
                    value: beehive_wire::to_vec(&42u64).unwrap(),
                },
                OldOp::Del {
                    dict: "S".into(),
                    key: "b".into(),
                },
            ],
        };
        assert_eq!(
            beehive_wire::to_vec(&j).unwrap(),
            beehive_wire::to_vec(&old).unwrap()
        );
    }

    #[test]
    fn savepoint_rollback_unwinds_exactly_one_message() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);

        // Message 1: succeeds.
        let sp1 = tx.savepoint();
        tx.put("S", "a", &10u32).unwrap();
        tx.put("S", "b", &20u32).unwrap();
        let j1 = tx.take_journal_since(&sp1);
        assert_eq!(j1.ops.len(), 2);

        // Message 2: fails — rolled back, message 1's writes survive.
        let sp2 = tx.savepoint();
        tx.put("S", "a", &99u32).unwrap();
        tx.del("S", "b");
        tx.put("S", "c", &3u32).unwrap();
        tx.del("T", "ghost"); // created dict must be un-created
        tx.rollback_to(&sp2);

        // Message 3: succeeds.
        let sp3 = tx.savepoint();
        tx.put("S", "c", &30u32).unwrap();
        let j3 = tx.take_journal_since(&sp3);
        assert_eq!(j3.ops.len(), 1);

        tx.commit();
        assert_eq!(s.dict("S").unwrap().get::<u32>("a").unwrap(), Some(10));
        assert_eq!(s.dict("S").unwrap().get::<u32>("b").unwrap(), Some(20));
        assert_eq!(s.dict("S").unwrap().get::<u32>("c").unwrap(), Some(30));
        assert!(s.dict("T").is_none());
    }

    #[test]
    fn savepoint_era_records_fresh_undo_for_pre_savepoint_writes() {
        // A key written before a savepoint and again after must roll back to
        // its value at the savepoint, not its pre-transaction value.
        let mut s = BeeState::new();
        s.dict_mut("S").put("k", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "k", &2u32).unwrap();
        let sp = tx.savepoint();
        tx.put("S", "k", &3u32).unwrap();
        tx.put("S", "k", &4u32).unwrap(); // second write same era: no new undo
        tx.rollback_to(&sp);
        assert_eq!(tx.get::<u32>("S", "k").unwrap(), Some(2));
        tx.commit();
        assert_eq!(s.dict("S").unwrap().get::<u32>("k").unwrap(), Some(2));
    }

    #[test]
    fn del_creates_dict_like_old_commit_and_rollback_removes_it() {
        // Old engine: commit applied Del via dict_mut, creating an empty
        // dict. Snapshot bytes depend on this, so the quirk is preserved.
        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.del("D", "nope");
        let j = tx.commit();
        assert_eq!(j.ops.len(), 1);
        assert!(s.dict("D").is_some());
        assert!(s.dict("D").unwrap().is_empty());

        // And a rolled-back delete leaves no trace.
        let mut s2 = BeeState::new();
        let mut tx2 = TxState::begin(&mut s2);
        tx2.del("D", "nope");
        tx2.rollback();
        assert!(s2.dict("D").is_none());
    }

    #[test]
    fn rollback_after_absorb_and_snapshot_restore() {
        // Gen stamps reset to 0 across snapshot/absorb; rollback must still
        // restore the exact pre-transaction contents.
        let mut donor = BeeState::new();
        donor.dict_mut("S").put("x", &5u32).unwrap();
        let mut s = BeeState::from_snapshot(&donor.snapshot().unwrap()).unwrap();
        let mut extra = BeeState::new();
        extra.dict_mut("S").put("y", &6u32).unwrap();
        s.absorb(extra);

        let before = s.clone();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "x", &50u32).unwrap();
        tx.del("S", "y");
        tx.put("S", "z", &7u32).unwrap();
        tx.rollback();
        assert_eq!(s, before);
    }
}

#[cfg(test)]
mod cow_equivalence {
    //! Property tests: the COW engine is observationally equivalent to the
    //! clone-based engine it replaced. `RefTx` below is a faithful port of
    //! the old overlay-buffered implementation (including its quirks: every
    //! op journaled in order, `dict_mut` creation on committed deletes).

    use std::collections::{BTreeMap, HashMap};

    use proptest::prelude::*;

    use super::*;

    /// The old engine's state: dict name → (key → value), where a dict may
    /// exist and be empty (the committed-delete quirk).
    #[derive(Debug, Clone, Default, PartialEq)]
    struct RefState {
        dicts: BTreeMap<String, BTreeMap<String, Vec<u8>>>,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum RefOp {
        Put(Vec<u8>),
        Del,
    }

    /// Port of the pre-COW `TxState`: overlay-buffered reads, ops map +
    /// ordered journal, commit applies in journal order via `dict_mut`.
    #[derive(Debug, Default)]
    struct RefTx {
        ops: HashMap<(String, String), RefOp>,
        journal: Vec<(String, String, RefOp)>,
    }

    impl RefTx {
        fn get_raw(&self, base: &RefState, dict: &str, key: &str) -> Option<Vec<u8>> {
            match self.ops.get(&(dict.to_string(), key.to_string())) {
                Some(RefOp::Put(v)) => Some(v.clone()),
                Some(RefOp::Del) => None,
                None => base.dicts.get(dict).and_then(|d| d.get(key)).cloned(),
            }
        }

        fn put_raw(&mut self, dict: &str, key: &str, value: Vec<u8>) {
            self.ops.insert(
                (dict.to_string(), key.to_string()),
                RefOp::Put(value.clone()),
            );
            self.journal
                .push((dict.to_string(), key.to_string(), RefOp::Put(value)));
        }

        fn del(&mut self, dict: &str, key: &str) {
            self.ops
                .insert((dict.to_string(), key.to_string()), RefOp::Del);
            self.journal
                .push((dict.to_string(), key.to_string(), RefOp::Del));
        }

        fn contains(&self, base: &RefState, dict: &str, key: &str) -> bool {
            match self.ops.get(&(dict.to_string(), key.to_string())) {
                Some(RefOp::Put(_)) => true,
                Some(RefOp::Del) => false,
                None => base.dicts.get(dict).is_some_and(|d| d.contains_key(key)),
            }
        }

        fn keys(&self, base: &RefState, dict: &str) -> Vec<String> {
            let mut keys: std::collections::BTreeSet<String> = base
                .dicts
                .get(dict)
                .map(|d| d.keys().cloned().collect())
                .unwrap_or_default();
            for ((d, k), op) in &self.ops {
                if d == dict {
                    match op {
                        RefOp::Put(_) => {
                            keys.insert(k.clone());
                        }
                        RefOp::Del => {
                            keys.remove(k);
                        }
                    }
                }
            }
            keys.into_iter().collect()
        }

        fn commit(self, base: &mut RefState) -> Vec<(String, String, RefOp)> {
            for (dict, key, op) in &self.journal {
                let d = base.dicts.entry(dict.clone()).or_default();
                match op {
                    RefOp::Put(v) => {
                        d.insert(key.clone(), v.clone());
                    }
                    RefOp::Del => {
                        d.remove(key);
                    }
                }
            }
            self.journal
        }
    }

    /// Extracts the observable contents of a [`BeeState`] for comparison,
    /// including empty dicts (they are visible in snapshots and audits).
    fn observe(s: &BeeState) -> RefState {
        let mut out = RefState::default();
        for name in s.dict_names() {
            let d = s.dict(name).unwrap();
            out.dicts.insert(
                name.clone(),
                d.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect(),
            );
        }
        out
    }

    fn journal_to_ref(j: &TxJournal) -> Vec<(String, String, RefOp)> {
        j.ops
            .iter()
            .map(|op| match op {
                JournalOp::Put { dict, key, value } => {
                    (dict.clone(), key.clone(), RefOp::Put(value.to_vec()))
                }
                JournalOp::Del { dict, key } => (dict.clone(), key.clone(), RefOp::Del),
            })
            .collect()
    }

    #[derive(Debug, Clone)]
    enum Op {
        Put(u8, u8, Vec<u8>),
        Del(u8, u8),
        Get(u8, u8),
        Contains(u8, u8),
        Keys(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (
                0..4u8,
                0..8u8,
                proptest::collection::vec(any::<u8>(), 0..16)
            )
                .prop_map(|(d, k, v)| Op::Put(d, k, v)),
            (0..4u8, 0..8u8).prop_map(|(d, k)| Op::Del(d, k)),
            (0..4u8, 0..8u8).prop_map(|(d, k)| Op::Get(d, k)),
            (0..4u8, 0..8u8).prop_map(|(d, k)| Op::Contains(d, k)),
            (0..4u8).prop_map(Op::Keys),
        ]
    }

    fn seed_states(seed: &[(u8, u8, Vec<u8>)]) -> (BeeState, RefState) {
        let mut s = BeeState::new();
        let mut r = RefState::default();
        for (d, k, v) in seed {
            let (dn, kn) = (format!("d{d}"), format!("k{k}"));
            s.dict_mut(&dn).put_raw(kn.clone(), v.clone());
            r.dicts.entry(dn).or_default().insert(kn, v.clone());
        }
        (s, r)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Random op sequences + commit/rollback behave exactly like the
        /// clone-based engine: same read results, same journal, same final
        /// state.
        #[test]
        fn cow_engine_matches_clone_engine(
            seed in proptest::collection::vec(
                (0..4u8, 0..8u8, proptest::collection::vec(any::<u8>(), 0..16)), 0..16),
            ops in proptest::collection::vec(op_strategy(), 0..48),
            commit in any::<bool>(),
        ) {
            let (mut s, mut r) = seed_states(&seed);
            let r_before = r.clone();
            let mut tx = TxState::begin(&mut s);
            let mut rtx = RefTx::default();

            for op in &ops {
                match op {
                    Op::Put(d, k, v) => {
                        let (dn, kn) = (format!("d{d}"), format!("k{k}"));
                        tx.put_raw(&dn, kn.clone(), v.clone());
                        rtx.put_raw(&dn, &kn, v.clone());
                    }
                    Op::Del(d, k) => {
                        let (dn, kn) = (format!("d{d}"), format!("k{k}"));
                        tx.del(&dn, &kn);
                        rtx.del(&dn, &kn);
                    }
                    Op::Get(d, k) => {
                        let (dn, kn) = (format!("d{d}"), format!("k{k}"));
                        let got = tx.get_raw(&dn, &kn).map(|v| v.to_vec());
                        prop_assert_eq!(got, rtx.get_raw(&r, &dn, &kn));
                    }
                    Op::Contains(d, k) => {
                        let (dn, kn) = (format!("d{d}"), format!("k{k}"));
                        prop_assert_eq!(tx.contains(&dn, &kn), rtx.contains(&r, &dn, &kn));
                    }
                    Op::Keys(d) => {
                        let dn = format!("d{d}");
                        prop_assert_eq!(tx.keys(&dn), rtx.keys(&r, &dn));
                    }
                }
            }

            if commit {
                let j = tx.commit();
                let rj = rtx.commit(&mut r);
                prop_assert_eq!(journal_to_ref(&j), rj);
                prop_assert_eq!(observe(&s), r);
            } else {
                let j = tx.rollback();
                prop_assert!(j.is_empty());
                prop_assert_eq!(observe(&s), r_before);
            }
        }

        /// Savepoint semantics: a batch of messages where each either takes
        /// its journal or rolls back must (a) leave the base equal to a
        /// fresh replica built by replaying only the taken journals, and
        /// (b) leave no trace of rolled-back messages.
        #[test]
        fn savepoints_match_replayed_journals(
            seed in proptest::collection::vec(
                (0..4u8, 0..8u8, proptest::collection::vec(any::<u8>(), 0..16)), 0..8),
            batch in proptest::collection::vec(
                (proptest::collection::vec(op_strategy(), 1..12), any::<bool>()), 1..8),
        ) {
            let (mut s, _) = seed_states(&seed);
            let mut replica = s.clone();
            let mut journals: Vec<TxJournal> = Vec::new();

            let mut tx = TxState::begin(&mut s);
            for (ops, ok) in &batch {
                let sp = tx.savepoint();
                for op in ops {
                    match op {
                        Op::Put(d, k, v) => {
                            tx.put_raw(&format!("d{d}"), format!("k{k}"), v.clone())
                        }
                        Op::Del(d, k) => tx.del(&format!("d{d}"), &format!("k{k}")),
                        Op::Get(d, k) => {
                            let _ = tx.get_raw(&format!("d{d}"), &format!("k{k}"));
                        }
                        Op::Contains(d, k) => {
                            let _ = tx.contains(&format!("d{d}"), &format!("k{k}"));
                        }
                        Op::Keys(d) => {
                            let _ = tx.keys(&format!("d{d}"));
                        }
                    }
                }
                if *ok {
                    journals.push(tx.take_journal_since(&sp));
                } else {
                    tx.rollback_to(&sp);
                }
            }
            let rest = tx.commit();
            prop_assert!(rest.is_empty());

            for j in &journals {
                j.replay(&mut replica);
            }
            // Replay applies Put/Del via dict_mut exactly like a committed
            // journal on a replica; primary and replica must agree on
            // observable dict contents. (Empty dicts created by rolled-back
            // deletes were un-created on the primary; replicas never saw
            // them at all.)
            prop_assert_eq!(observe(&s), observe(&replica));
        }
    }
}
