//! Application state: dictionaries of key→value entries with transactions.
//!
//! Each bee owns a [`BeeState`]: the slice of its application's dictionaries
//! corresponding to the cells in its colony. Handlers run inside a
//! transaction ([`TxState`]): writes are buffered and either committed
//! atomically when the handler returns `Ok`, or discarded when it errors —
//! the paper's "dictionaries … with support for transactions".

use std::collections::{BTreeMap, HashMap};

use serde::{de::DeserializeOwned, Deserialize, Serialize};

use crate::error::{Error, Result};

/// A dictionary key. Applications typically use switch ids, MAC addresses,
/// prefixes or virtual-network ids rendered as strings.
pub type Key = String;

/// An encoded dictionary value.
pub type Value = Vec<u8>;

/// One state dictionary: an ordered map of keys to encoded values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dict {
    entries: BTreeMap<Key, Value>,
}

impl Dict {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw get.
    pub fn get_raw(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Typed get: decodes the stored bytes as `T`.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(bytes) => {
                beehive_wire::from_slice(bytes)
                    .map(Some)
                    .map_err(|e| Error::StateDecode {
                        dict: String::new(),
                        key: key.to_string(),
                        source: e,
                    })
            }
        }
    }

    /// Raw put.
    pub fn put_raw(&mut self, key: impl Into<Key>, value: Value) {
        self.entries.insert(key.into(), value);
    }

    /// Typed put: encodes `value` with the wire format.
    pub fn put<T: Serialize>(&mut self, key: impl Into<Key>, value: &T) -> Result<()> {
        self.entries
            .insert(key.into(), beehive_wire::to_vec(value)?);
        Ok(())
    }

    /// Removes a key, returning whether it existed.
    pub fn del(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.entries.keys()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.entries.iter()
    }
}

/// The state a single bee owns: its application dictionaries restricted to
/// the bee's colony.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BeeState {
    dicts: BTreeMap<String, Dict>,
}

impl BeeState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dictionary named `name`, if it has any entries.
    pub fn dict(&self, name: &str) -> Option<&Dict> {
        self.dicts.get(name)
    }

    /// The dictionary named `name`, created on first use.
    pub fn dict_mut(&mut self, name: &str) -> &mut Dict {
        self.dicts.entry(name.to_string()).or_default()
    }

    /// Names of non-empty dictionaries.
    pub fn dict_names(&self) -> impl Iterator<Item = &String> {
        self.dicts.keys()
    }

    /// Total number of entries across all dictionaries.
    pub fn total_entries(&self) -> usize {
        self.dicts.values().map(Dict::len).sum()
    }

    /// Serializes the whole state (migration, colony merges, replication).
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        beehive_wire::to_vec(self).map_err(Error::from)
    }

    /// Restores a state serialized by [`BeeState::snapshot`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self> {
        beehive_wire::from_slice(bytes).map_err(Error::from)
    }

    /// Merges another bee's state into this one (colony merge). Keys from
    /// `other` win on conflict — but by the platform's exclusivity invariant
    /// there should be none; conflicts are counted and reported.
    pub fn absorb(&mut self, other: BeeState) -> usize {
        let mut conflicts = 0;
        for (name, dict) in other.dicts {
            let target = self.dicts.entry(name).or_default();
            for (k, v) in dict.entries {
                if target.entries.insert(k, v).is_some() {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }
}

/// A buffered write.
#[derive(Debug, Clone, PartialEq)]
enum TxOp {
    Put(Value),
    Del,
}

/// A transaction over a [`BeeState`]: reads see through the overlay, writes
/// buffer until [`TxState::commit`].
#[derive(Debug)]
pub struct TxState<'a> {
    base: &'a mut BeeState,
    ops: HashMap<(String, Key), TxOp>,
    /// Ordered journal for deterministic replay (colony replication).
    journal: Vec<(String, Key, TxOp)>,
}

impl<'a> TxState<'a> {
    /// Opens a transaction over `base`.
    pub fn begin(base: &'a mut BeeState) -> Self {
        TxState {
            base,
            ops: HashMap::new(),
            journal: Vec::new(),
        }
    }

    /// Raw read through the overlay.
    pub fn get_raw(&self, dict: &str, key: &str) -> Option<Value> {
        match self.ops.get(&(dict.to_string(), key.to_string())) {
            Some(TxOp::Put(v)) => Some(v.clone()),
            Some(TxOp::Del) => None,
            None => self.base.dict(dict).and_then(|d| d.get_raw(key)).cloned(),
        }
    }

    /// Typed read through the overlay.
    pub fn get<T: DeserializeOwned>(&self, dict: &str, key: &str) -> Result<Option<T>> {
        match self.get_raw(dict, key) {
            None => Ok(None),
            Some(bytes) => {
                beehive_wire::from_slice(&bytes)
                    .map(Some)
                    .map_err(|e| Error::StateDecode {
                        dict: dict.to_string(),
                        key: key.to_string(),
                        source: e,
                    })
            }
        }
    }

    /// Raw buffered write.
    pub fn put_raw(&mut self, dict: &str, key: impl Into<Key>, value: Value) {
        let key = key.into();
        self.ops
            .insert((dict.to_string(), key.clone()), TxOp::Put(value.clone()));
        self.journal.push((dict.to_string(), key, TxOp::Put(value)));
    }

    /// Typed buffered write.
    pub fn put<T: Serialize>(&mut self, dict: &str, key: impl Into<Key>, value: &T) -> Result<()> {
        self.put_raw(dict, key, beehive_wire::to_vec(value)?);
        Ok(())
    }

    /// Buffered delete.
    pub fn del(&mut self, dict: &str, key: &str) {
        self.ops
            .insert((dict.to_string(), key.to_string()), TxOp::Del);
        self.journal
            .push((dict.to_string(), key.to_string(), TxOp::Del));
    }

    /// Whether a key is visible through the overlay.
    pub fn contains(&self, dict: &str, key: &str) -> bool {
        match self.ops.get(&(dict.to_string(), key.to_string())) {
            Some(TxOp::Put(_)) => true,
            Some(TxOp::Del) => false,
            None => self.base.dict(dict).is_some_and(|d| d.contains(key)),
        }
    }

    /// Keys visible through the overlay for `dict`, in order.
    pub fn keys(&self, dict: &str) -> Vec<Key> {
        let mut keys: std::collections::BTreeSet<Key> = self
            .base
            .dict(dict)
            .map(|d| d.keys().cloned().collect())
            .unwrap_or_default();
        for ((d, k), op) in &self.ops {
            if d == dict {
                match op {
                    TxOp::Put(_) => {
                        keys.insert(k.clone());
                    }
                    TxOp::Del => {
                        keys.remove(k);
                    }
                }
            }
        }
        keys.into_iter().collect()
    }

    /// Keys *written* (put or deleted) so far — used by the platform to
    /// detect writes outside the mapped cells.
    pub fn written_keys(&self) -> impl Iterator<Item = (&String, &Key)> {
        self.ops.keys().map(|(d, k)| (d, k))
    }

    /// True if no writes were buffered.
    pub fn is_read_only(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies all buffered writes to the base state, returning the write
    /// journal (for replication).
    pub fn commit(self) -> TxJournal {
        let mut journal = Vec::with_capacity(self.journal.len());
        for (dict, key, op) in self.journal {
            match &op {
                TxOp::Put(v) => self.base.dict_mut(&dict).put_raw(key.clone(), v.clone()),
                TxOp::Del => {
                    self.base.dict_mut(&dict).del(&key);
                }
            }
            journal.push(match op {
                TxOp::Put(v) => JournalOp::Put {
                    dict,
                    key,
                    value: v,
                },
                TxOp::Del => JournalOp::Del { dict, key },
            });
        }
        TxJournal { ops: journal }
    }

    /// Discards all buffered writes.
    pub fn rollback(self) -> TxJournal {
        TxJournal { ops: Vec::new() }
    }
}

/// A committed write, replayable on a replica.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// Set `dict[key] = value`.
    Put {
        /// Dictionary name.
        dict: String,
        /// Entry key.
        key: Key,
        /// Encoded value.
        value: Value,
    },
    /// Remove `dict[key]`.
    Del {
        /// Dictionary name.
        dict: String,
        /// Entry key.
        key: Key,
    },
}

/// The ordered writes of one committed transaction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TxJournal {
    /// Writes in commit order.
    pub ops: Vec<JournalOp>,
}

impl TxJournal {
    /// Whether the transaction wrote anything.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replays the journal onto `state` (colony replication).
    pub fn replay(&self, state: &mut BeeState) {
        for op in &self.ops {
            match op {
                JournalOp::Put { dict, key, value } => {
                    state.dict_mut(dict).put_raw(key.clone(), value.clone())
                }
                JournalOp::Del { dict, key } => {
                    state.dict_mut(dict).del(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_typed_roundtrip() {
        let mut d = Dict::new();
        d.put("k", &42u64).unwrap();
        assert_eq!(d.get::<u64>("k").unwrap(), Some(42));
        assert_eq!(d.get::<u64>("missing").unwrap(), None);
        assert!(d.contains("k"));
        assert!(d.del("k"));
        assert!(!d.del("k"));
    }

    #[test]
    fn dict_decode_error_is_reported() {
        let mut d = Dict::new();
        d.put_raw("k", vec![1]); // not a valid String encoding
        assert!(matches!(
            d.get::<String>("k"),
            Err(Error::StateDecode { .. })
        ));
    }

    #[test]
    fn tx_reads_see_uncommitted_writes() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("sw1", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), Some(1));
        tx.put("S", "sw1", &2u32).unwrap();
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), Some(2));
        tx.del("S", "sw1");
        assert_eq!(tx.get::<u32>("S", "sw1").unwrap(), None);
        assert!(!tx.contains("S", "sw1"));
    }

    #[test]
    fn rollback_discards_everything() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "a", &99u32).unwrap();
        tx.put("S", "b", &100u32).unwrap();
        tx.del("S", "a");
        let j = tx.rollback();
        assert!(j.is_empty());
        assert_eq!(s.dict("S").unwrap().get::<u32>("a").unwrap(), Some(1));
        assert!(!s.dict("S").unwrap().contains("b"));
    }

    #[test]
    fn commit_applies_in_order_and_returns_journal() {
        let mut s = BeeState::new();
        let mut tx = TxState::begin(&mut s);
        tx.put("S", "a", &1u32).unwrap();
        tx.put("S", "a", &2u32).unwrap(); // overwrite within tx
        tx.put("T", "x", &"y".to_string()).unwrap();
        let j = tx.commit();
        assert_eq!(j.ops.len(), 3);
        assert_eq!(s.dict("S").unwrap().get::<u32>("a").unwrap(), Some(2));
        assert_eq!(
            s.dict("T").unwrap().get::<String>("x").unwrap(),
            Some("y".to_string())
        );
    }

    #[test]
    fn journal_replay_reproduces_state() {
        let mut s1 = BeeState::new();
        let mut tx = TxState::begin(&mut s1);
        tx.put("S", "a", &5u32).unwrap();
        tx.put("S", "b", &6u32).unwrap();
        tx.del("S", "b");
        let j = tx.commit();

        let mut s2 = BeeState::new();
        j.replay(&mut s2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn tx_keys_merges_overlay() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        s.dict_mut("S").put("b", &2u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        tx.del("S", "a");
        tx.put("S", "c", &3u32).unwrap();
        assert_eq!(tx.keys("S"), vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("sw1", &vec![1u64, 2, 3]).unwrap();
        s.dict_mut("T")
            .put("l1", &("sw1".to_string(), "sw2".to_string()))
            .unwrap();
        let snap = s.snapshot().unwrap();
        assert_eq!(BeeState::from_snapshot(&snap).unwrap(), s);
    }

    #[test]
    fn absorb_merges_and_counts_conflicts() {
        let mut a = BeeState::new();
        a.dict_mut("S").put("x", &1u32).unwrap();
        let mut b = BeeState::new();
        b.dict_mut("S").put("y", &2u32).unwrap();
        b.dict_mut("S").put("x", &3u32).unwrap(); // conflict
        let conflicts = a.absorb(b);
        assert_eq!(conflicts, 1);
        assert_eq!(a.dict("S").unwrap().get::<u32>("x").unwrap(), Some(3));
        assert_eq!(a.dict("S").unwrap().get::<u32>("y").unwrap(), Some(2));
    }

    #[test]
    fn written_keys_tracks_writes_only() {
        let mut s = BeeState::new();
        s.dict_mut("S").put("a", &1u32).unwrap();
        let mut tx = TxState::begin(&mut s);
        let _ = tx.get::<u32>("S", "a");
        assert_eq!(tx.written_keys().count(), 0);
        tx.put("S", "b", &2u32).unwrap();
        assert_eq!(tx.written_keys().count(), 1);
    }
}
