//! Fault containment: failure classification, the dead-letter queue, and
//! handler-fault injection for tests.
//!
//! Beehive's model promises that a bee is an *isolated* thread of execution
//! over its mapped cells. The supervision layer makes that promise hold under
//! failure: a handler `Err` or panic rolls back the transaction and is
//! contained at the bee boundary — the envelope is redelivered with
//! exponential backoff up to `HiveConfig::max_redeliveries`, then recorded in
//! the hive's [`DeadLetterStore`] (a bounded ring, like
//! [`crate::trace::TraceCollector`]). Bees that fail repeatedly are
//! quarantined by the hive (circuit breaker; see `queen.rs`), and mailboxes
//! can be bounded with an explicit [`OverflowPolicy`].

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::id::{AppName, BeeId};
use crate::message::Envelope;

/// Why a message delivery failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// The handler returned `Err` — the transaction rolled back.
    Error,
    /// The handler panicked — caught at the bee boundary, transaction
    /// rolled back, hive unaffected.
    Panic,
    /// The target bee was quarantined; the message dead-lettered fast
    /// without running the handler.
    Quarantined,
    /// The bee's bounded mailbox was full and the overflow policy rejected
    /// the message.
    MailboxOverflow,
    /// The message was owed to a hive that left the cluster (elastic
    /// scale-in): its reliable channel was retired before the envelope was
    /// acked, so it is dead-lettered instead of retried forever.
    PeerDeparted,
}

impl FailureKind {
    /// Whether this kind counts as a *handler* failure (it ran and failed),
    /// as opposed to an admission failure (quarantine / overflow).
    pub fn is_handler_failure(self) -> bool {
        matches!(self, FailureKind::Error | FailureKind::Panic)
    }

    /// Stable label for metrics exposition.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Error => "error",
            FailureKind::Panic => "panic",
            FailureKind::Quarantined => "quarantined",
            FailureKind::MailboxOverflow => "mailbox_overflow",
            FailureKind::PeerDeparted => "peer_departed",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Best-effort string form of a caught panic payload (`&str` and `String`
/// payloads cover `panic!` with and without formatting).
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// The supervised-redelivery backoff schedule: how long redelivery `attempt`
/// (1-based) of a failed message to `bee` waits before re-entering dispatch.
///
/// The delay is `base * 2^(attempt-1)` capped at `64 * base`, plus a
/// deterministic jitter in `[0, base)` derived from the `(bee, attempt)`
/// pair — so colliding retries of *different* bees spread out without a
/// random source (sans-IO determinism), and the schedule is reproducible
/// across runs and processes.
///
/// Properties (property-tested in `tests/proptest_backoff.rs`):
/// * monotonically non-decreasing in `attempt`,
/// * capped: strictly less than `65 * base` (absent `u64` saturation),
/// * a pure function of `(base_ms, attempt, bee)`.
pub fn backoff_delay_ms(base_ms: u64, attempt: u32, bee: crate::id::BeeId) -> u64 {
    let base = base_ms.max(1);
    // Clamp BEFORE deriving both the exponent and the jitter: past the cap
    // the whole delay is constant, which keeps the schedule non-decreasing
    // (a per-attempt jitter on a capped exponent could otherwise shrink).
    let a = attempt.clamp(1, 7);
    let exp = base.saturating_mul(1u64 << (a - 1));
    let jitter = splitmix64(bee.0 ^ u64::from(a).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % base;
    exp.saturating_add(jitter)
}

/// SplitMix64 finalizer: a cheap, well-distributed hash for jitter
/// derivation (not cryptographic).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What to do when a bounded mailbox ([`crate::hive::HiveConfig::mailbox_capacity`])
/// is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Drop the *oldest* queued message to make room for the new one; the
    /// shed message is dead-lettered so the loss is observable.
    Shed,
    /// Reject the *incoming* message: it goes straight to the dead-letter
    /// queue and the backlog is preserved.
    #[default]
    DeadLetter,
}

/// A message that exhausted its redelivery budget (or was rejected by
/// quarantine / mailbox overflow), with enough context to debug and requeue.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Application whose handler failed.
    pub app: AppName,
    /// Bee the message was addressed to.
    pub bee: BeeId,
    /// Name of the failing handler (empty for admission failures).
    pub handler: String,
    /// Wire name of the message type.
    pub msg_type: String,
    /// Why the final attempt failed.
    pub kind: FailureKind,
    /// Last error string / panic payload (empty for admission failures).
    pub detail: String,
    /// Delivery attempts made (`deliveries + 1` for handler failures).
    pub attempts: u32,
    /// Trace id of the causal chain the message belonged to.
    pub trace_id: u64,
    /// Local-clock ms when the letter was recorded.
    pub recorded_ms: u64,
    /// The envelope itself, kept for requeueing.
    pub envelope: Envelope,
}

/// A bounded ring of recent [`DeadLetter`]s, one per hive.
///
/// Same design as [`crate::trace::TraceCollector`]: writers claim a slot with
/// one atomic fetch-add and lock only that slot, so executor workers and the
/// hive thread never contend except on a full wrap. `recorded` counts every
/// letter ever stored, including overwritten ones — that is the number the
/// `beehive_dead_letters_total` counter reports.
pub struct DeadLetterStore {
    slots: Vec<Mutex<Option<DeadLetter>>>,
    head: AtomicUsize,
    recorded: AtomicU64,
}

impl DeadLetterStore {
    /// A store retaining up to `capacity` letters (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DeadLetterStore {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Number of letters the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total letters ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Letters currently retained.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.lock().is_some()).count()
    }

    /// Whether the ring holds no letters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a letter, overwriting the oldest if the ring is full.
    pub fn record(&self, letter: DeadLetter) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock() = Some(letter);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Clones the retained letters, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        let mut letters: Vec<DeadLetter> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        letters.sort_by_key(|l| l.recorded_ms);
        letters
    }

    /// Removes and returns the retained letters, oldest first. The
    /// `recorded` total is unaffected (it is a monotonic counter).
    pub fn drain(&self) -> Vec<DeadLetter> {
        let mut letters: Vec<DeadLetter> =
            self.slots.iter().filter_map(|s| s.lock().take()).collect();
        letters.sort_by_key(|l| l.recorded_ms);
        letters
    }
}

impl fmt::Debug for DeadLetterStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeadLetterStore")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Test-facing handler-fault injection: fail the next `times` invocations of
/// any handler of `app` triggered by `msg_type` (wire-name suffix match, so
/// tests can say `"Inc"` instead of the full module path).
///
/// Shared between the hive thread and executor workers; consulted right
/// before each handler invocation on both paths.
#[derive(Debug, Default)]
pub struct HandlerFaults {
    entries: Mutex<Vec<FaultEntry>>,
}

#[derive(Debug)]
struct FaultEntry {
    app: String,
    msg_type: String,
    remaining: u32,
}

impl HandlerFaults {
    /// An empty fault table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a fault: the next `times` deliveries of `msg_type` to `app`
    /// fail with an injected error.
    pub fn fail(&self, app: &str, msg_type: &str, times: u32) {
        if times == 0 {
            return;
        }
        self.entries.lock().push(FaultEntry {
            app: app.to_string(),
            msg_type: msg_type.to_string(),
            remaining: times,
        });
    }

    /// Consumes one armed fault for `(app, msg_type)` if any remains.
    pub fn should_fail(&self, app: &str, msg_type: &str) -> bool {
        let mut entries = self.entries.lock();
        let matches = |e: &FaultEntry| {
            e.app == app && (msg_type == e.msg_type || msg_type.ends_with(&e.msg_type))
        };
        let idx = entries.iter().position(matches);
        match idx {
            Some(i) => {
                entries[i].remaining -= 1;
                if entries[i].remaining == 0 {
                    entries.swap_remove(i);
                }
                true
            }
            None => false,
        }
    }

    /// Total armed (unconsumed) failures.
    pub fn armed(&self) -> u32 {
        self.entries.lock().iter().map(|e| e.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::HiveId;
    use crate::message::{Dst, Message, Source};
    use crate::trace::TraceContext;
    use std::sync::Arc;

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Probe;
    crate::impl_message!(Probe);

    fn letter(ms: u64, kind: FailureKind) -> DeadLetter {
        let msg: Arc<dyn Message> = Arc::new(Probe);
        DeadLetter {
            app: "a".into(),
            bee: BeeId::new(HiveId(1), 1),
            handler: "h".into(),
            msg_type: msg.type_name().to_string(),
            kind,
            detail: "boom".into(),
            attempts: 4,
            trace_id: 7,
            recorded_ms: ms,
            envelope: Envelope {
                msg,
                src: Source::External(HiveId(1)),
                dst: Dst::Broadcast,
                trace: TraceContext::root(HiveId(1)),
                deliveries: 3,
            },
        }
    }

    #[test]
    fn ring_overwrites_oldest_but_counts_all() {
        let store = DeadLetterStore::new(2);
        for i in 1..=3 {
            store.record(letter(i, FailureKind::Error));
        }
        assert_eq!(store.recorded(), 3);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].recorded_ms, 2);
        assert_eq!(snap[1].recorded_ms, 3);
    }

    #[test]
    fn drain_empties_retention_not_the_counter() {
        let store = DeadLetterStore::new(4);
        store.record(letter(1, FailureKind::Panic));
        store.record(letter(2, FailureKind::Error));
        let drained = store.drain();
        assert_eq!(drained.len(), 2);
        assert!(store.is_empty());
        assert_eq!(store.recorded(), 2);
        assert!(store.snapshot().is_empty());
    }

    #[test]
    fn failure_kind_classification() {
        assert!(FailureKind::Error.is_handler_failure());
        assert!(FailureKind::Panic.is_handler_failure());
        assert!(!FailureKind::Quarantined.is_handler_failure());
        assert!(!FailureKind::MailboxOverflow.is_handler_failure());
        assert_eq!(FailureKind::Panic.label(), "panic");
    }

    #[test]
    fn fault_table_arms_and_decrements() {
        let faults = HandlerFaults::new();
        faults.fail("counter", "Inc", 2);
        assert_eq!(faults.armed(), 2);
        // Suffix match against the full wire name.
        assert!(faults.should_fail("counter", "my_crate::tests::Inc"));
        assert!(!faults.should_fail("other", "my_crate::tests::Inc"));
        assert!(faults.should_fail("counter", "Inc"));
        assert!(!faults.should_fail("counter", "Inc"), "budget exhausted");
        assert_eq!(faults.armed(), 0);
    }

    #[test]
    fn backoff_is_monotone_capped_and_deterministic() {
        use crate::id::{BeeId, HiveId};
        let bee = BeeId::new(HiveId(3), 7);
        let base = 100u64;
        let mut prev = 0u64;
        for attempt in 1..=20u32 {
            let d = backoff_delay_ms(base, attempt, bee);
            assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            assert!(d < 65 * base, "attempt {attempt}: {d} exceeds the cap");
            assert_eq!(d, backoff_delay_ms(base, attempt, bee), "deterministic");
            prev = d;
        }
        // Past the clamp the delay is constant (same exponent, same jitter).
        assert_eq!(
            backoff_delay_ms(base, 7, bee),
            backoff_delay_ms(base, 19, bee)
        );
        // A zero base behaves like base = 1 (no division by zero).
        assert!(backoff_delay_ms(0, 1, bee) >= 1);
    }
}
