//! Causal message tracing.
//!
//! Every [`crate::message::Envelope`] carries a [`TraceContext`]: a trace id
//! shared by a whole causal chain of messages, a span id unique to this
//! message, and the span id of the message whose handler emitted it. The
//! context is created at external injection ([`TraceContext::root`]),
//! propagated across local emits and the parallel executor by
//! [`TraceContext::child`], and shipped between hives inside
//! [`crate::message::WireEnvelope`] — so a cross-hive chain (e.g. the TE
//! pipeline of Figure 2) can be reassembled end to end.
//!
//! Each hive records one [`TraceSpan`] per handler invocation into a
//! fixed-capacity ring-buffer [`TraceCollector`]; old spans are overwritten,
//! never reallocated, so recording stays O(1) and allocation-free on the hot
//! path apart from the app/type strings. [`chrome_trace`] renders the spans
//! of one trace id as a `chrome://tracing` / Perfetto-compatible JSON array.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;
use crate::id::{AppName, BeeId, HiveId};

/// Process-wide span/trace id counter. Ids only need to be unique within a
/// trace's lifetime; mixing in the hive id keeps them unique across hives
/// without any coordination.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh id: the hive id in the top 20 bits, a process-local
/// counter in the low 44.
fn next_id(hive: HiveId) -> u64 {
    let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed) & ((1 << 44) - 1);
    ((hive.0 as u64) << 44) | seq
}

/// Causal context carried on every envelope.
///
/// `enqueued_ms` is *not* part of the causal identity: it is stamped by the
/// receiving hive's own [`crate::clock::Clock`] when the envelope first
/// enters that hive's dispatch queue, and reset to zero when an envelope is
/// decoded off the wire (hive clocks are not comparable across processes).
/// Queue wait is therefore always measured against a single clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Shared by every message in one causal chain.
    pub trace_id: u64,
    /// Unique to this message (the "message seq" of the chain).
    pub span_id: u64,
    /// Span id of the message whose handler emitted this one; 0 for roots.
    pub parent_span: u64,
    /// Local-clock ms when this envelope entered the current hive's dispatch
    /// queue; 0 = not yet stamped.
    pub enqueued_ms: u64,
}

impl TraceContext {
    /// A fresh root context for an externally injected message.
    pub fn root(hive: HiveId) -> Self {
        let id = next_id(hive);
        TraceContext {
            trace_id: id,
            span_id: id,
            parent_span: 0,
            enqueued_ms: 0,
        }
    }

    /// A child context for a message emitted while handling `self`: same
    /// trace, fresh span, parented on this span.
    pub fn child(&self, hive: HiveId) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(hive),
            parent_span: self.span_id,
            enqueued_ms: 0,
        }
    }

    /// The context as decoded off the wire: causal identity is preserved but
    /// the enqueue stamp (taken against the sender's clock) is cleared.
    pub fn rewired(&self) -> Self {
        TraceContext {
            enqueued_ms: 0,
            ..*self
        }
    }
}

/// One handler invocation, as recorded by a hive's [`TraceCollector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This message's span id.
    pub span_id: u64,
    /// Span id of the causing message (0 for roots).
    pub parent_span: u64,
    /// Hive the handler ran on.
    pub hive: HiveId,
    /// Application.
    pub app: AppName,
    /// Bee that ran the handler.
    pub bee: BeeId,
    /// Wire name of the handled message type.
    pub msg_type: String,
    /// Local-clock ms when the handler started.
    pub start_ms: u64,
    /// Microseconds the envelope waited in local queues before the handler
    /// ran (ms resolution, measured against the hive's [`crate::clock::Clock`]).
    pub queue_wait_us: u64,
    /// Wall nanoseconds spent inside the handler.
    pub runtime_ns: u64,
    /// Whether the handler committed (false = error, transaction rolled back).
    pub ok: bool,
}

/// A fixed-capacity ring buffer of recent [`TraceSpan`]s.
///
/// Writers claim a slot with one atomic fetch-add and then take only that
/// slot's mutex, so concurrent executor workers never contend unless they
/// collide on the same slot after a full wrap.
pub struct TraceCollector {
    slots: Vec<Mutex<Option<TraceSpan>>>,
    head: AtomicUsize,
    recorded: AtomicU64,
}

impl TraceCollector {
    /// A collector retaining up to `capacity` spans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceCollector {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Number of spans the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records a span, overwriting the oldest if the buffer is full.
    pub fn record(&self, span: TraceSpan) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[slot].lock() = Some(span);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// All retained spans, ordered by (start time, span id).
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        let mut spans: Vec<TraceSpan> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        spans.sort_by(|a, b| (a.start_ms, a.span_id).cmp(&(b.start_ms, b.span_id)));
        spans
    }

    /// The retained spans of one trace, in start order.
    pub fn spans_for(&self, trace_id: u64) -> Vec<TraceSpan> {
        let mut spans = self.snapshot();
        spans.retain(|s| s.trace_id == trace_id);
        spans
    }

    /// Renders this collector's view of one trace as chrome-trace JSON.
    /// Cross-hive traces should merge `spans_for` from every hive and call
    /// [`chrome_trace`] instead.
    pub fn chrome_trace(&self, trace_id: u64) -> String {
        chrome_trace(&self.spans_for(trace_id), trace_id)
    }
}

impl fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCollector")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Minimal JSON string escaping for the chrome-trace export.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders spans of one trace as a `chrome://tracing`-compatible JSON array
/// of complete ("X") events: one event per handler invocation, pid = hive,
/// tid = bee, timestamps in microseconds of the recording hive's clock. The
/// causal chain is carried in each event's `args` (`span`, `parent`). Load
/// the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(spans: &[TraceSpan], trace_id: u64) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for s in spans.iter().filter(|s| s.trace_id == trace_id) {
        if !first {
            out.push(',');
        }
        first = false;
        push_span_event(s, &mut out);
    }
    out.push_str("\n]\n");
    out
}

/// Renders one span as a chrome-trace complete ("X") event.
fn push_span_event(s: &TraceSpan, out: &mut String) {
    out.push_str("\n  {\"name\":\"");
    escape_json(crate::analytics::short_type(&s.msg_type), out);
    out.push_str("\",\"cat\":\"");
    escape_json(&s.app, out);
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    out.push_str(&(s.start_ms * 1000).to_string());
    out.push_str(",\"dur\":");
    out.push_str(&(s.runtime_ns / 1_000).max(1).to_string());
    out.push_str(",\"pid\":");
    out.push_str(&s.hive.0.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&s.bee.0.to_string());
    out.push_str(",\"args\":{\"trace\":");
    out.push_str(&s.trace_id.to_string());
    out.push_str(",\"span\":");
    out.push_str(&s.span_id.to_string());
    out.push_str(",\"parent\":");
    out.push_str(&s.parent_span.to_string());
    out.push_str(",\"queue_wait_us\":");
    out.push_str(&s.queue_wait_us.to_string());
    out.push_str(",\"ok\":");
    out.push_str(if s.ok { "true" } else { "false" });
    out.push_str("}}");
}

/// Renders a *cluster* trace — spans gathered from several hives — as one
/// chrome-trace JSON array with a named process lane per hive. Per-hive
/// clocks are not comparable, so timestamps stay in each hive's own
/// timebase; the causal chain (`args.span` / `args.parent`) is the
/// cross-lane link, not the time axis. Spans are deduplicated by
/// `(hive, span_id)` and ordered by (start, span) within the whole array.
pub fn chrome_trace_merged(spans: &[TraceSpan], trace_id: u64) -> String {
    let mut spans: Vec<&TraceSpan> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    spans.sort_by(|a, b| (a.hive, a.span_id, a.start_ms).cmp(&(b.hive, b.span_id, b.start_ms)));
    spans.dedup_by_key(|s| (s.hive, s.span_id));
    spans.sort_by(|a, b| (a.start_ms, a.span_id).cmp(&(b.start_ms, b.span_id)));

    let mut hives: Vec<HiveId> = spans.iter().map(|s| s.hive).collect();
    hives.sort();
    hives.dedup();

    let mut out = String::from("[");
    let mut first = true;
    for h in &hives {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        out.push_str(&h.0.to_string());
        out.push_str(",\"args\":{\"name\":\"hive-");
        out.push_str(&h.0.to_string());
        out.push_str("\"}}");
    }
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        push_span_event(s, &mut out);
    }
    out.push_str("\n]\n");
    out
}

/// Coordinates cross-hive trace assembly between a hive's step loop and
/// outside callers (the HTTP status server, tests).
///
/// A caller [`TraceHub::submit`]s a trace id and blocks in
/// [`TraceHub::wait`]; the owning hive drains the request in its next step
/// via [`TraceHub::take_requests`], broadcasts
/// [`crate::control::ControlMsg::TraceQuery`] to every peer, seeds the
/// pending query with its local spans ([`TraceHub::start`]), and feeds each
/// [`crate::control::ControlMsg::TraceReply`] back through
/// [`TraceHub::add_reply`]. The query completes when every peer answered or
/// when the hive [`TraceHub::expire`]s it — assembly is best-effort by
/// design (an unreachable hive must not wedge introspection), so a result
/// may be partial.
#[derive(Default)]
pub struct TraceHub {
    inner: Mutex<HubInner>,
    cv: parking_lot::Condvar,
    /// The owning hive's clock. When wired ([`TraceHub::set_clock`]),
    /// [`TraceHub::wait`] measures its timeout in this clock's (possibly
    /// virtual) time instead of reading the wall clock directly, so trace
    /// assembly under the simulator expires deterministically with the rest
    /// of the hive.
    clock: Mutex<Option<std::sync::Arc<dyn Clock>>>,
}

#[derive(Default)]
struct HubInner {
    next_query: u64,
    /// Submitted trace ids the hive has not picked up yet.
    requests: Vec<(u64, u64)>,
    pending: std::collections::BTreeMap<u64, PendingQuery>,
}

struct PendingQuery {
    outstanding: usize,
    spans: Vec<TraceSpan>,
    done: bool,
}

impl TraceHub {
    /// A hub with no pending queries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query for `trace_id` and returns its query id. The
    /// caller should wake the owning hive (its handle's `nudge`) and then
    /// [`TraceHub::wait`].
    pub fn submit(&self, trace_id: u64) -> u64 {
        let mut inner = self.inner.lock();
        inner.next_query += 1;
        let qid = inner.next_query;
        inner.requests.push((qid, trace_id));
        qid
    }

    /// Hive-side: drains submitted `(query_id, trace_id)` pairs.
    pub fn take_requests(&self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.inner.lock().requests)
    }

    /// Hive-side: opens the pending query after broadcasting `TraceQuery`
    /// to `outstanding` peers, seeding it with the hive's local spans.
    /// With no peers the query completes immediately.
    pub fn start(&self, query_id: u64, outstanding: usize, local_spans: Vec<TraceSpan>) {
        let mut inner = self.inner.lock();
        inner.pending.insert(
            query_id,
            PendingQuery {
                outstanding,
                spans: local_spans,
                done: outstanding == 0,
            },
        );
        drop(inner);
        self.cv.notify_all();
    }

    /// Hive-side: merges one peer's reply. Unknown query ids (already
    /// expired or delivered) are ignored.
    pub fn add_reply(&self, query_id: u64, spans: Vec<TraceSpan>) {
        let mut inner = self.inner.lock();
        if let Some(p) = inner.pending.get_mut(&query_id) {
            p.spans.extend(spans);
            p.outstanding = p.outstanding.saturating_sub(1);
            if p.outstanding == 0 {
                p.done = true;
            }
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Hive-side: completes the query with whatever has arrived (deadline
    /// hit; some peers never answered).
    pub fn expire(&self, query_id: u64) {
        let mut inner = self.inner.lock();
        if let Some(p) = inner.pending.get_mut(&query_id) {
            p.done = true;
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Non-blocking check: the merged spans if the query completed.
    /// Consumes the query on success.
    pub fn try_result(&self, query_id: u64) -> Option<Vec<TraceSpan>> {
        let mut inner = self.inner.lock();
        if inner.pending.get(&query_id).is_some_and(|p| p.done) {
            let p = inner.pending.remove(&query_id).unwrap();
            return Some(finish_spans(p.spans));
        }
        None
    }

    /// Wires the owning hive's clock so [`TraceHub::wait`] timeouts run in
    /// hive time (virtual under the simulator, wall in production).
    pub fn set_clock(&self, clock: std::sync::Arc<dyn Clock>) {
        *self.clock.lock() = Some(clock);
    }

    /// Blocks until the query completes or `timeout` passes, returning the
    /// merged (possibly partial) spans. Consumes the query.
    ///
    /// With a wired clock the timeout is measured against it; the wall
    /// clock only serves as a safety net of the same duration, so a frozen
    /// simulated clock cannot wedge the calling thread forever.
    pub fn wait(&self, query_id: u64, timeout: std::time::Duration) -> Vec<TraceSpan> {
        let clock = self.clock.lock().clone();
        let virtual_deadline = clock
            .as_ref()
            .map(|c| c.now_ms().saturating_add(timeout.as_millis() as u64));
        let wall_deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let done = inner.pending.get(&query_id).is_some_and(|p| p.done);
            let virtual_expired = match (&clock, virtual_deadline) {
                (Some(c), Some(due)) => c.now_ms() >= due,
                _ => false,
            };
            let now = std::time::Instant::now();
            if done || virtual_expired || now >= wall_deadline {
                let spans = inner
                    .pending
                    .remove(&query_id)
                    .map(|p| p.spans)
                    .unwrap_or_default();
                return finish_spans(spans);
            }
            let mut remaining = wall_deadline.saturating_duration_since(now);
            if clock.is_some() {
                // A virtual clock advances outside the condvar protocol:
                // wake in short slices to re-check the virtual deadline.
                remaining = remaining.min(std::time::Duration::from_millis(10));
            }
            self.cv.wait_for(&mut inner, remaining);
        }
    }
}

impl fmt::Debug for TraceHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TraceHub")
            .field("queued_requests", &inner.requests.len())
            .field("pending", &inner.pending.len())
            .finish()
    }
}

/// Dedupes by `(hive, span_id)` and restores global (start, span) order.
fn finish_spans(mut spans: Vec<TraceSpan>) -> Vec<TraceSpan> {
    spans.sort_by(|a, b| (a.hive, a.span_id, a.start_ms).cmp(&(b.hive, b.span_id, b.start_ms)));
    spans.dedup_by_key(|s| (s.hive, s.span_id));
    spans.sort_by(|a, b| (a.start_ms, a.span_id).cmp(&(b.start_ms, b.span_id)));
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, span_id: u64, parent: u64, start: u64) -> TraceSpan {
        TraceSpan {
            trace_id: trace,
            span_id,
            parent_span: parent,
            hive: HiveId(1),
            app: "te".into(),
            bee: BeeId::new(HiveId(1), 1),
            msg_type: "mod::Stat\"Reply\"".into(),
            start_ms: start,
            queue_wait_us: 5,
            runtime_ns: 2_000,
            ok: true,
        }
    }

    #[test]
    fn root_and_child_are_causally_linked() {
        let root = TraceContext::root(HiveId(3));
        assert_eq!(root.trace_id, root.span_id);
        assert_eq!(root.parent_span, 0);
        let c1 = root.child(HiveId(3));
        let c2 = c1.child(HiveId(4));
        assert_eq!(c1.trace_id, root.trace_id);
        assert_eq!(c2.trace_id, root.trace_id);
        assert_eq!(c1.parent_span, root.span_id);
        assert_eq!(c2.parent_span, c1.span_id);
        assert_ne!(c1.span_id, c2.span_id);
        assert_ne!(c1.span_id, root.span_id);
    }

    #[test]
    fn rewired_clears_only_the_enqueue_stamp() {
        let mut ctx = TraceContext::root(HiveId(1));
        ctx.enqueued_ms = 77;
        let w = ctx.rewired();
        assert_eq!(w.enqueued_ms, 0);
        assert_eq!(w.trace_id, ctx.trace_id);
        assert_eq!(w.span_id, ctx.span_id);
        assert_eq!(w.parent_span, ctx.parent_span);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let c = TraceCollector::new(3);
        for i in 1..=5u64 {
            c.record(span(9, i, 0, i));
        }
        assert_eq!(c.recorded(), 5);
        let spans = c.snapshot();
        assert_eq!(spans.len(), 3);
        let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn spans_for_filters_by_trace() {
        let c = TraceCollector::new(8);
        c.record(span(1, 10, 0, 1));
        c.record(span(2, 20, 0, 2));
        c.record(span(1, 11, 10, 3));
        let spans = c.spans_for(1);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == 1));
        assert_eq!(spans[1].parent_span, spans[0].span_id);
    }

    #[test]
    fn chrome_trace_escapes_and_links() {
        let spans = vec![span(7, 1, 0, 10), span(7, 2, 1, 11), span(8, 3, 0, 12)];
        let json = chrome_trace(&spans, 7);
        // The quoted type name is escaped, trace 8 is excluded.
        assert!(json.contains("Stat\\\"Reply\\\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"span\":2,\"parent\":1"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    fn span_on(hive: u32, trace: u64, span_id: u64, parent: u64, start: u64) -> TraceSpan {
        TraceSpan {
            hive: HiveId(hive),
            bee: BeeId::new(HiveId(hive), 1),
            ..span(trace, span_id, parent, start)
        }
    }

    #[test]
    fn merged_trace_gets_one_named_lane_per_hive_and_dedupes() {
        let spans = vec![
            span_on(1, 7, 10, 0, 5),
            span_on(2, 7, 11, 10, 6),
            span_on(2, 7, 11, 10, 6), // duplicate reply
            span_on(2, 9, 99, 0, 7),  // other trace
        ];
        let json = chrome_trace_merged(&spans, 7);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2, "{json}");
        assert!(json.contains("\"name\":\"hive-1\""));
        assert!(json.contains("\"name\":\"hive-2\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2, "{json}");
        assert!(json.contains("\"span\":11,\"parent\":10"));
        assert!(!json.contains("\"span\":99"));
    }

    #[test]
    fn hub_completes_immediately_with_no_peers() {
        let hub = TraceHub::new();
        let qid = hub.submit(7);
        assert_eq!(hub.take_requests(), vec![(qid, 7)]);
        assert!(hub.take_requests().is_empty(), "drained once");
        hub.start(qid, 0, vec![span(7, 1, 0, 1)]);
        let spans = hub.try_result(qid).expect("no peers => done");
        assert_eq!(spans.len(), 1);
        assert!(hub.try_result(qid).is_none(), "consumed");
    }

    #[test]
    fn hub_merges_replies_and_completes_on_last_peer() {
        let hub = TraceHub::new();
        let qid = hub.submit(7);
        hub.take_requests();
        hub.start(qid, 2, vec![span_on(1, 7, 10, 0, 5)]);
        assert!(hub.try_result(qid).is_none(), "2 peers outstanding");
        hub.add_reply(qid, vec![span_on(2, 7, 11, 10, 6)]);
        assert!(hub.try_result(qid).is_none(), "1 peer outstanding");
        hub.add_reply(qid, vec![]);
        let spans = hub.wait(qid, std::time::Duration::from_millis(1));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span_id, 10);
        assert_eq!(spans[1].parent_span, 10);
    }

    #[test]
    fn hub_expire_yields_partial_result() {
        let hub = TraceHub::new();
        let qid = hub.submit(7);
        hub.take_requests();
        hub.start(qid, 3, vec![span_on(1, 7, 10, 0, 5)]);
        hub.add_reply(qid, vec![span_on(2, 7, 11, 10, 6)]);
        hub.expire(qid);
        let spans = hub.try_result(qid).expect("expired => done");
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn hub_wait_times_out_to_empty_on_unknown_query() {
        let hub = TraceHub::new();
        let spans = hub.wait(12345, std::time::Duration::from_millis(5));
        assert!(spans.is_empty());
    }

    #[test]
    fn hub_wait_expires_in_virtual_time() {
        use crate::clock::SimClock;
        use std::sync::Arc;
        let hub = Arc::new(TraceHub::new());
        let clock = SimClock::new();
        hub.set_clock(Arc::new(clock.clone()));
        let qid = hub.submit(7);
        hub.take_requests();
        hub.start(qid, 1, vec![span_on(1, 7, 10, 0, 5)]);
        // Advance virtual time past the deadline from another thread; the
        // waiter's re-check slices must notice without any notify.
        let t = {
            let clock = clock.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                clock.advance(10_000);
            })
        };
        // Wall safety net is 2s, but virtual expiry should fire in ~30ms.
        let start = std::time::Instant::now();
        let spans = hub.wait(qid, std::time::Duration::from_secs(2));
        t.join().unwrap();
        assert_eq!(spans.len(), 1, "partial result on expiry");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "virtual expiry did not cut the wall wait short"
        );
    }

    #[test]
    fn hub_wait_with_frozen_virtual_clock_hits_the_wall_safety_net() {
        use crate::clock::SimClock;
        use std::sync::Arc;
        let hub = TraceHub::new();
        hub.set_clock(Arc::new(SimClock::new()));
        let qid = hub.submit(7);
        hub.take_requests();
        hub.start(qid, 1, vec![]);
        // Nobody advances the virtual clock: the wall-clock net of the same
        // duration still returns the (empty) partial result.
        let spans = hub.wait(qid, std::time::Duration::from_millis(30));
        assert!(spans.is_empty());
    }
}
