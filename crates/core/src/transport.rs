//! The transport abstraction connecting hives.
//!
//! `beehive-core` defines the interface and a loopback implementation;
//! `beehive-net` provides the in-memory accounted fabric used by the
//! simulator and a TCP transport for real deployments.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::id::HiveId;

/// Category of a frame, used by transports for control-channel bandwidth
/// accounting (Figure 4d–f of the paper break down consumption over time).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum FrameKind {
    /// Application message relays (serialized [`crate::message::WireEnvelope`]).
    App,
    /// Registry Raft traffic.
    Raft,
    /// Platform control traffic (migration, merges, forwarding).
    Control,
}

/// A unit of inter-hive transmission.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Frame {
    /// Traffic category.
    pub kind: FrameKind,
    /// Serialized payload.
    pub bytes: Vec<u8>,
}

impl Frame {
    /// An application-relay frame.
    pub fn app(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::App,
            bytes,
        }
    }

    /// A Raft frame.
    pub fn raft(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Raft,
            bytes,
        }
    }

    /// A control frame.
    pub fn control(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Control,
            bytes,
        }
    }

    /// Payload size plus a small fixed header estimate, for accounting.
    pub fn wire_len(&self) -> usize {
        self.bytes.len() + 8
    }
}

impl FrameKind {
    /// All frame kinds, in the order used by [`TransportCounters`].
    pub const ALL: [FrameKind; 3] = [FrameKind::App, FrameKind::Raft, FrameKind::Control];

    /// Stable lowercase label, used by metric exposition.
    pub fn label(self) -> &'static str {
        match self {
            FrameKind::App => "app",
            FrameKind::Raft => "raft",
            FrameKind::Control => "control",
        }
    }

    fn index(self) -> usize {
        match self {
            FrameKind::App => 0,
            FrameKind::Raft => 1,
            FrameKind::Control => 2,
        }
    }
}

/// Thread-safe per-[`FrameKind`] traffic counters a transport records into.
///
/// Real transports (TCP) bump these from their send path and reader threads;
/// the exposition layer snapshots them into per-kind Prometheus counters.
/// Byte counts use [`Frame::wire_len`] so they match the simulator fabric's
/// accounting.
#[derive(Debug, Default)]
pub struct TransportCounters {
    frames_out: [AtomicU64; 3],
    bytes_out: [AtomicU64; 3],
    frames_in: [AtomicU64; 3],
    bytes_in: [AtomicU64; 3],
    connect_failures: AtomicU64,
    /// Frames queued for later delivery instead of sent (dead-peer backoff
    /// window); flushed on reconnect, so deferred ≠ lost.
    deferred: AtomicU64,
    /// Frames evicted from a full deferred queue — unlike deferrals these
    /// never reach the wire; recovery is up to whatever layer retransmits
    /// the evicted kind (the reliable channel for App, Raft for Raft).
    deferred_evicted: AtomicU64,
    /// Current dead-peer backoff window per peer, ms (absent = healthy).
    peer_backoff_ms: Mutex<BTreeMap<u32, u64>>,
}

impl TransportCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame sent toward a peer.
    pub fn record_out(&self, kind: FrameKind, wire_len: usize) {
        let i = kind.index();
        self.frames_out[i].fetch_add(1, Ordering::Relaxed);
        self.bytes_out[i].fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Records one frame received from a peer.
    pub fn record_in(&self, kind: FrameKind, wire_len: usize) {
        let i = kind.index();
        self.frames_in[i].fetch_add(1, Ordering::Relaxed);
        self.bytes_in[i].fetch_add(wire_len as u64, Ordering::Relaxed);
    }

    /// Records one failed connect attempt toward `peer` and the backoff
    /// window the transport will now apply to it.
    pub fn record_connect_failure(&self, peer: HiveId, backoff_ms: u64) {
        self.connect_failures.fetch_add(1, Ordering::Relaxed);
        self.peer_backoff_ms.lock().insert(peer.0, backoff_ms);
    }

    /// Records a successful connect to `peer`: its backoff resets.
    pub fn record_connect_success(&self, peer: HiveId) {
        self.peer_backoff_ms.lock().remove(&peer.0);
    }

    /// Records one frame deferred (queued instead of sent) because its peer
    /// is dead or inside a backoff window.
    pub fn record_deferred(&self) {
        self.deferred.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one frame evicted from a full deferred queue (dropped
    /// without ever reaching the wire).
    pub fn record_deferred_evicted(&self) {
        self.deferred_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// The current backoff window applied to `peer`, if it is backed off.
    pub fn peer_backoff_ms(&self, peer: HiveId) -> Option<u64> {
        self.peer_backoff_ms.lock().get(&peer.0).copied()
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> TransportSnapshot {
        let read = |a: &[AtomicU64; 3]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
            ]
        };
        TransportSnapshot {
            frames_out: read(&self.frames_out),
            bytes_out: read(&self.bytes_out),
            frames_in: read(&self.frames_in),
            bytes_in: read(&self.bytes_in),
            connect_failures: self.connect_failures.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            deferred_evicted: self.deferred_evicted.load(Ordering::Relaxed),
            peer_backoff_ms: self
                .peer_backoff_ms
                .lock()
                .iter()
                .map(|(&p, &ms)| (p, ms))
                .collect(),
        }
    }
}

/// Point-in-time copy of [`TransportCounters`], indexed by
/// [`FrameKind::ALL`] order (App, Raft, Control).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TransportSnapshot {
    /// Frames sent per kind.
    pub frames_out: [u64; 3],
    /// Wire bytes sent per kind.
    pub bytes_out: [u64; 3],
    /// Frames received per kind.
    pub frames_in: [u64; 3],
    /// Wire bytes received per kind.
    pub bytes_in: [u64; 3],
    /// Total failed connect attempts to any peer.
    pub connect_failures: u64,
    /// Frames queued for retransmission on reconnect instead of sent (the
    /// peer was dead or backed off). Deferred frames are not lost.
    pub deferred: u64,
    /// Frames evicted from a full deferred queue. These *are* dropped;
    /// App/Raft evictions are recovered by retransmission above this
    /// layer, Control evictions are not.
    pub deferred_evicted: u64,
    /// Peers currently in a dead-peer backoff window: `(hive, backoff ms)`.
    pub peer_backoff_ms: Vec<(u32, u64)>,
}

impl TransportSnapshot {
    /// `(frames, bytes)` sent for `kind`.
    pub fn sent(&self, kind: FrameKind) -> (u64, u64) {
        let i = kind.index();
        (self.frames_out[i], self.bytes_out[i])
    }

    /// `(frames, bytes)` received for `kind`.
    pub fn received(&self, kind: FrameKind) -> (u64, u64) {
        let i = kind.index();
        (self.frames_in[i], self.bytes_in[i])
    }
}

/// Which TCP engine a deployment runs its inter-hive wire on.
///
/// Both engines speak the same wire format (mixed clusters interoperate)
/// and the same [`Transport`] semantics — the conformance suite in
/// `beehive-net` holds them to that. The threaded engine remains for one
/// release as the differential baseline; see DESIGN.md §3.14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum TransportPreference {
    /// Non-blocking reactor: one event loop owns all peer sockets, sends
    /// are enqueues onto per-peer rings, flushes are vectored writes.
    #[default]
    Reactor,
    /// Classic engine: a blocking reader thread per connection, writes on
    /// the caller's thread. Deprecated — kept one release as baseline.
    Threaded,
}

impl TransportPreference {
    /// Stable lowercase label (CLI flag value, metric label).
    pub fn label(self) -> &'static str {
        match self {
            TransportPreference::Reactor => "reactor",
            TransportPreference::Threaded => "threaded",
        }
    }
}

impl std::str::FromStr for TransportPreference {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reactor" => Ok(TransportPreference::Reactor),
            "threaded" => Ok(TransportPreference::Threaded),
            other => Err(format!(
                "unknown transport {other:?} (expected \"reactor\" or \"threaded\")"
            )),
        }
    }
}

/// A hive's endpoint into the inter-hive network.
pub trait Transport: Send {
    /// The hive this endpoint belongs to.
    fn local(&self) -> HiveId;
    /// Queues a frame toward `to`. Delivery is asynchronous and may fail
    /// silently on partition (Beehive's protocols tolerate loss by retrying
    /// above Raft or by Raft itself).
    fn send(&self, to: HiveId, frame: Frame);
    /// Non-blocking receive of the next inbound frame.
    fn try_recv(&self) -> Option<(HiveId, Frame)>;
    /// All other hives reachable through this transport.
    fn peers(&self) -> Vec<HiveId>;
    /// Registers a wakeup callback to invoke whenever a new inbound frame
    /// becomes available. `Hive::run` parks its thread when idle and relies
    /// on this to wake promptly; transports without background threads (the
    /// loopback, the simulator fabric) can ignore it — the caller drives
    /// them synchronously.
    fn set_waker(&mut self, _waker: std::sync::Arc<dyn Fn() + Send + Sync>) {}
    /// Hands the transport the hive's flight-recorder journal so it can
    /// record peer connect/disconnect and deferred-eviction events.
    /// Transports without connection lifecycles (the loopback, the
    /// simulator fabric) can ignore it.
    fn set_events(&mut self, _events: std::sync::Arc<crate::events::EventJournal>) {}
    /// Adds `peer` (reachable at `addr`) to the peer set at runtime — a hive
    /// that just joined the cluster. Idempotent; the address format is
    /// transport-specific (`host:port` for TCP, ignored by the in-memory
    /// fabric). Transports with a fixed peer set ignore it.
    fn connect_peer(&self, _peer: HiveId, _addr: &str) {}
    /// Removes `peer` from the peer set at runtime — a hive that left the
    /// cluster. Returns any frames the transport was still holding for it
    /// (deferred-queue contents), so the caller can dead-letter application
    /// payloads instead of silently dropping them. Idempotent.
    fn disconnect_peer(&self, _peer: HiveId) -> Vec<Frame> {
        Vec::new()
    }
}

/// Single-hive transport: sends to self loop back, sends to anyone else are
/// dropped. Useful for standalone hives and unit tests.
pub struct Loopback {
    id: HiveId,
    queue: Mutex<VecDeque<Frame>>,
}

impl Loopback {
    /// A loopback endpoint for `id`.
    pub fn new(id: HiveId) -> Self {
        Loopback {
            id,
            queue: Mutex::new(VecDeque::new()),
        }
    }
}

impl Transport for Loopback {
    fn local(&self) -> HiveId {
        self.id
    }

    fn send(&self, to: HiveId, frame: Frame) {
        if to == self.id {
            self.queue.lock().push_back(frame);
        }
        // Frames to other hives are dropped: a loopback hive has no peers.
    }

    fn try_recv(&self) -> Option<(HiveId, Frame)> {
        self.queue.lock().pop_front().map(|f| (self.id, f))
    }

    fn peers(&self) -> Vec<HiveId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_to_self_only() {
        let t = Loopback::new(HiveId(1));
        t.send(HiveId(1), Frame::app(vec![1]));
        t.send(HiveId(2), Frame::app(vec![2]));
        let (from, f) = t.try_recv().unwrap();
        assert_eq!(from, HiveId(1));
        assert_eq!(f.bytes, vec![1]);
        assert!(t.try_recv().is_none());
    }

    #[test]
    fn frame_wire_len_includes_header() {
        assert_eq!(Frame::raft(vec![0; 10]).wire_len(), 18);
    }

    #[test]
    fn transport_counters_track_per_kind_traffic() {
        let c = TransportCounters::new();
        c.record_out(FrameKind::App, 100);
        c.record_out(FrameKind::App, 50);
        c.record_in(FrameKind::Raft, 8);
        let snap = c.snapshot();
        assert_eq!(snap.sent(FrameKind::App), (2, 150));
        assert_eq!(snap.sent(FrameKind::Raft), (0, 0));
        assert_eq!(snap.received(FrameKind::Raft), (1, 8));
        assert_eq!(snap.received(FrameKind::Control), (0, 0));
        assert_eq!(FrameKind::ALL[0].label(), "app");
    }

    #[test]
    fn transport_preference_parses_and_defaults_to_reactor() {
        assert_eq!(TransportPreference::default(), TransportPreference::Reactor);
        assert_eq!(
            "reactor".parse::<TransportPreference>().unwrap(),
            TransportPreference::Reactor
        );
        assert_eq!(
            "threaded".parse::<TransportPreference>().unwrap(),
            TransportPreference::Threaded
        );
        assert!("epoll".parse::<TransportPreference>().is_err());
        assert_eq!(TransportPreference::Reactor.label(), "reactor");
        assert_eq!(TransportPreference::Threaded.label(), "threaded");
    }

    #[test]
    fn connect_backoff_is_tracked_per_peer() {
        let c = TransportCounters::new();
        assert_eq!(c.peer_backoff_ms(HiveId(2)), None);
        c.record_connect_failure(HiveId(2), 500);
        c.record_connect_failure(HiveId(2), 1000);
        c.record_connect_failure(HiveId(3), 500);
        c.record_deferred();
        c.record_deferred();
        assert_eq!(c.peer_backoff_ms(HiveId(2)), Some(1000));
        let snap = c.snapshot();
        assert_eq!(snap.connect_failures, 3);
        assert_eq!(snap.deferred, 2);
        assert_eq!(snap.peer_backoff_ms, vec![(2, 1000), (3, 500)]);
        c.record_connect_success(HiveId(2));
        assert_eq!(c.peer_backoff_ms(HiveId(2)), None);
        assert_eq!(c.snapshot().peer_backoff_ms, vec![(3, 500)]);
        assert_eq!(c.snapshot().connect_failures, 3, "monotonic");
    }
}
