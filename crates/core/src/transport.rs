//! The transport abstraction connecting hives.
//!
//! `beehive-core` defines the interface and a loopback implementation;
//! `beehive-net` provides the in-memory accounted fabric used by the
//! simulator and a TCP transport for real deployments.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::id::HiveId;

/// Category of a frame, used by transports for control-channel bandwidth
/// accounting (Figure 4d–f of the paper break down consumption over time).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum FrameKind {
    /// Application message relays (serialized [`crate::message::WireEnvelope`]).
    App,
    /// Registry Raft traffic.
    Raft,
    /// Platform control traffic (migration, merges, forwarding).
    Control,
}

/// A unit of inter-hive transmission.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Frame {
    /// Traffic category.
    pub kind: FrameKind,
    /// Serialized payload.
    pub bytes: Vec<u8>,
}

impl Frame {
    /// An application-relay frame.
    pub fn app(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::App,
            bytes,
        }
    }

    /// A Raft frame.
    pub fn raft(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Raft,
            bytes,
        }
    }

    /// A control frame.
    pub fn control(bytes: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Control,
            bytes,
        }
    }

    /// Payload size plus a small fixed header estimate, for accounting.
    pub fn wire_len(&self) -> usize {
        self.bytes.len() + 8
    }
}

/// A hive's endpoint into the inter-hive network.
pub trait Transport: Send {
    /// The hive this endpoint belongs to.
    fn local(&self) -> HiveId;
    /// Queues a frame toward `to`. Delivery is asynchronous and may fail
    /// silently on partition (Beehive's protocols tolerate loss by retrying
    /// above Raft or by Raft itself).
    fn send(&self, to: HiveId, frame: Frame);
    /// Non-blocking receive of the next inbound frame.
    fn try_recv(&self) -> Option<(HiveId, Frame)>;
    /// All other hives reachable through this transport.
    fn peers(&self) -> Vec<HiveId>;
    /// Registers a wakeup callback to invoke whenever a new inbound frame
    /// becomes available. `Hive::run` parks its thread when idle and relies
    /// on this to wake promptly; transports without background threads (the
    /// loopback, the simulator fabric) can ignore it — the caller drives
    /// them synchronously.
    fn set_waker(&mut self, _waker: std::sync::Arc<dyn Fn() + Send + Sync>) {}
}

/// Single-hive transport: sends to self loop back, sends to anyone else are
/// dropped. Useful for standalone hives and unit tests.
pub struct Loopback {
    id: HiveId,
    queue: Mutex<VecDeque<Frame>>,
}

impl Loopback {
    /// A loopback endpoint for `id`.
    pub fn new(id: HiveId) -> Self {
        Loopback {
            id,
            queue: Mutex::new(VecDeque::new()),
        }
    }
}

impl Transport for Loopback {
    fn local(&self) -> HiveId {
        self.id
    }

    fn send(&self, to: HiveId, frame: Frame) {
        if to == self.id {
            self.queue.lock().push_back(frame);
        }
        // Frames to other hives are dropped: a loopback hive has no peers.
    }

    fn try_recv(&self) -> Option<(HiveId, Frame)> {
        self.queue.lock().pop_front().map(|f| (self.id, f))
    }

    fn peers(&self) -> Vec<HiveId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_to_self_only() {
        let t = Loopback::new(HiveId(1));
        t.send(HiveId(1), Frame::app(vec![1]));
        t.send(HiveId(2), Frame::app(vec![2]));
        let (from, f) = t.try_recv().unwrap();
        assert_eq!(from, HiveId(1));
        assert_eq!(f.bytes, vec![1]);
        assert!(t.try_recv().is_none());
    }

    #[test]
    fn frame_wire_len_includes_header() {
        assert_eq!(Frame::raft(vec![0; 10]).wire_len(), 18);
    }
}
