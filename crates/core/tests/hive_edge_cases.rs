//! Edge cases of the hive runtime: orphan expiry, ambiguous handlers, step
//! budgets, rollback atomicity, ticks, singleton pinning, instrumentation
//! content and feedback plumbing.

use std::sync::Arc;

use beehive_core::prelude::*;
use beehive_core::{Dst, Envelope, HiveConfig, Source, TraceContext};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ping {
    key: String,
}
beehive_core::impl_message!(Ping);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Boom;
beehive_core::impl_message!(Boom);

fn standalone(tick_ms: u64) -> Hive {
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = tick_ms;
    Hive::new(
        cfg,
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    )
}

fn sim_hive(clock: SimClock, orphan_ttl_ms: u64) -> Hive {
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.orphan_ttl_ms = orphan_ttl_ms;
    Hive::new(cfg, Arc::new(clock), Box::new(Loopback::new(HiveId(1))))
}

fn counter() -> App {
    App::builder("counter")
        .handle::<Ping>(
            |m| Mapped::cell("c", &m.key),
            |m, ctx| {
                let n: u64 = ctx
                    .get("c", &m.key)
                    .map_err(|e| e.to_string())?
                    .unwrap_or(0);
                ctx.put("c", m.key.clone(), &(n + 1))
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
        )
        .build()
}

#[test]
fn orphans_expire_after_ttl() {
    let clock = SimClock::new();
    let mut hive = sim_hive(clock.clone(), 500);
    hive.install(counter());
    // A direct-addressed message for a bee that will never exist.
    let ghost = BeeId::new(HiveId(9), 99);
    let env = Envelope {
        msg: Arc::new(Ping { key: "x".into() }),
        src: Source::External(HiveId(1)),
        trace: TraceContext::root(HiveId(1)),
        deliveries: 0,
        dst: Dst::Bee {
            app: "counter".into(),
            bee: ghost,
            handler: None,
            fence: 0,
        },
    };
    hive.handle().send(env);
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.counters().dropped_orphans, 0, "still parked");
    clock.advance(1_000);
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.counters().dropped_orphans, 1, "TTL expired → dropped");
}

#[test]
fn fence_ahead_of_applied_seq_parks_until_catchup() {
    let clock = SimClock::new();
    let mut hive = sim_hive(clock.clone(), 0);
    hive.install(counter());
    // Create the bee for key "k" so a real target exists.
    hive.emit(Ping { key: "k".into() });
    hive.step_until_quiescent(1_000);
    let (bee, _) = hive.local_bees("counter")[0];
    // A message fenced far in the future parks...
    let env = Envelope {
        msg: Arc::new(Ping { key: "k".into() }),
        src: Source::External(HiveId(1)),
        trace: TraceContext::root(HiveId(1)),
        deliveries: 0,
        dst: Dst::Bee {
            app: "counter".into(),
            bee,
            handler: None,
            fence: 1_000,
        },
    };
    hive.handle().send(env);
    hive.step_until_quiescent(1_000);
    let count: u64 = hive.peek_state("counter", bee, "c", "k").unwrap();
    assert_eq!(count, 1, "fenced message must not run yet");
    // ...and applying more registry events (new keys) advances the counter —
    // though reaching 1000 would take 999 more; instead verify it expires
    // rather than running early.
    clock.advance(60_000);
    hive.step_until_quiescent(10_000);
    assert_eq!(hive.counters().dropped_orphans, 1);
    let count: u64 = hive.peek_state("counter", bee, "c", "k").unwrap();
    assert_eq!(count, 1);
}

#[test]
fn ambiguous_unicast_is_dropped_and_counted() {
    let mut hive = standalone(0);
    // Two handlers for the same message type: a bee-addressed message with
    // no handler index is ambiguous.
    hive.install(
        App::builder("multi")
            .handle::<Ping>(|m| Mapped::cell("a", &m.key), |_m, _c| Ok(()))
            .handle::<Ping>(|m| Mapped::cell("b", &m.key), |_m, _c| Ok(()))
            .build(),
    );
    hive.emit(Ping { key: "k".into() });
    hive.step_until_quiescent(1_000);
    let bees = hive.local_bees("multi");
    assert_eq!(bees.len(), 2, "broadcast offer reached both handlers");
    let env = Envelope {
        msg: Arc::new(Ping { key: "k".into() }),
        src: Source::External(HiveId(1)),
        trace: TraceContext::root(HiveId(1)),
        deliveries: 0,
        dst: Dst::Bee {
            app: "multi".into(),
            bee: bees[0].0,
            handler: None,
            fence: 0,
        },
    };
    hive.handle().send(env);
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.counters().dropped_ambiguous, 1);
}

#[test]
fn step_budget_bounds_work_per_call() {
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.step_budget = 10;
    let mut hive = Hive::new(
        cfg,
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(counter());
    for i in 0..100 {
        hive.emit(Ping {
            key: format!("k{i}"),
        });
    }
    let w1 = hive.step();
    assert!(w1 <= 10 + 2, "budget respected (got {w1})");
    // Everything still completes across steps.
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.local_bee_count("counter"), 100);
}

#[test]
fn handler_error_rolls_back_all_writes_and_emissions() {
    let seen = Arc::new(Mutex::new(0usize));
    let seen2 = seen.clone();
    // No redeliveries: this test asserts the effects of exactly one failed
    // attempt (a wall-clock backoff could otherwise elapse on a slow runner).
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 0;
    cfg.max_redeliveries = 0;
    let mut hive = Hive::new(
        cfg,
        Arc::new(SystemClock::new()),
        Box::new(Loopback::new(HiveId(1))),
    );
    hive.install(
        App::builder("bomb")
            .handle::<Boom>(
                |_m| Mapped::cell("s", "x"),
                |_m, ctx| {
                    ctx.put("s", "a", &1u64).map_err(|e| e.to_string())?;
                    ctx.emit(Ping {
                        key: "should-not-escape".into(),
                    });
                    Err("kaboom".into())
                },
            )
            .build(),
    );
    hive.install(
        App::builder("watcher")
            .handle::<Ping>(
                |m| Mapped::cell("w", &m.key),
                move |_m, _c| {
                    *seen2.lock() += 1;
                    Ok(())
                },
            )
            .build(),
    );
    hive.emit(Boom);
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.counters().handler_errors, 1);
    assert_eq!(
        *seen.lock(),
        0,
        "emissions from failed handlers are discarded"
    );
    let (bee, _) = hive.local_bees("bomb")[0];
    assert_eq!(
        hive.peek_state::<u64>("bomb", bee, "s", "a"),
        None,
        "write rolled back"
    );
}

#[test]
fn ticks_fire_on_schedule_in_virtual_time() {
    let clock = SimClock::new();
    let mut cfg = HiveConfig::standalone(HiveId(1));
    cfg.tick_interval_ms = 1000;
    let mut hive = Hive::new(
        cfg,
        Arc::new(clock.clone()),
        Box::new(Loopback::new(HiveId(1))),
    );
    let ticks = Arc::new(Mutex::new(Vec::new()));
    let t2 = ticks.clone();
    hive.install(
        App::builder("ticker")
            .handle_local::<Tick>("t", move |t, _c| {
                t2.lock().push(t.seq);
                Ok(())
            })
            .build(),
    );
    for _ in 0..5 {
        clock.advance(1000);
        hive.step_until_quiescent(1_000);
    }
    assert_eq!(ticks.lock().clone(), vec![1, 2, 3, 4, 5]);
}

#[test]
fn singletons_are_per_hive_and_never_in_registry() {
    let mut hive = standalone(0);
    let hits = Arc::new(Mutex::new(0usize));
    let h2 = hits.clone();
    hive.install(
        App::builder("single")
            .handle_local::<Ping>("local", move |_m, _c| {
                *h2.lock() += 1;
                Ok(())
            })
            .build(),
    );
    hive.emit(Ping { key: "a".into() });
    hive.emit(Ping { key: "b".into() });
    hive.step_until_quiescent(1_000);
    assert_eq!(*hits.lock(), 2);
    assert_eq!(
        hive.local_bee_count("single"),
        1,
        "one singleton for all keys"
    );
    assert_eq!(
        hive.registry_view().bee_count(),
        0,
        "singletons stay out of the registry"
    );
}

#[test]
fn instrumentation_captures_messages_bytes_and_matrix() {
    let mut hive = standalone(0);
    hive.install(counter());
    hive.emit(Ping { key: "k".into() });
    hive.emit(Ping { key: "k".into() });
    hive.step_until_quiescent(1_000);
    let instr = hive.instrumentation();
    let instr = instr.lock();
    let (_, stats) = instr.bees.iter().next().expect("bee instrumented");
    assert_eq!(stats.msgs_in, 2);
    assert!(stats.bytes_in > 0);
    assert_eq!(stats.external_in, 2, "external emits counted separately");
    // External sources don't enter the bee-to-bee matrix.
    assert!(instr.msg_matrix.is_empty());
}

#[test]
fn emissions_between_bees_build_the_matrix_and_provenance() {
    let mut hive = standalone(0);
    hive.install(
        App::builder("relay")
            .handle::<Boom>(
                |_m| Mapped::cell("r", "x"),
                |_m, ctx| {
                    ctx.emit(Ping {
                        key: "derived".into(),
                    });
                    Ok(())
                },
            )
            .build(),
    );
    hive.install(counter());
    hive.emit(Boom);
    hive.step_until_quiescent(1_000);
    let instr = hive.instrumentation();
    let instr = instr.lock();
    assert_eq!(
        instr.msg_matrix.get(&(1, 1)).copied(),
        Some(1),
        "bee→bee local delivery"
    );
    assert_eq!(instr.provenance.len(), 1, "Boom → Ping provenance recorded");
    let ratios = instr.provenance_ratios();
    assert_eq!(ratios.len(), 1);
    assert!((ratios[0].1 - 1.0).abs() < 1e-9, "one Ping per Boom");
}

#[test]
fn preclaim_pins_cells_before_traffic() {
    let mut hive = standalone(0);
    hive.install(counter());
    hive.preclaim("counter", vec![Cell::new("c", "pinned")]);
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.local_bee_count("counter"), 1);
    let owner = hive
        .registry_view()
        .owner("counter", &Cell::new("c", "pinned"));
    assert!(owner.is_some());
    // Traffic for the key lands on the preclaimed bee.
    hive.emit(Ping {
        key: "pinned".into(),
    });
    hive.step_until_quiescent(1_000);
    assert_eq!(hive.local_bee_count("counter"), 1);
}
