//! Property tests for the platform's central guarantees.
//!
//! * **Collocation**: after any stream of messages, every dictionary key is
//!   owned by exactly one bee, and messages with intersecting mapped cells
//!   were all processed by the same bee (paper §3).
//! * **Transaction serializability**: the platform's per-bee execution gives
//!   the same final state as a sequential reference interpreter.
//! * **Registry determinism**: any command sequence applied to two copies of
//!   the registry yields identical states (the precondition for replicating
//!   it with Raft).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use beehive_core::prelude::*;
use beehive_core::registry::{RegistryCommand, RegistryOp, RegistryState};
use parking_lot::Mutex;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Touch {
    keys: Vec<String>,
    add: u64,
}
beehive_core::impl_message!(Touch);

/// App: every message maps to all its keys (forcing collocation/merges) and
/// adds `add` to each key's counter. Also records which bee processed it.
#[allow(clippy::type_complexity)]
fn touch_app(trace: Arc<Mutex<Vec<(Vec<String>, BeeId)>>>) -> App {
    App::builder("touch")
        .handle::<Touch>(
            |m| Mapped::cells(m.keys.iter().map(|k| Cell::new("t", k))),
            move |m, ctx| {
                for k in &m.keys {
                    let v: u64 = ctx.get("t", k).map_err(|e| e.to_string())?.unwrap_or(0);
                    ctx.put("t", k.clone(), &(v + m.add))
                        .map_err(|e| e.to_string())?;
                }
                trace.lock().push((m.keys.clone(), ctx.bee()));
                Ok(())
            },
        )
        .build()
}

fn arb_msg() -> impl Strategy<Value = Touch> {
    (proptest::collection::btree_set(0u8..8, 1..4), 1u64..10).prop_map(|(keys, add)| Touch {
        keys: keys.into_iter().map(|k| format!("k{k}")).collect(),
        add,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn collocation_and_serializability(msgs in proptest::collection::vec(arb_msg(), 1..40)) {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let mut cfg = beehive_core::HiveConfig::standalone(HiveId(1));
        cfg.tick_interval_ms = 0;
        let mut hive = Hive::new(
            cfg,
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        );
        hive.install(touch_app(trace.clone()));
        for m in &msgs {
            hive.emit(m.clone());
        }
        hive.step_until_quiescent(1_000_000);

        // Reference: sequential interpretation.
        let mut expect: BTreeMap<String, u64> = BTreeMap::new();
        for m in &msgs {
            for k in &m.keys {
                *expect.entry(k.clone()).or_insert(0) += m.add;
            }
        }

        // 1. Every key owned by exactly one bee; state matches the reference.
        let mirror = hive.registry_view();
        let mut owner_state: BTreeMap<String, u64> = BTreeMap::new();
        for (k, v) in &expect {
            let bee = mirror.owner("touch", &Cell::new("t", k));
            prop_assert!(bee.is_some(), "key {k} has no owner");
            let got: Option<u64> = hive.peek_state("touch", bee.unwrap(), "t", k);
            prop_assert_eq!(got, Some(*v), "key {} diverged from sequential reference", k);
            owner_state.insert(k.clone(), *v);
        }

        // 2. Messages with intersecting key sets were processed by the same
        //    FINAL owner's colony: replay the trace against the final owner
        //    map — each message's keys must share one owner.
        for (keys, _bee) in trace.lock().iter() {
            let owners: std::collections::BTreeSet<_> = keys
                .iter()
                .map(|k| mirror.owner("touch", &Cell::new("t", k)).unwrap())
                .collect();
            prop_assert_eq!(owners.len(), 1, "message keys {:?} span colonies", keys);
        }

        // 3. No errors, conflicts or drops along the way.
        prop_assert_eq!(hive.counters().handler_errors, 0);
        prop_assert_eq!(hive.counters().assign_conflicts, 0);
        prop_assert_eq!(hive.counters().dropped_orphans, 0);
    }

    #[test]
    fn registry_applies_deterministically(
        ops in proptest::collection::vec((0u8..4, 0u8..6, 0u8..6, 1u8..4), 1..60)
    ) {
        // Build a command stream from the tuple soup.
        let mut cmds = Vec::new();
        for (i, (kind, a, b, n)) in ops.into_iter().enumerate() {
            let bee = BeeId::new(HiveId((a % 3 + 1) as u32), b as u32);
            let op = match kind {
                0 => RegistryOp::LookupOrCreate {
                    app: format!("app{}", a % 2),
                    cells: (0..n).map(|j| Cell::new("d", format!("k{}", (b + j) % 8))).collect(),
                    new_bee: BeeId::new(HiveId(1), i as u32 + 100),
                },
                1 => RegistryOp::MoveBee { bee, to: HiveId((b % 3 + 1) as u32) },
                2 => RegistryOp::AssignCells {
                    bee,
                    cells: vec![Cell::new("d", format!("x{a}"))],
                },
                _ => RegistryOp::RemoveBee { bee },
            };
            cmds.push(RegistryCommand { origin: HiveId((a % 3 + 1) as u32), seq: i as u64, op });
        }
        let mut r1 = RegistryState::new();
        let mut r2 = RegistryState::new();
        for c in &cmds {
            let e1 = r1.apply_command(c);
            let e2 = r2.apply_command(c);
            prop_assert_eq!(e1, e2, "events diverged");
        }
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn registry_snapshot_roundtrip_mid_stream(
        ops in proptest::collection::vec((0u8..6, 1u8..4), 1..40),
        cut in 0usize..40,
    ) {
        use beehive_raft::StateMachine;
        let mut live = RegistryState::new();
        let mut restored = RegistryState::new();
        let mut snapshotted = false;
        for (i, (a, n)) in ops.iter().enumerate() {
            let cmd = RegistryCommand {
                origin: HiveId(1),
                seq: i as u64,
                op: RegistryOp::LookupOrCreate {
                    app: "a".into(),
                    cells: (0..*n).map(|j| Cell::new("d", format!("k{}", (a + j) % 10))).collect(),
                    new_bee: BeeId::new(HiveId(1), i as u32),
                },
            };
            live.apply_command(&cmd);
            if i == cut && !snapshotted {
                restored.restore(&live.snapshot());
                snapshotted = true;
            } else if snapshotted {
                restored.apply_command(&cmd);
            }
        }
        if !snapshotted {
            restored.restore(&live.snapshot());
        }
        prop_assert_eq!(live, restored, "snapshot+replay must equal live application");
    }
}

/// Non-proptest sanity: the trace-based collocation check actually fires on
/// a crafted violation (guards against the property being vacuous).
#[test]
fn collocation_check_is_not_vacuous() {
    let mirror = {
        let mut r = RegistryState::new();
        r.apply_command(&RegistryCommand {
            origin: HiveId(1),
            seq: 1,
            op: RegistryOp::LookupOrCreate {
                app: "touch".into(),
                cells: vec![Cell::new("t", "a")],
                new_bee: BeeId::new(HiveId(1), 1),
            },
        });
        r.apply_command(&RegistryCommand {
            origin: HiveId(1),
            seq: 2,
            op: RegistryOp::LookupOrCreate {
                app: "touch".into(),
                cells: vec![Cell::new("t", "b")],
                new_bee: BeeId::new(HiveId(1), 2),
            },
        });
        r
    };
    let mut owners = HashMap::new();
    for k in ["a", "b"] {
        owners.insert(k, mirror.owner("touch", &Cell::new("t", k)).unwrap());
    }
    assert_ne!(
        owners["a"], owners["b"],
        "distinct keys may have distinct owners"
    );
}
