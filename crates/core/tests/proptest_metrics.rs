//! Property tests for the latency histograms: whatever is observed and
//! however histograms are merged, the per-bucket counts always sum to the
//! number of observations, the sum of observations is preserved, and the p99
//! never reports below an actually-observed value's bucket.

use beehive_core::{LatencyHistogram, LATENCY_BUCKETS_US};
use proptest::prelude::*;

fn observe_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn bucket_counts_sum_to_observation_count(values in proptest::collection::vec(0u64..20_000_000, 0..200)) {
        let h = observe_all(&values);
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        prop_assert_eq!(h.sum_us, values.iter().sum::<u64>());
        prop_assert_eq!(h.is_empty(), values.is_empty());
    }

    #[test]
    fn merge_preserves_the_sum_invariant(
        a in proptest::collection::vec(0u64..20_000_000, 0..100),
        b in proptest::collection::vec(0u64..20_000_000, 0..100),
    ) {
        let mut ha = observe_all(&a);
        let hb = observe_all(&b);
        ha.merge(&hb);
        prop_assert_eq!(ha.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(ha.buckets.iter().sum::<u64>(), ha.count);
        // Merging must equal observing the concatenation directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = observe_all(&all);
        prop_assert_eq!(ha.buckets, direct.buckets);
        prop_assert_eq!(ha.sum_us, direct.sum_us);
    }

    #[test]
    fn p99_is_a_bucket_upper_bound_at_or_above_the_max(values in proptest::collection::vec(0u64..5_000_000, 1..200)) {
        let h = observe_all(&values);
        let p99 = h.p99_us().expect("non-empty histogram has a p99");
        let max = *values.iter().max().unwrap();
        // p99 is reported as a bucket upper bound; with <100 observations it
        // must cover the maximum observation's bucket.
        if values.len() < 100 {
            prop_assert!(p99 >= max.min(*LATENCY_BUCKETS_US.last().unwrap()),
                "p99 {} < max {} over {} obs", p99, max, values.len());
        }
        prop_assert!(
            LATENCY_BUCKETS_US.contains(&p99) || p99 == 2 * LATENCY_BUCKETS_US[LATENCY_BUCKETS_US.len() - 1],
            "p99 {} is not a bucket bound", p99
        );
    }
}
