//! Per-peer outbound machinery shared by both TCP engines: the encoded
//! frame ring with vectored batched flushes ([`SendRing`]) and the
//! dead-peer connect backoff schedule ([`ConnectBackoff`]).
//!
//! The ring is the reactor's whole send path: a hive `send()` is an encode
//! plus a queue push under a briefly-held lock, and the reactor later
//! coalesces up to [`FLUSH_BATCH`] queued frames into a single
//! `writev`-style syscall. While a peer is down the same ring doubles as
//! the deferred queue, bounded at [`DEFERRED_CAP`] with the eviction
//! priorities the reliable-delivery layer depends on (App first — the
//! channel retransmits those — then Raft, Control only as a last resort).

use std::collections::VecDeque;
use std::io::{IoSlice, Write};

use beehive_core::transport::{Frame, FrameKind};
use beehive_core::HiveId;

use crate::frame::HEADER_LEN;

/// First dead-peer backoff window after a failed connect.
pub const BACKOFF_BASE_MS: u64 = 500;
/// Dead-peer backoff cap: a long-dead peer is probed at least this often.
pub const BACKOFF_CAP_MS: u64 = 10_000;
/// Jitter range added to each window so restarting clusters don't reconnect
/// in lockstep.
pub const BACKOFF_JITTER_MS: u64 = 250;
/// Per-peer cap on frames queued while the peer is down; past it one queued
/// frame is evicted (everything above this layer retransmits App and Raft).
pub const DEFERRED_CAP: usize = 1024;
/// Maximum frames one vectored flush hands the kernel per syscall.
pub const FLUSH_BATCH: usize = 64;

/// Per-peer reconnect state: consecutive failures and the current window.
#[derive(Debug, Clone, Copy)]
pub struct ConnectBackoff {
    /// Consecutive failed connect attempts.
    pub failures: u32,
    /// When the last attempt failed.
    pub last_fail: std::time::Instant,
    /// How long sends are deferred without probing.
    pub window: std::time::Duration,
}

impl ConnectBackoff {
    /// Records one more failure against `peer` and returns the new window
    /// in milliseconds.
    pub fn bump(entry: &mut Option<ConnectBackoff>, peer: HiveId) -> u64 {
        let failures = entry.map(|b| b.failures).unwrap_or(0).saturating_add(1);
        let window_ms = backoff_window_ms(peer, failures);
        *entry = Some(ConnectBackoff {
            failures,
            last_fail: std::time::Instant::now(),
            window: std::time::Duration::from_millis(window_ms),
        });
        window_ms
    }

    /// Whether the window is still open (sends should defer, not probe).
    pub fn active(&self) -> bool {
        self.last_fail.elapsed() < self.window
    }

    /// Time until the window closes (zero if it already has).
    pub fn remaining(&self) -> std::time::Duration {
        self.window.saturating_sub(self.last_fail.elapsed())
    }
}

/// Exponential backoff with deterministic jitter: `base * 2^(failures-1)`,
/// capped, plus a per-peer/attempt offset (no RNG dependency — spread, not
/// unpredictability, is what matters here).
pub fn backoff_window_ms(peer: HiveId, failures: u32) -> u64 {
    let exp = BACKOFF_BASE_MS << u64::from(failures.saturating_sub(1).min(5));
    let jitter = (u64::from(peer.0) * 31 + u64::from(failures) * 17) % BACKOFF_JITTER_MS;
    exp.min(BACKOFF_CAP_MS) + jitter
}

/// One encoded frame queued for a peer: the full wire bytes (header +
/// payload) plus what the accounting layer needs.
#[derive(Debug)]
pub struct EncodedFrame {
    /// `None` for the connection handshake, which is neither accounted in
    /// [`beehive_core::transport::TransportCounters`] nor surrendered to
    /// callers on disconnect.
    pub kind: Option<FrameKind>,
    /// Encoded wire bytes (header + payload).
    pub bytes: Vec<u8>,
    /// The [`Frame::wire_len`] accounting size (payload + 8), kept so ring
    /// counters match the threaded engine byte for byte.
    pub acct_len: usize,
}

impl EncodedFrame {
    /// Recovers the transport-level [`Frame`] (payload without the wire
    /// header) for surrender on [`disconnect`]; `None` for handshakes.
    ///
    /// [`disconnect`]: beehive_core::transport::Transport::disconnect_peer
    pub fn into_frame(self) -> Option<Frame> {
        let kind = self.kind?;
        Some(Frame {
            kind,
            bytes: self.bytes[HEADER_LEN..].to_vec(),
        })
    }
}

/// What one [`SendRing::flush`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Every queued frame reached the kernel.
    Drained,
    /// The socket stopped accepting bytes (`WouldBlock`); the rest stays
    /// queued and the caller should poll for writability.
    WouldBlock,
}

/// Outbound byte ring for one peer: FIFO of encoded frames with a byte
/// offset into the head frame, flushed with vectored writes.
#[derive(Debug, Default)]
pub struct SendRing {
    frames: VecDeque<EncodedFrame>,
    /// Bytes of the head frame already handed to the kernel on the current
    /// connection. Reset when the connection dies: the remote discards a
    /// torn frame with its socket, so the head retransmits from byte 0.
    head_offset: usize,
    queued_bytes: usize,
}

impl SendRing {
    /// An empty ring.
    pub fn new() -> Self {
        SendRing::default()
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total encoded bytes still to be written.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Appends a frame to the back of the ring.
    pub fn push(&mut self, frame: EncodedFrame) {
        self.queued_bytes += frame.bytes.len();
        self.frames.push_back(frame);
    }

    /// Puts a frame at the *front* of the ring — used for the handshake a
    /// freshly established connection must emit before any queued traffic.
    /// Only legal while the head is unwritten (a fresh connection).
    pub fn push_front(&mut self, frame: EncodedFrame) {
        debug_assert_eq!(self.head_offset, 0, "cannot preempt a torn frame");
        self.queued_bytes += frame.bytes.len();
        self.frames.push_front(frame);
    }

    /// Forgets partial-write progress after a connection died (see
    /// [`SendRing::head_offset`]).
    pub fn reset_progress(&mut self) {
        self.head_offset = 0;
    }

    /// Evicts one queued frame to make room, preferring the oldest App
    /// frame (the reliable channel retransmits those), then the oldest Raft
    /// frame (Raft retransmits its own traffic), and only as a last resort
    /// a Control frame — Control has no retransmission layer above TCP, so
    /// dropping it is real loss. The partially-written head (if any) is
    /// never evicted. Returns the victim's ring index and kind, or `None`
    /// if the ring held nothing evictable.
    pub fn evict_lowest(&mut self) -> Option<(usize, FrameKind)> {
        let first = usize::from(self.head_offset > 0);
        let pick = |want: FrameKind, frames: &VecDeque<EncodedFrame>| {
            frames
                .iter()
                .enumerate()
                .skip(first)
                .find(|(_, f)| f.kind == Some(want))
                .map(|(i, _)| i)
        };
        let victim = pick(FrameKind::App, &self.frames)
            .or_else(|| pick(FrameKind::Raft, &self.frames))
            .or_else(|| pick(FrameKind::Control, &self.frames))?;
        let frame = self.frames.remove(victim).expect("index in bounds");
        self.queued_bytes -= frame.bytes.len();
        frame.kind.map(|k| (victim, k))
    }

    /// Surrenders every queued frame (for
    /// [`beehive_core::transport::Transport::disconnect_peer`]).
    pub fn drain_frames(&mut self) -> Vec<EncodedFrame> {
        self.head_offset = 0;
        self.queued_bytes = 0;
        self.frames.drain(..).collect()
    }

    /// Flushes queued frames down `w` with vectored writes, coalescing up
    /// to [`FLUSH_BATCH`] frames per syscall, until the ring drains or the
    /// socket pushes back. `on_frame(kind, acct_len)` fires once per frame
    /// fully handed to the kernel (skipping handshakes), which is where the
    /// transport counters tick.
    pub fn flush<W: Write>(
        &mut self,
        w: &mut W,
        mut on_frame: impl FnMut(FrameKind, usize),
    ) -> std::io::Result<FlushOutcome> {
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(FLUSH_BATCH.min(self.frames.len()));
            for (i, f) in self.frames.iter().take(FLUSH_BATCH).enumerate() {
                let bytes = if i == 0 {
                    &f.bytes[self.head_offset..]
                } else {
                    &f.bytes[..]
                };
                slices.push(IoSlice::new(bytes));
            }
            let mut written = match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return Ok(FlushOutcome::WouldBlock)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.queued_bytes -= written;
            // Retire fully-written frames; stash partial progress on the head.
            while written > 0 {
                let remaining = self.frames[0].bytes.len() - self.head_offset;
                if written >= remaining {
                    written -= remaining;
                    self.head_offset = 0;
                    let done = self.frames.pop_front().expect("non-empty");
                    if let Some(kind) = done.kind {
                        on_frame(kind, done.acct_len);
                    }
                } else {
                    self.head_offset += written;
                    written = 0;
                }
            }
        }
        Ok(FlushOutcome::Drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, KIND_APP, KIND_CONTROL, KIND_HANDSHAKE, KIND_RAFT};

    fn app_frame(b: u8) -> EncodedFrame {
        let payload = vec![b];
        EncodedFrame {
            kind: Some(FrameKind::App),
            bytes: encode_frame(HiveId(1), KIND_APP, &payload),
            acct_len: payload.len() + 8,
        }
    }

    fn kind_frame(kind: FrameKind, wire_kind: u8, b: u8) -> EncodedFrame {
        EncodedFrame {
            kind: Some(kind),
            bytes: encode_frame(HiveId(1), wire_kind, &[b]),
            acct_len: 9,
        }
    }

    /// A writer that accepts at most `cap` bytes per call — exercises the
    /// partial-write bookkeeping the way a full socket buffer would.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        block_after: Option<usize>,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.block_after == Some(0) {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            if let Some(n) = self.block_after.as_mut() {
                *n -= 1;
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            // Flatten so the cap applies across slices, like a socket.
            let mut budget = self.cap;
            if self.block_after == Some(0) {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            if let Some(n) = self.block_after.as_mut() {
                *n -= 1;
            }
            let mut total = 0;
            for b in bufs {
                if budget == 0 {
                    break;
                }
                let n = b.len().min(budget);
                self.out.extend_from_slice(&b[..n]);
                budget -= n;
                total += n;
            }
            Ok(total)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_coalesces_and_preserves_order() {
        let mut ring = SendRing::new();
        let mut expect = Vec::new();
        for b in 0..10u8 {
            let f = app_frame(b);
            expect.extend_from_slice(&f.bytes);
            ring.push(f);
        }
        let mut w = Throttled {
            out: Vec::new(),
            cap: usize::MAX,
            block_after: None,
        };
        let mut flushed = 0;
        let outcome = ring.flush(&mut w, |_, _| flushed += 1).unwrap();
        assert_eq!(outcome, FlushOutcome::Drained);
        assert_eq!(flushed, 10);
        assert_eq!(w.out, expect, "wire bytes are the frames in FIFO order");
        assert!(ring.is_empty());
        assert_eq!(ring.queued_bytes(), 0);
    }

    #[test]
    fn partial_writes_resume_mid_frame() {
        let mut ring = SendRing::new();
        let mut expect = Vec::new();
        for b in 0..5u8 {
            let f = app_frame(b);
            expect.extend_from_slice(&f.bytes);
            ring.push(f);
        }
        // 7 bytes per syscall: every frame (10 bytes) is torn across calls.
        let mut w = Throttled {
            out: Vec::new(),
            cap: 7,
            block_after: None,
        };
        let outcome = ring.flush(&mut w, |_, _| {}).unwrap();
        assert_eq!(outcome, FlushOutcome::Drained);
        assert_eq!(w.out, expect);
    }

    #[test]
    fn would_block_keeps_the_tail_queued() {
        let mut ring = SendRing::new();
        for b in 0..4u8 {
            ring.push(app_frame(b));
        }
        let mut w = Throttled {
            out: Vec::new(),
            cap: 10, // exactly one frame per call
            block_after: Some(2),
        };
        let mut flushed = 0;
        let outcome = ring.flush(&mut w, |_, _| flushed += 1).unwrap();
        assert_eq!(outcome, FlushOutcome::WouldBlock);
        assert_eq!(flushed, 2);
        assert_eq!(ring.len(), 2);
        // A later flush continues where the socket stopped.
        let mut w2 = Throttled {
            out: Vec::new(),
            cap: usize::MAX,
            block_after: None,
        };
        ring.flush(&mut w2, |_, _| flushed += 1).unwrap();
        assert_eq!(flushed, 4);
    }

    #[test]
    fn eviction_prefers_app_then_raft_then_control() {
        let mut ring = SendRing::new();
        ring.push(kind_frame(FrameKind::Control, KIND_CONTROL, 0));
        ring.push(kind_frame(FrameKind::Raft, KIND_RAFT, 1));
        ring.push(kind_frame(FrameKind::App, KIND_APP, 2));
        ring.push(kind_frame(FrameKind::App, KIND_APP, 3));
        assert_eq!(ring.evict_lowest(), Some((2, FrameKind::App)));
        assert_eq!(ring.evict_lowest(), Some((2, FrameKind::App)));
        assert_eq!(ring.evict_lowest(), Some((1, FrameKind::Raft)));
        assert_eq!(ring.evict_lowest(), Some((0, FrameKind::Control)));
        assert_eq!(ring.evict_lowest(), None);
        assert_eq!(ring.queued_bytes(), 0);
    }

    #[test]
    fn handshakes_are_unaccounted_and_not_surrendered() {
        let mut ring = SendRing::new();
        ring.push(app_frame(1));
        ring.push_front(EncodedFrame {
            kind: None,
            bytes: encode_frame(HiveId(1), KIND_HANDSHAKE, &[]),
            acct_len: 0,
        });
        let mut w = Throttled {
            out: Vec::new(),
            cap: usize::MAX,
            block_after: None,
        };
        let mut accounted = 0;
        ring.flush(&mut w, |_, _| accounted += 1).unwrap();
        assert_eq!(accounted, 1, "the handshake is not accounted");
        // The handshake bytes still went first on the wire.
        assert_eq!(
            &w.out[..9],
            &encode_frame(HiveId(1), KIND_HANDSHAKE, &[])[..]
        );

        let mut ring2 = SendRing::new();
        ring2.push(EncodedFrame {
            kind: None,
            bytes: encode_frame(HiveId(1), KIND_HANDSHAKE, &[]),
            acct_len: 0,
        });
        ring2.push(app_frame(9));
        let surrendered: Vec<Frame> = ring2
            .drain_frames()
            .into_iter()
            .filter_map(EncodedFrame::into_frame)
            .collect();
        assert_eq!(surrendered.len(), 1);
        assert_eq!(surrendered[0].kind, FrameKind::App);
        assert_eq!(surrendered[0].bytes, vec![9]);
    }

    #[test]
    fn backoff_window_grows_and_caps() {
        let p = HiveId(3);
        let jitter = |f: u32| (u64::from(p.0) * 31 + u64::from(f) * 17) % BACKOFF_JITTER_MS;
        assert_eq!(backoff_window_ms(p, 1), 500 + jitter(1));
        assert_eq!(backoff_window_ms(p, 2), 1000 + jitter(2));
        assert_eq!(backoff_window_ms(p, 5), 8000 + jitter(5));
        // 500 << 5 = 16s exceeds the cap; deeper failure counts stay capped.
        assert_eq!(backoff_window_ms(p, 6), 10_000 + jitter(6));
        assert_eq!(backoff_window_ms(p, 60), 10_000 + jitter(60));
    }

    #[test]
    fn connect_backoff_bump_tracks_consecutive_failures() {
        let mut entry = None;
        let w1 = ConnectBackoff::bump(&mut entry, HiveId(2));
        assert!(w1 >= BACKOFF_BASE_MS);
        assert!(entry.unwrap().active());
        let w2 = ConnectBackoff::bump(&mut entry, HiveId(2));
        assert!(w2 > w1, "window grows with consecutive failures");
        assert_eq!(entry.unwrap().failures, 2);
        assert!(entry.unwrap().remaining() <= entry.unwrap().window);
    }
}
