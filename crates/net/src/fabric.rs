//! The in-memory fabric: connects any number of hives in one process with
//! full accounting and fault injection. Drives in virtual or real time —
//! latency is expressed against the shared [`Clock`].

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use beehive_core::clock::Clock;
use beehive_core::transport::{Frame, FrameKind, Transport};
use beehive_core::HiveId;
use parking_lot::Mutex;

use crate::matrix::TrafficMatrix;

/// Fault-injection knobs. Wire faults (`drop_rate`, `latency_ms`) are
/// applied by the fabric at send time; handler faults are forwarded to every
/// hive's [`beehive_core::HandlerFaults`] table by `SimCluster::set_faults`
/// (the fabric itself never sees handler invocations).
#[derive(Debug, Clone, Default)]
pub struct FabricFaults {
    /// Probability in `[0, 1]` that a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability in `[0, 1]` that a frame is enqueued *before* the frame
    /// already at the back of the receiver's queue (a one-slot reorder —
    /// enough to break any accidental FIFO assumption).
    pub reorder_rate: f64,
    /// Fixed delivery latency in ms.
    pub latency_ms: u64,
    /// Additional per-frame latency: a deterministic uniform draw from
    /// `[0, jitter_ms]` added on top of `latency_ms`.
    pub jitter_ms: u64,
    /// Handler faults to arm on every hive: `(app, msg_type, times)` — the
    /// next `times` deliveries of `msg_type` (wire-name suffix match) to
    /// `app` fail with an injected error.
    pub handler_faults: Vec<(String, String, u32)>,
}

/// Running totals of every frame the fabric intentionally lost, cloned or
/// reordered, split by [`FrameKind`] where conservation audits need it. The
/// chaos harness balances `dropped_app`/`duplicated_app` against hive
/// counters to prove no message vanished *unaccounted*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// App frames dropped (drop coin, partition, or down receiver/sender).
    pub dropped_app: u64,
    /// Raft frames dropped.
    pub dropped_raft: u64,
    /// Control frames dropped.
    pub dropped_control: u64,
    /// App frames delivered twice (the extra copy is counted, not the pair).
    pub duplicated_app: u64,
    /// Raft frames delivered twice.
    pub duplicated_raft: u64,
    /// Control frames delivered twice.
    pub duplicated_control: u64,
    /// Frames enqueued out of order (any kind).
    pub reordered: u64,
}

impl FaultStats {
    fn count_drop(&mut self, kind: FrameKind) {
        match kind {
            FrameKind::App => self.dropped_app += 1,
            FrameKind::Raft => self.dropped_raft += 1,
            FrameKind::Control => self.dropped_control += 1,
        }
    }

    fn count_duplicate(&mut self, kind: FrameKind) {
        match kind {
            FrameKind::App => self.duplicated_app += 1,
            FrameKind::Raft => self.duplicated_raft += 1,
            FrameKind::Control => self.duplicated_control += 1,
        }
    }
}

/// Per-kind counts of the frames [`MemFabric::clear_queue`] discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClearedFrames {
    /// App frames discarded.
    pub app: u64,
    /// Raft frames discarded.
    pub raft: u64,
    /// Control frames discarded.
    pub control: u64,
}

impl FabricFaults {
    /// Arms a handler fault: the next `times` deliveries of `msg_type` to
    /// `app` fail (builder-style, chainable).
    pub fn fail_handler(
        mut self,
        app: impl Into<String>,
        msg_type: impl Into<String>,
        times: u32,
    ) -> Self {
        self.handler_faults
            .push((app.into(), msg_type.into(), times));
        self
    }
}

struct InFlight {
    deliver_at_ms: u64,
    from: HiveId,
    frame: Frame,
}

struct Shared {
    clock: Arc<dyn Clock>,
    queues: Mutex<std::collections::BTreeMap<u32, VecDeque<InFlight>>>,
    matrix: Mutex<TrafficMatrix>,
    partitions: Mutex<HashSet<(u32, u32)>>,
    faults: Mutex<FabricFaults>,
    rng: Mutex<u64>, // xorshift state for fault coins (deterministic)
    stats: Mutex<FaultStats>,
    down: Mutex<HashSet<u32>>, // crashed hives: frames to/from them are lost
    /// Hive roster. Behind a lock because elastic membership grows and
    /// shrinks it at runtime (join adds a queue, departure retires one).
    hives: Mutex<Vec<HiveId>>,
}

impl Shared {
    /// Adds `id` to the roster (idempotent) and ensures it has a queue.
    fn add_hive(&self, id: HiveId) {
        let mut hives = self.hives.lock();
        if !hives.contains(&id) {
            hives.push(id);
        }
        self.queues.lock().entry(id.0).or_default();
    }

    /// Next xorshift64* draw as a raw u64.
    fn rng_u64(&self) -> u64 {
        let mut rng = self.rng.lock();
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    }

    /// Next deterministic uniform draw in `[0, 1)`.
    fn roll(&self) -> f64 {
        (self.rng_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An in-process fabric connecting a fixed set of hives.
#[derive(Clone)]
pub struct MemFabric {
    shared: Arc<Shared>,
}

impl MemFabric {
    /// A fabric for `hives`, accounting into 1-second buckets by default.
    pub fn new(hives: Vec<HiveId>, clock: Arc<dyn Clock>) -> Self {
        Self::with_bucket(hives, clock, 1000)
    }

    /// A fabric with a custom accounting bucket width.
    pub fn with_bucket(hives: Vec<HiveId>, clock: Arc<dyn Clock>, bucket_ms: u64) -> Self {
        let queues = hives.iter().map(|h| (h.0, VecDeque::new())).collect();
        MemFabric {
            shared: Arc::new(Shared {
                clock,
                queues: Mutex::new(queues),
                matrix: Mutex::new(TrafficMatrix::new(bucket_ms)),
                partitions: Mutex::new(HashSet::new()),
                faults: Mutex::new(FabricFaults::default()),
                rng: Mutex::new(0x9E3779B97F4A7C15),
                stats: Mutex::new(FaultStats::default()),
                down: Mutex::new(HashSet::new()),
                hives: Mutex::new(hives),
            }),
        }
    }

    /// The endpoint for hive `id` (panics if `id` is not in the fabric).
    pub fn endpoint(&self, id: HiveId) -> MemEndpoint {
        assert!(
            self.shared.hives.lock().contains(&id),
            "hive {id} is not part of this fabric"
        );
        MemEndpoint {
            id,
            shared: self.shared.clone(),
        }
    }

    /// Adds a hive to the fabric at runtime (idempotent) — the roster grows
    /// and the new hive gets an empty inbound queue. Call before
    /// [`MemFabric::endpoint`] for a hive joining a live cluster.
    pub fn add_hive(&self, id: HiveId) {
        self.shared.add_hive(id);
    }

    /// Retires a hive from the fabric: drops its roster entry and inbound
    /// queue, returning per-kind counts of whatever was still queued so
    /// departure bookkeeping can absorb the discarded app frames.
    pub fn remove_hive(&self, id: HiveId) -> ClearedFrames {
        let cleared = self.clear_queue(id);
        self.shared.queues.lock().remove(&id.0);
        self.shared.hives.lock().retain(|h| *h != id);
        self.shared.down.lock().remove(&id.0);
        cleared
    }

    /// Snapshot of the traffic accounting.
    pub fn matrix(&self) -> TrafficMatrix {
        self.shared.matrix.lock().clone()
    }

    /// Clears the traffic accounting (e.g. to discard warm-up noise).
    pub fn reset_matrix(&self) {
        let bucket = self.shared.matrix.lock().bucket_ms;
        *self.shared.matrix.lock() = TrafficMatrix::new(bucket);
    }

    /// Updates the fault policy.
    pub fn set_faults(&self, faults: FabricFaults) {
        *self.shared.faults.lock() = faults;
    }

    /// Severs the link between `a` and `b` (both directions).
    pub fn partition(&self, a: HiveId, b: HiveId) {
        self.shared
            .partitions
            .lock()
            .insert((a.0.min(b.0), a.0.max(b.0)));
    }

    /// Heals all partitions.
    pub fn heal(&self) {
        self.shared.partitions.lock().clear();
    }

    /// Frames currently queued (all hives) — useful for quiescence checks.
    pub fn in_flight(&self) -> usize {
        self.shared.queues.lock().values().map(VecDeque::len).sum()
    }

    /// App frames currently queued (all hives) — the in-flight term of the
    /// chaos harness's message-conservation equation.
    pub fn in_flight_app(&self) -> u64 {
        self.shared
            .queues
            .lock()
            .values()
            .flat_map(|q| q.iter())
            .filter(|m| m.frame.kind == FrameKind::App)
            .count() as u64
    }

    /// Marks a hive down (crashed) or back up. Frames sent to or from a
    /// down hive are lost on the wire (and counted in [`FaultStats`]), like
    /// a dead TCP peer.
    pub fn set_down(&self, id: HiveId, down: bool) {
        if down {
            self.shared.down.lock().insert(id.0);
        } else {
            self.shared.down.lock().remove(&id.0);
        }
    }

    /// Discards everything queued for `id` (a crashed hive's unread socket
    /// buffer) and returns per-kind counts of what was lost, so crash
    /// bookkeeping can absorb the discarded app frames.
    pub fn clear_queue(&self, id: HiveId) -> ClearedFrames {
        let mut queues = self.shared.queues.lock();
        let mut cleared = ClearedFrames::default();
        if let Some(q) = queues.get_mut(&id.0) {
            for m in q.drain(..) {
                match m.frame.kind {
                    FrameKind::App => cleared.app += 1,
                    FrameKind::Raft => cleared.raft += 1,
                    FrameKind::Control => cleared.control += 1,
                }
            }
        }
        cleared
    }

    /// Snapshot of the fault accounting.
    pub fn fault_stats(&self) -> FaultStats {
        *self.shared.stats.lock()
    }

    /// Reseeds the deterministic fault RNG (and zeroes the accounting) so a
    /// chaos run's coin flips depend only on its seed, not on whatever
    /// traffic preceded it on this fabric.
    pub fn reseed(&self, seed: u64) {
        // xorshift64* must never hold state 0.
        *self.shared.rng.lock() = seed | 1;
        *self.shared.stats.lock() = FaultStats::default();
    }

    /// The hives currently on this fabric.
    pub fn hives(&self) -> Vec<HiveId> {
        self.shared.hives.lock().clone()
    }
}

/// One hive's endpoint into a [`MemFabric`].
pub struct MemEndpoint {
    id: HiveId,
    shared: Arc<Shared>,
}

impl Transport for MemEndpoint {
    fn local(&self) -> HiveId {
        self.id
    }

    fn send(&self, to: HiveId, frame: Frame) {
        if to == self.id {
            // Local loopback: no accounting (it never touches the wire).
            let mut queues = self.shared.queues.lock();
            if let Some(q) = queues.get_mut(&to.0) {
                q.push_back(InFlight {
                    deliver_at_ms: 0,
                    from: self.id,
                    frame,
                });
            }
            return;
        }
        {
            let down = self.shared.down.lock();
            if down.contains(&self.id.0) || down.contains(&to.0) {
                self.shared.stats.lock().count_drop(frame.kind);
                return;
            }
        }
        {
            let partitions = self.shared.partitions.lock();
            if partitions.contains(&(self.id.0.min(to.0), self.id.0.max(to.0))) {
                self.shared.stats.lock().count_drop(frame.kind);
                return;
            }
        }
        let faults = self.shared.faults.lock().clone();
        if faults.drop_rate > 0.0 && self.shared.roll() < faults.drop_rate {
            self.shared.stats.lock().count_drop(frame.kind);
            return;
        }
        let duplicate = faults.duplicate_rate > 0.0 && self.shared.roll() < faults.duplicate_rate;
        let reorder = faults.reorder_rate > 0.0 && self.shared.roll() < faults.reorder_rate;
        let jitter = if faults.jitter_ms > 0 {
            self.shared.rng_u64() % (faults.jitter_ms + 1)
        } else {
            0
        };
        let now = self.shared.clock.now_ms();
        self.shared
            .matrix
            .lock()
            .record(self.id, to, frame.kind, frame.wire_len(), now);
        let kind = frame.kind;
        let mut queues = self.shared.queues.lock();
        if let Some(q) = queues.get_mut(&to.0) {
            let deliver_at_ms = now + faults.latency_ms + jitter;
            let did_reorder = reorder && !q.is_empty();
            let copies = if duplicate { 2 } else { 1 };
            for _ in 0..copies {
                let msg = InFlight {
                    deliver_at_ms,
                    from: self.id,
                    frame: frame.clone(),
                };
                if did_reorder {
                    // One-slot reorder: jump ahead of the current back frame.
                    q.insert(q.len() - 1, msg);
                } else {
                    q.push_back(msg);
                }
            }
            let mut stats = self.shared.stats.lock();
            if duplicate {
                stats.count_duplicate(kind);
            }
            if did_reorder {
                stats.reordered += 1;
            }
        }
    }

    fn try_recv(&self) -> Option<(HiveId, Frame)> {
        let now = self.shared.clock.now_ms();
        let mut queues = self.shared.queues.lock();
        let q = queues.get_mut(&self.id.0)?;
        // Preserve per-link FIFO: only deliver from the front; latency is
        // uniform so the front is always the earliest.
        if q.front().is_some_and(|m| m.deliver_at_ms <= now) {
            let m = q.pop_front().unwrap();
            return Some((m.from, m.frame));
        }
        None
    }

    fn peers(&self) -> Vec<HiveId> {
        self.shared
            .hives
            .lock()
            .iter()
            .copied()
            .filter(|&h| h != self.id)
            .collect()
    }

    fn connect_peer(&self, peer: HiveId, _addr: &str) {
        // In-process fabric: the "address" is the roster entry itself.
        self.shared.add_hive(peer);
    }

    fn disconnect_peer(&self, peer: HiveId) -> Vec<Frame> {
        // The fabric's queues are per-receiver and shared by every sender,
        // so a single endpoint has no private deferred frames to surrender;
        // the harness retires the departed hive's queue via
        // [`MemFabric::remove_hive`].
        let _ = peer;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::clock::SimClock;
    use beehive_core::transport::FrameKind;

    fn fabric2() -> (MemFabric, SimClock) {
        let clock = SimClock::new();
        let f = MemFabric::new(vec![HiveId(1), HiveId(2)], Arc::new(clock.clone()));
        (f, clock)
    }

    #[test]
    fn delivers_between_endpoints() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![1, 2, 3]));
        let (from, frame) = e2.try_recv().unwrap();
        assert_eq!(from, HiveId(1));
        assert_eq!(frame.bytes, vec![1, 2, 3]);
        assert!(e2.try_recv().is_none());
    }

    #[test]
    fn accounts_bytes_per_pair_and_kind() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        e1.send(HiveId(2), Frame::app(vec![0; 100]));
        e1.send(HiveId(2), Frame::raft(vec![0; 50]));
        let m = f.matrix();
        assert_eq!(m.get(HiveId(1), HiveId(2), FrameKind::App).bytes, 108);
        assert_eq!(m.get(HiveId(1), HiveId(2), FrameKind::Raft).bytes, 58);
    }

    #[test]
    fn loopback_is_not_accounted() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        e1.send(HiveId(1), Frame::app(vec![0; 100]));
        assert_eq!(f.matrix().total(&[FrameKind::App]), 0);
        assert!(e1.try_recv().is_some());
    }

    #[test]
    fn latency_holds_frames_until_clock_advances() {
        let (f, clock) = fabric2();
        f.set_faults(FabricFaults {
            latency_ms: 10,
            ..Default::default()
        });
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![7]));
        assert!(e2.try_recv().is_none(), "frame must be delayed");
        clock.advance(10);
        assert!(e2.try_recv().is_some());
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (f, _clock) = fabric2();
        f.partition(HiveId(1), HiveId(2));
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![1]));
        assert!(e2.try_recv().is_none());
        f.heal();
        e1.send(HiveId(2), Frame::app(vec![2]));
        assert_eq!(e2.try_recv().unwrap().1.bytes, vec![2]);
    }

    #[test]
    fn full_drop_rate_loses_everything() {
        let (f, _clock) = fabric2();
        f.set_faults(FabricFaults {
            drop_rate: 1.0,
            ..Default::default()
        });
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        for _ in 0..10 {
            e1.send(HiveId(2), Frame::app(vec![1]));
        }
        assert!(e2.try_recv().is_none());
    }

    #[test]
    fn fail_handler_builder_accumulates() {
        let f = FabricFaults::default()
            .fail_handler("counter", "Inc", 3)
            .fail_handler("router", "PacketIn", 1);
        assert_eq!(f.handler_faults.len(), 2);
        assert_eq!(
            f.handler_faults[0],
            ("counter".to_string(), "Inc".to_string(), 3)
        );
        assert_eq!(f.drop_rate, 0.0, "wire faults unaffected");
    }

    #[test]
    #[should_panic(expected = "not part of this fabric")]
    fn unknown_endpoint_panics() {
        let (f, _clock) = fabric2();
        let _ = f.endpoint(HiveId(99));
    }

    #[test]
    fn duplicate_rate_delivers_twice_and_counts() {
        let (f, _clock) = fabric2();
        f.set_faults(FabricFaults {
            duplicate_rate: 1.0,
            ..Default::default()
        });
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![9]));
        assert_eq!(e2.try_recv().unwrap().1.bytes, vec![9]);
        assert_eq!(e2.try_recv().unwrap().1.bytes, vec![9]);
        assert!(e2.try_recv().is_none());
        assert_eq!(f.fault_stats().duplicated_app, 1);
    }

    #[test]
    fn reorder_rate_swaps_back_pair() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![1]));
        f.set_faults(FabricFaults {
            reorder_rate: 1.0,
            ..Default::default()
        });
        e1.send(HiveId(2), Frame::app(vec![2]));
        // [1] then 2 jumps ahead of the back frame: delivered 2, 1.
        assert_eq!(e2.try_recv().unwrap().1.bytes, vec![2]);
        assert_eq!(e2.try_recv().unwrap().1.bytes, vec![1]);
        assert_eq!(f.fault_stats().reordered, 1);
    }

    #[test]
    fn down_hive_loses_frames_both_ways_and_counts() {
        let (f, _clock) = fabric2();
        f.set_down(HiveId(2), true);
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![1]));
        e2.send(HiveId(1), Frame::raft(vec![2]));
        assert!(e2.try_recv().is_none());
        assert!(e1.try_recv().is_none());
        let s = f.fault_stats();
        assert_eq!((s.dropped_app, s.dropped_raft), (1, 1));
        f.set_down(HiveId(2), false);
        e1.send(HiveId(2), Frame::app(vec![3]));
        assert!(e2.try_recv().is_some());
    }

    #[test]
    fn clear_queue_counts_per_kind() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        e1.send(HiveId(2), Frame::app(vec![1]));
        e1.send(HiveId(2), Frame::raft(vec![2]));
        e1.send(HiveId(2), Frame::app(vec![3]));
        assert_eq!(f.in_flight_app(), 2);
        let cleared = f.clear_queue(HiveId(2));
        assert_eq!((cleared.app, cleared.raft, cleared.control), (2, 1, 0));
        assert_eq!(f.in_flight(), 0);
    }

    #[test]
    fn reseed_makes_coin_flips_reproducible() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let (f, _clock) = fabric2();
            f.reseed(seed);
            f.set_faults(FabricFaults {
                drop_rate: 0.5,
                ..Default::default()
            });
            let e1 = f.endpoint(HiveId(1));
            let e2 = f.endpoint(HiveId(2));
            (0..32)
                .map(|i| {
                    e1.send(HiveId(2), Frame::app(vec![i]));
                    e2.try_recv().is_some()
                })
                .collect()
        };
        assert_eq!(outcomes(42), outcomes(42));
        assert_ne!(outcomes(42), outcomes(43), "different seeds diverge");
    }

    #[test]
    fn partition_drops_are_counted() {
        let (f, _clock) = fabric2();
        f.partition(HiveId(1), HiveId(2));
        let e1 = f.endpoint(HiveId(1));
        e1.send(HiveId(2), Frame::app(vec![1]));
        assert_eq!(f.fault_stats().dropped_app, 1);
    }

    #[test]
    fn jitter_delays_within_bound() {
        let (f, clock) = fabric2();
        f.set_faults(FabricFaults {
            latency_ms: 5,
            jitter_ms: 10,
            ..Default::default()
        });
        let e1 = f.endpoint(HiveId(1));
        let e2 = f.endpoint(HiveId(2));
        e1.send(HiveId(2), Frame::app(vec![1]));
        assert!(e2.try_recv().is_none(), "latency floor holds the frame");
        clock.advance(15); // latency + max jitter
        assert!(e2.try_recv().is_some());
    }

    #[test]
    fn hives_join_and_retire_at_runtime() {
        let (f, _clock) = fabric2();
        f.add_hive(HiveId(3));
        assert!(f.hives().contains(&HiveId(3)));
        let e1 = f.endpoint(HiveId(1));
        let e3 = f.endpoint(HiveId(3));
        e1.send(HiveId(3), Frame::app(vec![5]));
        assert_eq!(e3.try_recv().unwrap().1.bytes, vec![5]);
        // Endpoints announce joins idempotently via the Transport trait.
        e1.connect_peer(HiveId(3), "ignored-in-process");
        assert_eq!(f.hives().len(), 3);
        assert!(e1.peers().contains(&HiveId(3)));
        // Retiring with a frame still queued counts it instead of leaking it.
        e1.send(HiveId(3), Frame::app(vec![6]));
        let cleared = f.remove_hive(HiveId(3));
        assert_eq!(cleared.app, 1);
        assert!(!f.hives().contains(&HiveId(3)));
    }

    #[test]
    fn reset_matrix_clears_accounting() {
        let (f, _clock) = fabric2();
        let e1 = f.endpoint(HiveId(1));
        e1.send(HiveId(2), Frame::app(vec![0; 10]));
        assert!(f.matrix().total(&[FrameKind::App]) > 0);
        f.reset_matrix();
        assert_eq!(f.matrix().total(&[FrameKind::App]), 0);
    }
}
