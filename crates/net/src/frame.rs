//! Shared wire framing for the TCP-backed transports.
//!
//! Both engines — the classic threaded transport ([`crate::TcpTransport`])
//! and the non-blocking reactor ([`crate::ReactorTransport`]) — speak the
//! exact same bytes, so a mixed cluster (some hives threaded, some reactor)
//! interoperates and the two engines are differential-testable against each
//! other:
//!
//! ```text
//! [u32 len][u32 src_hive][u8 kind][payload]      (all integers little-endian)
//! ```
//!
//! `len` counts everything after the length word (`src + kind + payload`,
//! i.e. `payload.len() + 5`). On connect the dialer immediately sends a
//! handshake frame (`kind = 0xFF`, empty payload) naming itself; every
//! later frame's embedded `src` is ignored in favour of the handshake
//! identity.
//!
//! [`FrameDecoder`] is the streaming half: it reads into one reusable
//! per-connection buffer and slices complete frames out of it, so arbitrary
//! TCP segmentation (frames split at any byte boundary, many frames per
//! read) decodes to the identical frame sequence without a per-read
//! allocation. The fuzz suite (`tests/proptest_decoder.rs`) pins that
//! equivalence.

use std::io::{Read, Write};

use beehive_core::transport::FrameKind;
use beehive_core::HiveId;

/// Wire kind byte for application frames.
pub const KIND_APP: u8 = 0;
/// Wire kind byte for registry-Raft frames.
pub const KIND_RAFT: u8 = 1;
/// Wire kind byte for platform-control frames.
pub const KIND_CONTROL: u8 = 2;
/// Wire kind byte of the connection handshake (first frame on every dialed
/// connection; empty payload, `src` names the dialer).
pub const KIND_HANDSHAKE: u8 = 0xFF;

/// Bytes of `[u32 len][u32 src][u8 kind]` preceding every payload.
pub const HEADER_LEN: usize = 9;

/// Upper bound on the wire `len` field (`payload + 5`): one frame may not
/// exceed 64 MiB. A peer announcing more is declared malformed and its
/// connection dropped — this is what caps decoder buffer growth.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Maps a [`FrameKind`] to its wire byte.
pub fn kind_to_byte(kind: FrameKind) -> u8 {
    match kind {
        FrameKind::App => KIND_APP,
        FrameKind::Raft => KIND_RAFT,
        FrameKind::Control => KIND_CONTROL,
    }
}

/// Maps a wire byte back to its [`FrameKind`] (`None` for the handshake and
/// anything unknown).
pub fn byte_to_kind(b: u8) -> Option<FrameKind> {
    match b {
        KIND_APP => Some(FrameKind::App),
        KIND_RAFT => Some(FrameKind::Raft),
        KIND_CONTROL => Some(FrameKind::Control),
        _ => None,
    }
}

/// Appends one encoded frame (header + payload) to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, src: HiveId, kind: u8, payload: &[u8]) {
    let len = (payload.len() + 5) as u32;
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&src.0.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
}

/// Encodes one frame into a fresh buffer.
pub fn encode_frame(src: HiveId, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame_into(&mut out, src, kind, payload);
    out
}

/// Writes one frame as a **single** buffered write — header and payload
/// coalesced, so the kernel sees one syscall per frame instead of the old
/// header+payload pair (and, with `TCP_NODELAY`, emits one segment).
pub fn write_frame<W: Write>(
    w: &mut W,
    src: HiveId,
    kind: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let buf = encode_frame(src, kind, payload);
    w.write_all(&buf)
}

/// Blocking counterpart of [`FrameDecoder`] for the threaded transport's
/// one-thread-per-connection readers: reads exactly one frame.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<(HiveId, u8, Vec<u8>)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(5..=MAX_FRAME_LEN).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    let mut rest = vec![0u8; len];
    r.read_exact(&mut rest)?;
    let src = HiveId(u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]));
    let kind = rest[4];
    Ok((src, kind, rest[5..].to_vec()))
}

/// One frame sliced out of a [`FrameDecoder`]'s stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// The `src` hive id embedded in the frame header.
    pub src: HiveId,
    /// The raw wire kind byte (see [`byte_to_kind`]).
    pub kind: u8,
    /// The frame payload. This is the only per-frame allocation the decoder
    /// makes — everything upstream of it reuses one per-connection buffer.
    pub payload: Vec<u8>,
}

/// The decoder rejected the stream: the peer is speaking garbage and its
/// connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// The offending wire `len` field.
    pub len: usize,
    /// The decoder's frame-size cap at the time.
    pub max: usize,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame length {} (valid: 5..={})", self.len, self.max)
    }
}

impl std::error::Error for FrameError {}

/// How many bytes one [`FrameDecoder::read_from`] call asks the socket for.
const READ_CHUNK: usize = 64 * 1024;

/// Streaming frame decoder over one reusable buffer.
///
/// Feed it bytes ([`FrameDecoder::extend`] or [`FrameDecoder::read_from`])
/// and drain complete frames with [`FrameDecoder::next_frame`] until it
/// returns `Ok(None)`. Incomplete tails (torn length prefixes, half
/// payloads) are held until the rest arrives; a `len` outside
/// `5..=max_frame` is an unrecoverable [`FrameError`]. Consumed bytes are
/// compacted away so the buffer never grows past one maximum frame plus one
/// read chunk.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of the unparsed region in `buf`.
    start: usize,
    max_frame: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the wire-default frame cap ([`MAX_FRAME_LEN`]).
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_LEN)
    }

    /// A decoder capping frames at `max_frame` wire-`len` bytes (tests use
    /// small caps to pin the buffer-growth bound).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Bytes buffered but not yet sliced into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Capacity of the internal buffer — bounded by
    /// `max_frame + 4 + READ_CHUNK` as long as frames are drained after
    /// each feed (the fuzz suite asserts this).
    pub fn buffered_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drops already-parsed bytes once they dominate the buffer, keeping the
    /// unparsed tail at the front. Amortized O(1) per byte.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= READ_CHUNK.max(self.buf.len() / 2) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Appends raw bytes to the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Reads once from `r` into the reusable buffer. Returns the byte count
    /// (0 = EOF); `WouldBlock` and friends surface as errors for the caller
    /// to interpret.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let old_len = self.buf.len();
        self.buf.resize(old_len + READ_CHUNK, 0);
        match r.read(&mut self.buf[old_len..]) {
            Ok(n) => {
                self.buf.truncate(old_len + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old_len);
                Err(e)
            }
        }
    }

    /// Slices the next complete frame out of the stream. `Ok(None)` means
    /// "need more bytes"; `Err` means the stream is malformed and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<DecodedFrame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if !(5..=self.max_frame).contains(&len) {
            return Err(FrameError {
                len,
                max: self.max_frame,
            });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let src = HiveId(u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]));
        let kind = avail[8];
        let payload = avail[HEADER_LEN..4 + len].to_vec();
        self.start += 4 + len;
        self.compact();
        Ok(Some(DecodedFrame { src, kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(HiveId(7), KIND_CONTROL, &[5, 6, 7]));
        let f = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(f.src, HiveId(7));
        assert_eq!(f.kind, KIND_CONTROL);
        assert_eq!(f.payload, vec![5, 6, 7]);
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn split_feeds_reassemble() {
        let bytes = encode_frame(HiveId(1), KIND_APP, &[9; 100]);
        let mut dec = FrameDecoder::new();
        for b in &bytes[..bytes.len() - 1] {
            dec.extend(&[*b]);
            assert!(dec.next_frame().unwrap().is_none());
        }
        dec.extend(&bytes[bytes.len() - 1..]);
        let f = dec.next_frame().unwrap().expect("completed frame");
        assert_eq!(f.payload, vec![9; 100]);
    }

    #[test]
    fn many_frames_per_feed() {
        let mut stream = Vec::new();
        for i in 0..10u8 {
            encode_frame_into(&mut stream, HiveId(2), KIND_APP, &[i]);
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        for i in 0..10u8 {
            assert_eq!(dec.next_frame().unwrap().unwrap().payload, vec![i]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_an_error_not_a_buffer() {
        let mut dec = FrameDecoder::with_max_frame(1024);
        // A header declaring a 2 GiB frame: rejected before any payload is
        // buffered, which is what bounds memory against hostile peers.
        dec.extend(&(2u32 << 30).to_le_bytes());
        let err = dec.next_frame().expect_err("oversized frame rejected");
        assert_eq!(err.len, 2 << 30);
        assert!(dec.buffered_capacity() < 4096);
    }

    #[test]
    fn undersized_length_is_an_error() {
        let mut dec = FrameDecoder::new();
        dec.extend(&3u32.to_le_bytes());
        assert!(dec.next_frame().is_err(), "len < 5 is malformed");
    }

    #[test]
    fn wire_bytes_match_the_threaded_codec() {
        // The decoder and the blocking reader must accept each other's bytes.
        let bytes = encode_frame(HiveId(3), KIND_RAFT, &[1, 2, 3, 4]);
        let (src, kind, payload) = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!(
            (src, kind, payload),
            (HiveId(3), KIND_RAFT, vec![1, 2, 3, 4])
        );
    }
}
