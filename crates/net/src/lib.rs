#![warn(missing_docs)]

//! `beehive-net` — inter-hive transports.
//!
//! * [`MemFabric`] / [`MemEndpoint`]: an in-process fabric connecting many
//!   hives with **byte-accurate control-channel accounting** (per source,
//!   destination, traffic category and time bucket), optional latency, drops
//!   and partitions. This is what the simulator and the Figure-4 evaluation
//!   run on.
//! * [`TcpTransport`]: a real TCP transport with length-prefixed framing for
//!   multi-process deployments.

mod fabric;
mod matrix;
mod tcp;

pub use fabric::{ClearedFrames, FabricFaults, FaultStats, MemEndpoint, MemFabric};
pub use matrix::{MatrixCell, TrafficMatrix};
pub use tcp::TcpTransport;
