#![warn(missing_docs)]

//! `beehive-net` — inter-hive transports.
//!
//! * [`MemFabric`] / [`MemEndpoint`]: an in-process fabric connecting many
//!   hives with **byte-accurate control-channel accounting** (per source,
//!   destination, traffic category and time bucket), optional latency, drops
//!   and partitions. This is what the simulator and the Figure-4 evaluation
//!   run on.
//! * [`ReactorTransport`]: the non-blocking reactor TCP transport — one
//!   event loop per hive owns every peer socket, sends are lock-cheap ring
//!   enqueues, flushes are vectored batched writes. The default engine for
//!   real deployments.
//! * [`TcpTransport`]: the classic threaded TCP transport (one blocking
//!   reader thread per connection). Same wire format as the reactor; kept
//!   one release as the differential baseline.
//!
//! Both TCP engines share the framing codec in [`frame`] and the outbound
//! ring/backoff machinery in [`buffer`]; `tests/conformance.rs` runs them
//! (and the fabric) through one harness to keep their semantics identical.

pub mod buffer;
mod fabric;
pub mod frame;
mod matrix;
#[cfg(unix)]
mod reactor;
mod tcp;

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use beehive_core::transport::{Transport, TransportCounters, TransportPreference};
use beehive_core::HiveId;

pub use fabric::{ClearedFrames, FabricFaults, FaultStats, MemEndpoint, MemFabric};
pub use matrix::{MatrixCell, TrafficMatrix};
#[cfg(unix)]
pub use reactor::ReactorTransport;
pub use tcp::TcpTransport;

/// Binds the TCP engine selected by `pref` and returns it type-erased,
/// together with the bound address (useful with port 0) and its counters —
/// everything `beehive-node` needs before handing the transport to the
/// hive. On non-unix targets the reactor is unavailable and the threaded
/// engine is bound regardless of preference.
pub fn bind_tcp(
    pref: TransportPreference,
    id: HiveId,
    listen: SocketAddr,
    peers: HashMap<HiveId, SocketAddr>,
) -> std::io::Result<(Box<dyn Transport>, SocketAddr, Arc<TransportCounters>)> {
    match pref {
        #[cfg(unix)]
        TransportPreference::Reactor => {
            let t = ReactorTransport::bind(id, listen, peers)?;
            let addr = t.local_addr();
            let counters = t.counters();
            Ok((Box::new(t), addr, counters))
        }
        #[cfg(not(unix))]
        TransportPreference::Reactor => {
            let t = TcpTransport::bind(id, listen, peers)?;
            let addr = t.local_addr();
            let counters = t.counters();
            Ok((Box::new(t), addr, counters))
        }
        TransportPreference::Threaded => {
            let t = TcpTransport::bind(id, listen, peers)?;
            let addr = t.local_addr();
            let counters = t.counters();
            Ok((Box::new(t), addr, counters))
        }
    }
}
