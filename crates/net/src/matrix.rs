//! Control-channel accounting: who sent how many bytes to whom, of which
//! category, when. This regenerates the paper's Figure 4: the inter-hive
//! traffic matrices (4a–c) and the bandwidth-over-time series (4d–f).

use std::collections::BTreeMap;

use beehive_core::transport::FrameKind;
use beehive_core::HiveId;
use serde::{Deserialize, Serialize};

/// Accumulated traffic between one ordered hive pair for one category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Number of frames.
    pub msgs: u64,
    /// Total wire bytes.
    pub bytes: u64,
}

/// Byte/message counters keyed by `(src, dst, kind)` plus a time-bucketed
/// series keyed by `(bucket, kind)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// Bucket width in ms for the time series.
    pub bucket_ms: u64,
    cells: BTreeMap<(u32, u32, FrameKind), MatrixCell>,
    series: BTreeMap<(u64, FrameKind), MatrixCell>,
}

impl TrafficMatrix {
    /// A matrix with the given time-bucket width (e.g. 1000 ms for per-second
    /// bandwidth plots).
    pub fn new(bucket_ms: u64) -> Self {
        TrafficMatrix {
            bucket_ms: bucket_ms.max(1),
            ..Default::default()
        }
    }

    /// Records one frame.
    pub fn record(&mut self, src: HiveId, dst: HiveId, kind: FrameKind, bytes: usize, now_ms: u64) {
        let cell = self.cells.entry((src.0, dst.0, kind)).or_default();
        cell.msgs += 1;
        cell.bytes += bytes as u64;
        let bucket = now_ms / self.bucket_ms;
        let s = self.series.entry((bucket, kind)).or_default();
        s.msgs += 1;
        s.bytes += bytes as u64;
    }

    /// Total traffic between `src` and `dst` for `kind`.
    pub fn get(&self, src: HiveId, dst: HiveId, kind: FrameKind) -> MatrixCell {
        self.cells
            .get(&(src.0, dst.0, kind))
            .copied()
            .unwrap_or_default()
    }

    /// Total bytes between `src` and `dst`, all categories.
    pub fn total_between(&self, src: HiveId, dst: HiveId) -> u64 {
        [FrameKind::App, FrameKind::Raft, FrameKind::Control]
            .into_iter()
            .map(|k| self.get(src, dst, k).bytes)
            .sum()
    }

    /// The full `hives × hives` byte matrix for `kinds`, with hives ordered
    /// as given. Entry `[i][j]` is bytes sent from `hives[i]` to `hives[j]`.
    pub fn matrix(&self, hives: &[HiveId], kinds: &[FrameKind]) -> Vec<Vec<u64>> {
        hives
            .iter()
            .map(|&src| {
                hives
                    .iter()
                    .map(|&dst| kinds.iter().map(|&k| self.get(src, dst, k).bytes).sum())
                    .collect()
            })
            .collect()
    }

    /// Per-bucket total bytes for `kinds`, as `(bucket_start_ms, bytes)` in
    /// time order. Missing buckets in the range are filled with zeros.
    pub fn series(&self, kinds: &[FrameKind]) -> Vec<(u64, u64)> {
        let mut by_bucket: BTreeMap<u64, u64> = BTreeMap::new();
        for ((bucket, kind), cell) in &self.series {
            if kinds.contains(kind) {
                *by_bucket.entry(*bucket).or_insert(0) += cell.bytes;
            }
        }
        let Some((&first, _)) = by_bucket.iter().next() else {
            return Vec::new();
        };
        let Some((&last, _)) = by_bucket.iter().next_back() else {
            return Vec::new();
        };
        (first..=last)
            .map(|b| (b * self.bucket_ms, by_bucket.get(&b).copied().unwrap_or(0)))
            .collect()
    }

    /// Grand total bytes for `kinds`.
    pub fn total(&self, kinds: &[FrameKind]) -> u64 {
        self.cells
            .iter()
            .filter(|((_, _, k), _)| kinds.contains(k))
            .map(|(_, c)| c.bytes)
            .sum()
    }

    /// Fraction of all `kinds` bytes that touch (enter or leave) the busiest
    /// single hive — the "is this effectively centralized?" metric used to
    /// check Figure 4a.
    pub fn hot_hive_share(&self, hives: &[HiveId], kinds: &[FrameKind]) -> Option<(HiveId, f64)> {
        let total = self.total(kinds);
        if total == 0 {
            return None;
        }
        let mut best: Option<(HiveId, u64)> = None;
        for &h in hives {
            let touched: u64 = self
                .cells
                .iter()
                .filter(|((s, d, k), _)| kinds.contains(k) && (*s == h.0 || *d == h.0))
                .map(|(_, c)| c.bytes)
                .sum();
            if best.is_none() || touched > best.unwrap().1 {
                best = Some((h, touched));
            }
        }
        best.map(|(h, b)| (h, b as f64 / total as f64))
    }

    /// Fraction of `kinds` bytes that flow between *distinct* hives pairs
    /// where src == dst would be local (always 0 here since the fabric only
    /// sees inter-hive frames); kept for symmetry in reports.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        for (k, c) in &other.cells {
            let cell = self.cells.entry(*k).or_default();
            cell.msgs += c.msgs;
            cell.bytes += c.bytes;
        }
        for (k, c) in &other.series {
            let cell = self.series.entry(*k).or_default();
            cell.msgs += c.msgs;
            cell.bytes += c.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = TrafficMatrix::new(1000);
        m.record(HiveId(1), HiveId(2), FrameKind::App, 100, 0);
        m.record(HiveId(1), HiveId(2), FrameKind::App, 50, 500);
        m.record(HiveId(2), HiveId(1), FrameKind::Raft, 30, 1500);
        assert_eq!(
            m.get(HiveId(1), HiveId(2), FrameKind::App),
            MatrixCell {
                msgs: 2,
                bytes: 150
            }
        );
        assert_eq!(m.total_between(HiveId(2), HiveId(1)), 30);
        assert_eq!(m.total(&[FrameKind::App]), 150);
        assert_eq!(m.total(&[FrameKind::App, FrameKind::Raft]), 180);
    }

    #[test]
    fn matrix_layout() {
        let mut m = TrafficMatrix::new(1000);
        m.record(HiveId(1), HiveId(2), FrameKind::App, 10, 0);
        m.record(HiveId(2), HiveId(3), FrameKind::App, 20, 0);
        let grid = m.matrix(&[HiveId(1), HiveId(2), HiveId(3)], &[FrameKind::App]);
        assert_eq!(grid[0][1], 10);
        assert_eq!(grid[1][2], 20);
        assert_eq!(grid[2][0], 0);
    }

    #[test]
    fn series_fills_gaps() {
        let mut m = TrafficMatrix::new(1000);
        m.record(HiveId(1), HiveId(2), FrameKind::App, 10, 100);
        m.record(HiveId(1), HiveId(2), FrameKind::App, 30, 3_200);
        let s = m.series(&[FrameKind::App]);
        assert_eq!(s, vec![(0, 10), (1000, 0), (2000, 0), (3000, 30)]);
    }

    #[test]
    fn hot_hive_share_detects_centralization() {
        let mut m = TrafficMatrix::new(1000);
        // Everything flows to/from hive 1.
        for other in 2..=5u32 {
            m.record(HiveId(other), HiveId(1), FrameKind::App, 100, 0);
            m.record(HiveId(1), HiveId(other), FrameKind::App, 10, 0);
        }
        let hives: Vec<HiveId> = (1..=5).map(HiveId).collect();
        let (hot, share) = m.hot_hive_share(&hives, &[FrameKind::App]).unwrap();
        assert_eq!(hot, HiveId(1));
        assert!((share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = TrafficMatrix::new(1000);
        a.record(HiveId(1), HiveId(2), FrameKind::App, 10, 0);
        let mut b = TrafficMatrix::new(1000);
        b.record(HiveId(1), HiveId(2), FrameKind::App, 5, 0);
        a.merge(&b);
        assert_eq!(a.get(HiveId(1), HiveId(2), FrameKind::App).bytes, 15);
    }
}
