//! Non-blocking reactor transport: one event loop per hive owns every peer
//! socket.
//!
//! This is the fast-path engine behind `--transport reactor`. Where the
//! threaded transport ([`crate::TcpTransport`]) pays a thread per inbound
//! connection plus a blocking write per frame on the *hive* thread, the
//! reactor moves all wire I/O onto a single `poll(2)` loop:
//!
//! * **Sends are lock-cheap enqueues.** [`Transport::send`] encodes the
//!   frame outside any lock, pushes it onto the peer's [`SendRing`], and
//!   pokes the loop through a wake pipe. The hive thread never touches a
//!   socket.
//! * **Flushes are batched.** The loop drains each ring with
//!   `writev`-style vectored writes, coalescing up to
//!   [`crate::buffer::FLUSH_BATCH`] frames — app envelopes, channel acks
//!   and Raft traffic mixed — into one syscall.
//! * **Decoding is streaming.** Each connection reads into one reusable
//!   [`FrameDecoder`] buffer and slices complete frames out, whatever the
//!   TCP segmentation.
//!
//! Semantics are byte-for-byte those of the threaded engine — same wire
//! format (mixed clusters interoperate), same [`TransportCounters`]
//! accounting, same dead-peer backoff schedule, deferred-queue
//! reconnect-flush ordering, eviction priorities and
//! `connect_peer`/`disconnect_peer` behaviour. The conformance suite
//! (`tests/conformance.rs`) runs both engines through one harness to keep
//! it that way.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use beehive_core::events::{EventJournal, EventKind};
use beehive_core::transport::{Frame, Transport, TransportCounters};
use beehive_core::HiveId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::buffer::{ConnectBackoff, EncodedFrame, FlushOutcome, SendRing, DEFERRED_CAP};
use crate::frame::{byte_to_kind, encode_frame, kind_to_byte, FrameDecoder, KIND_HANDSHAKE};

/// Wakeup callback invoked when a frame lands in the inbox (set after bind
/// by `Hive::run` via [`Transport::set_waker`]).
type SharedWaker = Arc<Mutex<Option<Arc<dyn Fn() + Send + Sync>>>>;

/// The hive's flight-recorder journal (set after bind via
/// [`Transport::set_events`]).
type SharedEvents = Arc<Mutex<Option<Arc<EventJournal>>>>;

/// How long a non-blocking connect may sit half-open before it is declared
/// failed — mirrors the threaded engine's `connect_timeout`.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Default poll timeout when nothing is scheduled: a liveness backstop, not
/// a latency floor (the wake pipe interrupts it for every send).
const IDLE_POLL_MS: i32 = 500;

/// Records a peer lifecycle event if a journal is wired.
fn emit(events: &SharedEvents, kind: EventKind, peer: HiveId, detail: &str) {
    if let Some(journal) = events.lock().clone() {
        journal.record_full(kind, 0, "", None, Some(peer), detail);
    }
}

/// Outbound state for one peer, shared between the hive-facing API and the
/// reactor thread.
#[derive(Default)]
struct PeerOut {
    /// Encoded frames awaiting the wire; doubles as the deferred queue
    /// while the peer is down (bounded at [`DEFERRED_CAP`]).
    ring: SendRing,
    /// How many frames at the front of `ring` have already been counted
    /// `deferred` — so a later connect failure only counts the new tail,
    /// matching the threaded engine's one-count-per-frame accounting.
    counted: usize,
    /// Dead-peer reconnect backoff (None = healthy or never attempted).
    backoff: Option<ConnectBackoff>,
    /// Whether an established outbound connection exists right now.
    connected: bool,
}

/// State shared between [`ReactorTransport`] (the hive-facing API) and the
/// reactor thread.
struct Shared {
    id: HiveId,
    peers: Mutex<HashMap<HiveId, SocketAddr>>,
    outs: Mutex<HashMap<HiveId, PeerOut>>,
    /// Peers whose outbound connection the reactor must close
    /// (`disconnect_peer` ran on the hive side).
    closing: Mutex<Vec<HiveId>>,
    counters: Arc<TransportCounters>,
    waker: SharedWaker,
    events: SharedEvents,
    shutdown: AtomicBool,
    /// Write end of the wake pipe; `wake_pending` keeps it to at most one
    /// in-flight byte so waking is O(1) whatever the send rate.
    wake_tx: Mutex<UnixStream>,
    wake_pending: AtomicBool,
}

impl Shared {
    /// Pokes the reactor loop out of `poll`.
    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            let _ = self.wake_tx.lock().write(&[1]);
        }
    }
}

/// An inbound connection owned by the reactor thread.
struct InConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Learned from the handshake; frames before it close the connection.
    peer: Option<HiveId>,
}

/// An outbound connection owned by the reactor thread.
struct OutConn {
    stream: TcpStream,
    /// `Some(deadline)` while the non-blocking connect is still in flight.
    connecting: Option<Instant>,
}

/// Non-blocking reactor [`Transport`]. See the module docs.
pub struct ReactorTransport {
    shared: Arc<Shared>,
    inbox_rx: Receiver<(HiveId, Frame)>,
    local_addr: SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ReactorTransport {
    /// Binds `listen` for hive `id` and starts the reactor thread. The peer
    /// address book must contain every other hive in the cluster (more can
    /// be added later via [`Transport::connect_peer`]).
    pub fn bind(
        id: HiveId,
        listen: SocketAddr,
        peers: HashMap<HiveId, SocketAddr>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        let (inbox_tx, inbox_rx) = unbounded();

        let shared = Arc::new(Shared {
            id,
            peers: Mutex::new(peers),
            outs: Mutex::new(HashMap::new()),
            closing: Mutex::new(Vec::new()),
            counters: Arc::new(TransportCounters::new()),
            waker: Arc::new(Mutex::new(None)),
            events: Arc::new(Mutex::new(None)),
            shutdown: AtomicBool::new(false),
            wake_tx: Mutex::new(wake_tx),
            wake_pending: AtomicBool::new(false),
        });

        let loop_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bh-reactor-{}", id.0))
            .spawn(move || reactor_loop(loop_shared, listener, wake_rx, inbox_tx))
            .expect("spawn reactor thread");

        Ok(ReactorTransport {
            shared,
            inbox_rx,
            local_addr,
            handle: Some(handle),
        })
    }

    /// Per-[`FrameKind`] traffic counters; snapshot them for metric
    /// exposition.
    pub fn counters(&self) -> Arc<TransportCounters> {
        self.shared.counters.clone()
    }

    /// The address this transport actually listens on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Adds (or updates) a peer's address after binding — lets clusters
    /// bind everyone on port 0 first and exchange the resulting addresses.
    pub fn add_peer(&mut self, id: HiveId, addr: SocketAddr) {
        self.shared.peers.lock().insert(id, addr);
    }
}

impl Transport for ReactorTransport {
    fn local(&self) -> HiveId {
        self.shared.id
    }

    fn send(&self, to: HiveId, frame: Frame) {
        if to == self.shared.id {
            return; // hives never send to themselves over TCP
        }
        // Encode outside the lock: the critical section is a queue push.
        let encoded = EncodedFrame {
            kind: Some(frame.kind),
            bytes: encode_frame(self.shared.id, kind_to_byte(frame.kind), &frame.bytes),
            acct_len: frame.wire_len(),
        };
        {
            let mut outs = self.shared.outs.lock();
            let po = outs.entry(to).or_default();
            if !po.connected && po.ring.len() >= DEFERRED_CAP {
                if let Some((idx, kind)) = po.ring.evict_lowest() {
                    if idx < po.counted {
                        po.counted -= 1;
                    }
                    self.shared.counters.record_deferred_evicted();
                    emit(
                        &self.shared.events,
                        EventKind::DeferredEvict,
                        to,
                        &format!(
                            "deferred queue full ({DEFERRED_CAP}); evicted oldest {} frame",
                            kind.label()
                        ),
                    );
                }
            }
            po.ring.push(encoded);
            // Inside an open backoff window a frame is deferred the moment
            // it is queued (the threaded engine's defer-without-probing
            // path); outside one it only becomes deferred if the connect
            // the reactor is about to attempt fails.
            if !po.connected && po.backoff.is_some_and(|b| b.active()) {
                po.counted += 1;
                self.shared.counters.record_deferred();
            }
        }
        self.shared.wake();
    }

    fn try_recv(&self) -> Option<(HiveId, Frame)> {
        self.inbox_rx.try_recv().ok()
    }

    fn peers(&self) -> Vec<HiveId> {
        self.shared.peers.lock().keys().copied().collect()
    }

    fn connect_peer(&self, peer: HiveId, addr: &str) {
        let Ok(sock) = addr.parse::<SocketAddr>() else {
            emit(
                &self.shared.events,
                EventKind::PeerDisconnect,
                peer,
                &format!("join announced an unparseable address {addr:?}; peer not added"),
            );
            return;
        };
        self.shared.peers.lock().insert(peer, sock);
        // A joining peer is fresh — don't make it serve out a backoff
        // window earned by whoever held this id before.
        if let Some(po) = self.shared.outs.lock().get_mut(&peer) {
            po.backoff = None;
        }
        emit(
            &self.shared.events,
            EventKind::PeerConnect,
            peer,
            &format!("peer added to the address book at {sock}"),
        );
        self.shared.wake();
    }

    fn disconnect_peer(&self, peer: HiveId) -> Vec<Frame> {
        self.shared.peers.lock().remove(&peer);
        let held: Vec<Frame> = self
            .shared
            .outs
            .lock()
            .remove(&peer)
            .map(|mut po| {
                po.ring
                    .drain_frames()
                    .into_iter()
                    .filter_map(EncodedFrame::into_frame)
                    .collect()
            })
            .unwrap_or_default();
        self.shared.closing.lock().push(peer);
        self.shared.wake();
        emit(
            &self.shared.events,
            EventKind::PeerDisconnect,
            peer,
            &format!(
                "peer removed from the address book; {} deferred frame(s) surrendered",
                held.len()
            ),
        );
        held
    }

    fn set_waker(&mut self, waker: Arc<dyn Fn() + Send + Sync>) {
        *self.shared.waker.lock() = Some(waker);
    }

    fn set_events(&mut self, events: Arc<EventJournal>) {
        *self.shared.events.lock() = Some(events);
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Starts a non-blocking connect to `addr`; `Ok` means in flight (or
/// already established — `SO_ERROR` settles it either way on `POLLOUT`).
fn start_connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let (domain, storage, len) = sockaddr_of(addr);
    let fd = unsafe {
        libc::socket(
            domain,
            libc::SOCK_STREAM | libc::SOCK_NONBLOCK | libc::SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(std::io::Error::last_os_error());
    }
    let rc = unsafe { libc::connect(fd, &storage as *const _ as *const libc::sockaddr, len) };
    if rc != 0 {
        let err = std::io::Error::last_os_error();
        if err.raw_os_error() != Some(libc::EINPROGRESS) {
            unsafe { libc::close(fd) };
            return Err(err);
        }
    }
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Converts a [`SocketAddr`] into the raw sockaddr `connect(2)` wants.
fn sockaddr_of(addr: SocketAddr) -> (libc::c_int, libc::sockaddr_storage, libc::socklen_t) {
    let mut storage: libc::sockaddr_storage = unsafe { std::mem::zeroed() };
    match addr {
        SocketAddr::V4(v4) => {
            let sin = libc::sockaddr_in {
                sin_family: libc::AF_INET as libc::sa_family_t,
                sin_port: v4.port().to_be(),
                sin_addr: libc::in_addr {
                    s_addr: u32::from_ne_bytes(v4.ip().octets()),
                },
                ..unsafe { std::mem::zeroed() }
            };
            unsafe { std::ptr::write(&mut storage as *mut _ as *mut libc::sockaddr_in, sin) };
            (
                libc::AF_INET,
                storage,
                std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
            )
        }
        SocketAddr::V6(v6) => {
            let sin6 = libc::sockaddr_in6 {
                sin6_family: libc::AF_INET6 as libc::sa_family_t,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo(),
                sin6_addr: libc::in6_addr {
                    s6_addr: v6.ip().octets(),
                },
                sin6_scope_id: v6.scope_id(),
                ..unsafe { std::mem::zeroed() }
            };
            unsafe { std::ptr::write(&mut storage as *mut _ as *mut libc::sockaddr_in6, sin6) };
            (
                libc::AF_INET6,
                storage,
                std::mem::size_of::<libc::sockaddr_in6>() as libc::socklen_t,
            )
        }
    }
}

/// Reads and clears a socket's pending error (the `SO_ERROR` half of the
/// non-blocking connect protocol).
fn take_socket_error(fd: RawFd) -> std::io::Result<()> {
    let mut err: libc::c_int = 0;
    let mut len = std::mem::size_of::<libc::c_int>() as libc::socklen_t;
    let rc = unsafe {
        libc::getsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_ERROR,
            &mut err as *mut _ as *mut libc::c_void,
            &mut len,
        )
    };
    if rc != 0 {
        return Err(std::io::Error::last_os_error());
    }
    if err != 0 {
        return Err(std::io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// Bound on reads drained from one connection per loop iteration so a
/// firehose peer cannot starve the others.
const READS_PER_CONN: usize = 16;

/// What the reactor decided to do with one connection after processing it.
enum ConnFate {
    Keep,
    Close,
}

/// The event loop: accepts, reads, connects and flushes every peer socket
/// of one hive.
fn reactor_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    mut wake_rx: UnixStream,
    inbox_tx: Sender<(HiveId, Frame)>,
) {
    let mut in_conns: Vec<InConn> = Vec::new();
    let mut out_conns: HashMap<HiveId, OutConn> = HashMap::new();

    while !shared.shutdown.load(Ordering::SeqCst) {
        // Close outbound connections for peers the hive disconnected.
        for peer in shared.closing.lock().drain(..) {
            out_conns.remove(&peer);
        }

        // Start connects for peers with queued frames and no connection,
        // unless an open backoff window says not to bother yet.
        start_pending_connects(&shared, &mut out_conns);

        // Opportunistic flush: the common case is a send() wake with the
        // socket writable, where the writev below succeeds without a
        // POLLOUT round trip.
        flush_established(&shared, &mut out_conns);

        let timeout = poll_timeout(&shared, &out_conns);
        let mut pollfds: Vec<libc::pollfd> =
            Vec::with_capacity(2 + in_conns.len() + out_conns.len());
        pollfds.push(pollfd(wake_rx.as_raw_fd(), libc::POLLIN));
        pollfds.push(pollfd(listener.as_raw_fd(), libc::POLLIN));
        for c in &in_conns {
            pollfds.push(pollfd(c.stream.as_raw_fd(), libc::POLLIN));
        }
        let out_order: Vec<HiveId> = out_conns.keys().copied().collect();
        for peer in &out_order {
            let conn = &out_conns[peer];
            let mut ev = libc::POLLIN; // EOF / reset detection
            let pending = shared
                .outs
                .lock()
                .get(peer)
                .is_some_and(|po| !po.ring.is_empty());
            if conn.connecting.is_some() || pending {
                ev |= libc::POLLOUT;
            }
            pollfds.push(pollfd(conn.stream.as_raw_fd(), ev));
        }

        let rc =
            unsafe { libc::poll(pollfds.as_mut_ptr(), pollfds.len() as libc::nfds_t, timeout) };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            break; // poll itself failing is unrecoverable
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }

        // Wake pipe: drain *before* clearing the pending flag. A sender
        // whose wake was elided (flag already set) must have set the flag
        // before this store, i.e. after pushing its frame — and the
        // pre-poll phases below run after the store, so the frame is seen.
        // The reverse order could drain a byte whose flag outlives it and
        // sleep through the next send.
        if pollfds[0].revents != 0 {
            let mut sink = [0u8; 16];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            shared.wake_pending.store(false, Ordering::Release);
        }

        // Accept every waiting inbound connection.
        if pollfds[1].revents != 0 {
            while let Ok((stream, _)) = listener.accept() {
                stream.set_nonblocking(true).ok();
                stream.set_nodelay(true).ok();
                in_conns.push(InConn {
                    stream,
                    decoder: FrameDecoder::new(),
                    peer: None,
                });
            }
        }

        // Drain readable inbound connections. Capture the count pollfds
        // was built with: removals below must not shift the outbound base.
        let n_in = in_conns.len();
        let mut delivered = false;
        let mut idx = 0;
        while idx < in_conns.len() {
            let revents = pollfds[2 + idx].revents;
            let fate = if revents & (libc::POLLIN | libc::POLLHUP | libc::POLLERR) != 0 {
                read_inbound(&shared, &mut in_conns[idx], &inbox_tx, &mut delivered)
            } else {
                ConnFate::Keep
            };
            match fate {
                ConnFate::Keep => idx += 1,
                ConnFate::Close => {
                    // swap_remove reorders the tail, but pollfds is indexed
                    // by the *old* order — rebuild next iteration, and only
                    // process the swapped-in element then too.
                    in_conns.swap_remove(idx);
                    break;
                }
            }
        }

        // Outbound connections: settle in-flight connects, detect EOF.
        let out_base = 2 + n_in;
        for (i, peer) in out_order.iter().enumerate() {
            let Some(conn) = out_conns.get_mut(peer) else {
                continue;
            };
            let pfd_idx = out_base + i;
            let revents = if pfd_idx < pollfds.len() {
                pollfds[pfd_idx].revents
            } else {
                0
            };
            let mut close = false;
            if let Some(deadline) = conn.connecting {
                let settled = revents & (libc::POLLOUT | libc::POLLERR | libc::POLLHUP) != 0;
                if settled {
                    match take_socket_error(conn.stream.as_raw_fd()) {
                        Ok(()) => {
                            conn.connecting = None;
                            on_connect_established(&shared, *peer, &conn.stream);
                        }
                        Err(_) => close = true,
                    }
                } else if Instant::now() >= deadline {
                    close = true;
                }
                if close {
                    on_connect_failed(&shared, *peer);
                    out_conns.remove(peer);
                    continue;
                }
            } else if revents & (libc::POLLIN | libc::POLLHUP | libc::POLLERR) != 0 {
                // Established outbound sockets never carry inbound frames
                // (each direction dials its own connection), so readable
                // means closed or reset.
                let mut probe = [0u8; 64];
                match conn.stream.read(&mut probe) {
                    Ok(0) => close = true,
                    Ok(_) => {} // stray bytes: ignore
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => close = true,
                }
                if close {
                    on_connect_lost(&shared, *peer);
                    out_conns.remove(peer);
                    continue;
                }
            }
        }

        // Flush whatever became writable or was enqueued meanwhile.
        flush_established(&shared, &mut out_conns);

        if delivered {
            if let Some(wake) = shared.waker.lock().clone() {
                wake();
            }
        }
    }
    // Dropping the listener and connection maps closes every socket.
}

/// Shorthand for a [`libc::pollfd`] entry.
fn pollfd(fd: RawFd, events: libc::c_short) -> libc::pollfd {
    libc::pollfd {
        fd,
        events,
        revents: 0,
    }
}

/// Computes how long the loop may sleep: the nearest backoff expiry of a
/// peer with queued frames, or the nearest connect deadline.
fn poll_timeout(shared: &Shared, out_conns: &HashMap<HiveId, OutConn>) -> i32 {
    let now = Instant::now();
    let mut nearest: Option<Duration> = None;
    let mut consider = |d: Duration| {
        nearest = Some(nearest.map_or(d, |n| n.min(d)));
    };
    for conn in out_conns.values() {
        if let Some(deadline) = conn.connecting {
            consider(deadline.saturating_duration_since(now));
        }
    }
    for (peer, po) in shared.outs.lock().iter() {
        if po.ring.is_empty() || po.connected || out_conns.contains_key(peer) {
            continue;
        }
        match po.backoff {
            Some(b) if b.active() => consider(b.remaining()),
            _ => consider(Duration::ZERO),
        }
    }
    match nearest {
        Some(d) => (d.as_millis() as i32).clamp(0, IDLE_POLL_MS),
        None => IDLE_POLL_MS,
    }
}

/// Starts non-blocking connects for every peer with queued frames, no
/// connection, and no open backoff window.
fn start_pending_connects(shared: &Arc<Shared>, out_conns: &mut HashMap<HiveId, OutConn>) {
    let pending: Vec<HiveId> = shared
        .outs
        .lock()
        .iter()
        .filter(|(peer, po)| {
            !po.ring.is_empty()
                && !po.connected
                && !out_conns.contains_key(peer)
                && !po.backoff.is_some_and(|b| b.active())
        })
        .map(|(peer, _)| *peer)
        .collect();
    for peer in pending {
        let addr = shared.peers.lock().get(&peer).copied();
        let started = addr.and_then(|a| start_connect(a).ok());
        match started {
            Some(stream) => {
                out_conns.insert(
                    peer,
                    OutConn {
                        stream,
                        connecting: Some(Instant::now() + CONNECT_TIMEOUT),
                    },
                );
            }
            // No address on file or an immediate connect error: both are
            // connect failures (the threaded engine defers identically).
            None => on_connect_failed(shared, peer),
        }
    }
}

/// A non-blocking connect settled successfully: reset backoff, queue the
/// handshake ahead of the backlog, and mark the peer writable.
fn on_connect_established(shared: &Arc<Shared>, peer: HiveId, stream: &TcpStream) {
    stream.set_nodelay(true).ok();
    shared.counters.record_connect_success(peer);
    let mut outs = shared.outs.lock();
    if let Some(po) = outs.get_mut(&peer) {
        po.backoff = None;
        po.connected = true;
        po.ring.reset_progress();
        // Identify ourselves before any queued traffic, exactly like the
        // threaded dialer. Unaccounted and never surrendered.
        po.ring.push_front(EncodedFrame {
            kind: None,
            bytes: encode_frame(shared.id, KIND_HANDSHAKE, &[]),
            acct_len: 0,
        });
    }
    drop(outs);
    emit(
        &shared.events,
        EventKind::PeerConnect,
        peer,
        "outbound connection established",
    );
}

/// A connect attempt failed: bump the backoff window and count every frame
/// in the ring that was not already deferred.
fn on_connect_failed(shared: &Arc<Shared>, peer: HiveId) {
    let mut outs = shared.outs.lock();
    let Some(po) = outs.get_mut(&peer) else {
        return;
    };
    po.connected = false;
    let window_ms = ConnectBackoff::bump(&mut po.backoff, peer);
    let newly_deferred = po.ring.len() - po.counted;
    po.counted = po.ring.len();
    drop(outs);
    shared.counters.record_connect_failure(peer, window_ms);
    for _ in 0..newly_deferred {
        shared.counters.record_deferred();
    }
    emit(
        &shared.events,
        EventKind::PeerDisconnect,
        peer,
        &format!("connect failed; backing off {window_ms}ms"),
    );
}

/// An established outbound connection died: forget partial-write progress
/// so the torn frame retransmits whole on the next connect (no backoff —
/// the peer was just alive, so the reconnect is attempted immediately,
/// like the threaded engine's write-error retry).
fn on_connect_lost(shared: &Arc<Shared>, peer: HiveId) {
    let mut outs = shared.outs.lock();
    if let Some(po) = outs.get_mut(&peer) {
        po.connected = false;
        po.ring.reset_progress();
    }
    drop(outs);
    emit(
        &shared.events,
        EventKind::PeerDisconnect,
        peer,
        "outbound connection closed (peer went away or write error)",
    );
}

/// Vector-flushes every established outbound connection with queued frames.
fn flush_established(shared: &Arc<Shared>, out_conns: &mut HashMap<HiveId, OutConn>) {
    let mut lost: Vec<HiveId> = Vec::new();
    {
        let mut outs = shared.outs.lock();
        for (peer, conn) in out_conns.iter_mut() {
            if conn.connecting.is_some() {
                continue;
            }
            let Some(po) = outs.get_mut(peer) else {
                continue;
            };
            if po.ring.is_empty() {
                continue;
            }
            let PeerOut {
                ref mut ring,
                ref mut counted,
                ..
            } = *po;
            let counters = &shared.counters;
            match ring.flush(&mut conn.stream, |kind, acct_len| {
                counters.record_out(kind, acct_len);
                *counted = counted.saturating_sub(1);
            }) {
                Ok(FlushOutcome::Drained) | Ok(FlushOutcome::WouldBlock) => {}
                Err(_) => lost.push(*peer),
            }
        }
    }
    for peer in lost {
        on_connect_lost(shared, peer);
        out_conns.remove(&peer);
    }
}

/// Drains one readable inbound connection into the inbox.
fn read_inbound(
    shared: &Arc<Shared>,
    conn: &mut InConn,
    inbox_tx: &Sender<(HiveId, Frame)>,
    delivered: &mut bool,
) -> ConnFate {
    for _ in 0..READS_PER_CONN {
        match conn.decoder.read_from(&mut conn.stream) {
            Ok(0) => {
                if let Some(peer) = conn.peer {
                    emit(
                        &shared.events,
                        EventKind::PeerDisconnect,
                        peer,
                        "inbound connection closed (peer went away or read error)",
                    );
                }
                return ConnFate::Close;
            }
            Ok(_) => loop {
                match conn.decoder.next_frame() {
                    Ok(Some(decoded)) => {
                        if conn.peer.is_none() {
                            // The first frame must be the handshake.
                            if decoded.kind != KIND_HANDSHAKE {
                                return ConnFate::Close;
                            }
                            conn.peer = Some(decoded.src);
                            emit(
                                &shared.events,
                                EventKind::PeerConnect,
                                decoded.src,
                                "inbound connection accepted (handshake received)",
                            );
                            continue;
                        }
                        let Some(kind) = byte_to_kind(decoded.kind) else {
                            continue; // unknown kinds are skipped, not fatal
                        };
                        let peer = conn.peer.expect("handshake seen");
                        shared.counters.record_in(kind, decoded.payload.len() + 8);
                        if inbox_tx
                            .send((
                                peer,
                                Frame {
                                    kind,
                                    bytes: decoded.payload,
                                },
                            ))
                            .is_err()
                        {
                            return ConnFate::Close;
                        }
                        *delivered = true;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        if let Some(peer) = conn.peer {
                            emit(
                                &shared.events,
                                EventKind::PeerDisconnect,
                                peer,
                                "inbound connection dropped (malformed frame)",
                            );
                        }
                        return ConnFate::Close;
                    }
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return ConnFate::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if let Some(peer) = conn.peer {
                    emit(
                        &shared.events,
                        EventKind::PeerDisconnect,
                        peer,
                        "inbound connection closed (peer went away or read error)",
                    );
                }
                return ConnFate::Close;
            }
        }
    }
    ConnFate::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_core::transport::FrameKind;

    fn pair() -> (ReactorTransport, ReactorTransport) {
        let mut t1 =
            ReactorTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new())
                .unwrap();
        let mut t2 =
            ReactorTransport::bind(HiveId(2), "127.0.0.1:0".parse().unwrap(), HashMap::new())
                .unwrap();
        let a1 = t1.local_addr();
        let a2 = t2.local_addr();
        t1.add_peer(HiveId(2), a2);
        t2.add_peer(HiveId(1), a1);
        (t1, t2)
    }

    fn recv_blocking(t: &ReactorTransport, timeout_ms: u64) -> Option<(HiveId, Frame)> {
        let deadline = Instant::now() + Duration::from_millis(timeout_ms);
        while Instant::now() < deadline {
            if let Some(x) = t.try_recv() {
                return Some(x);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn frames_flow_both_ways() {
        let (t1, t2) = pair();
        t1.send(HiveId(2), Frame::app(vec![1, 2, 3]));
        let (from, f) = recv_blocking(&t2, 2000).expect("frame arrives");
        assert_eq!(from, HiveId(1));
        assert_eq!(f.kind, FrameKind::App);
        assert_eq!(f.bytes, vec![1, 2, 3]);

        t2.send(HiveId(1), Frame::raft(vec![9]));
        let (from, f) = recv_blocking(&t1, 2000).expect("reply arrives");
        assert_eq!(from, HiveId(2));
        assert_eq!(f.kind, FrameKind::Raft);
        assert_eq!(f.bytes, vec![9]);
    }

    #[test]
    fn burst_is_delivered_in_order() {
        let (t1, t2) = pair();
        for i in 0..200u32 {
            t1.send(HiveId(2), Frame::app(i.to_le_bytes().to_vec()));
        }
        for i in 0..200u32 {
            let (_, f) = recv_blocking(&t2, 2000).expect("burst frame arrives");
            assert_eq!(f.bytes, i.to_le_bytes().to_vec());
        }
        let snap = t1.counters().snapshot();
        assert_eq!(snap.sent(FrameKind::App).0, 200);
    }

    #[test]
    fn dead_peer_enters_backoff_and_defers() {
        let dead_addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut peers = HashMap::new();
        peers.insert(HiveId(2), dead_addr);
        let t1 = ReactorTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
        t1.send(HiveId(2), Frame::app(vec![1]));
        // The connect is asynchronous: wait for the failure to register.
        let deadline = Instant::now() + Duration::from_millis(2000);
        while t1.counters().snapshot().connect_failures == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t1.counters().snapshot().connect_failures, 1);
        assert!(
            t1.counters().peer_backoff_ms(HiveId(2)).unwrap() >= crate::buffer::BACKOFF_BASE_MS
        );
        // Sends inside the window defer without probing.
        t1.send(HiveId(2), Frame::app(vec![2]));
        t1.send(HiveId(2), Frame::app(vec![3]));
        std::thread::sleep(Duration::from_millis(50));
        let snap = t1.counters().snapshot();
        assert_eq!(snap.connect_failures, 1, "no probe inside the window");
        assert_eq!(snap.deferred, 3);
        assert_eq!(snap.sent(FrameKind::App), (0, 0));
    }

    #[test]
    fn deferred_frames_flush_on_reconnect_in_order() {
        let dead_addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut peers = HashMap::new();
        peers.insert(HiveId(2), dead_addr);
        let t1 = ReactorTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
        t1.send(HiveId(2), Frame::app(vec![1]));
        t1.send(HiveId(2), Frame::app(vec![2]));
        let deadline = Instant::now() + Duration::from_millis(2000);
        while t1.counters().snapshot().deferred < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Revive hive 2 on the same address; once the window expires the
        // reactor reconnects on its own (no new send needed) and flushes.
        let t2 = ReactorTransport::bind(HiveId(2), dead_addr, HashMap::new()).unwrap();
        for expect in 1..=2u8 {
            let (from, f) = recv_blocking(&t2, 5000).expect("deferred frame arrives");
            assert_eq!(from, HiveId(1));
            assert_eq!(f.bytes, vec![expect]);
        }
        assert_eq!(t1.counters().snapshot().sent(FrameKind::App).0, 2);
        assert_eq!(t1.counters().peer_backoff_ms(HiveId(2)), None);
    }

    #[test]
    fn disconnect_peer_surrenders_queued_frames() {
        let dead_addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut peers = HashMap::new();
        peers.insert(HiveId(4), dead_addr);
        let t = ReactorTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
        t.send(HiveId(4), Frame::app(vec![1]));
        t.send(HiveId(4), Frame::control(vec![2]));
        let deadline = Instant::now() + Duration::from_millis(2000);
        while t.counters().snapshot().connect_failures == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let held = t.disconnect_peer(HiveId(4));
        assert_eq!(held.len(), 2, "both queued frames come back to the caller");
        assert_eq!(held[0].bytes, vec![1]);
        assert_eq!(held[1].kind, FrameKind::Control);
        assert!(!t.peers().contains(&HiveId(4)));
    }

    #[test]
    fn reactor_interoperates_with_threaded_transport() {
        // A mixed cluster: hive 1 reactor, hive 2 classic threaded. Both
        // directions must deliver — the engines share one wire format.
        let mut r =
            ReactorTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new())
                .unwrap();
        let mut th =
            crate::TcpTransport::bind(HiveId(2), "127.0.0.1:0".parse().unwrap(), HashMap::new())
                .unwrap();
        let ra = r.local_addr();
        let ta = th.local_addr();
        r.add_peer(HiveId(2), ta);
        th.add_peer(HiveId(1), ra);
        r.send(HiveId(2), Frame::app(vec![42]));
        let deadline = Instant::now() + Duration::from_millis(2000);
        let mut got = None;
        while got.is_none() && Instant::now() < deadline {
            got = th.try_recv();
            std::thread::sleep(Duration::from_millis(1));
        }
        let (from, f) = got.expect("threaded receives from reactor");
        assert_eq!(from, HiveId(1));
        assert_eq!(f.bytes, vec![42]);

        th.send(HiveId(1), Frame::raft(vec![7]));
        let (from, f) = recv_blocking(&r, 2000).expect("reactor receives from threaded");
        assert_eq!(from, HiveId(2));
        assert_eq!(f.kind, FrameKind::Raft);
        assert_eq!(f.bytes, vec![7]);
    }

    #[test]
    fn shutdown_joins_the_reactor_thread() {
        let (t1, t2) = pair();
        t1.send(HiveId(2), Frame::app(vec![1]));
        recv_blocking(&t2, 2000).expect("frame arrives");
        drop(t1);
        drop(t2); // Drop joins; reaching here without hanging is the test
    }
}
