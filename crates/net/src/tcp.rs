//! Threaded TCP transport for multi-process deployments.
//!
//! This is the classic engine (`--transport threaded`): one listener thread
//! accepts inbound peers, a blocking reader thread serves each connection,
//! and sends write synchronously on the caller's thread. It shares its wire
//! format and framing code ([`crate::frame`]) with the non-blocking reactor
//! ([`crate::ReactorTransport`]) — mixed clusters interoperate — and is kept
//! for one release as the reactor's differential baseline before removal
//! (see DESIGN.md §3.14).
//!
//! Outgoing connections are established lazily and re-established on error.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use beehive_core::events::{EventJournal, EventKind};
use beehive_core::transport::{Frame, FrameKind, Transport, TransportCounters};
use beehive_core::HiveId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::buffer::{ConnectBackoff, DEFERRED_CAP};
use crate::frame::{byte_to_kind, kind_to_byte, read_frame, write_frame, KIND_HANDSHAKE};

/// Wakeup callback invoked by reader threads when a frame lands in the
/// inbox (set after bind by `Hive::run` via [`Transport::set_waker`]).
type SharedWaker = Arc<Mutex<Option<Arc<dyn Fn() + Send + Sync>>>>;

/// The hive's flight-recorder journal, shared with reader threads (set
/// after bind via [`Transport::set_events`], like the waker).
type SharedEvents = Arc<Mutex<Option<Arc<EventJournal>>>>;

/// Records a peer lifecycle event if a journal is wired.
fn emit(events: &SharedEvents, kind: EventKind, peer: HiveId, detail: &str) {
    if let Some(journal) = events.lock().clone() {
        journal.record_full(kind, 0, "", None, Some(peer), detail);
    }
}

/// TCP-backed [`Transport`]. One listener thread accepts inbound peers; a
/// reader thread per connection feeds the shared inbox.
pub struct TcpTransport {
    id: HiveId,
    /// Peer address book. Behind a lock because elastic membership adds and
    /// removes peers at runtime through `&self` trait methods
    /// ([`Transport::connect_peer`] / [`Transport::disconnect_peer`]).
    peers: Mutex<HashMap<HiveId, SocketAddr>>,
    outgoing: Mutex<HashMap<HiveId, TcpStream>>,
    /// Per-peer reconnect backoff: sends within the current window are
    /// deferred instead of paying a blocking connect timeout on the hive
    /// thread for every frame to a dead peer. The window grows
    /// exponentially (with jitter) while the peer stays dead and resets on
    /// the first successful connect.
    connect_backoff: Mutex<HashMap<HiveId, ConnectBackoff>>,
    /// Frames queued while their peer is dead or backed off, flushed (oldest
    /// first, ahead of new traffic) on the next successful connect.
    deferred: Mutex<HashMap<HiveId, VecDeque<Frame>>>,
    inbox_rx: Receiver<(HiveId, Frame)>,
    _listener_addr: SocketAddr,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    waker: SharedWaker,
    counters: Arc<TransportCounters>,
    events: SharedEvents,
}

impl TcpTransport {
    /// Binds `listen` for hive `id` and records the peer address book.
    /// The address book must contain every other hive in the cluster.
    pub fn bind(
        id: HiveId,
        listen: SocketAddr,
        peers: HashMap<HiveId, SocketAddr>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let (inbox_tx, inbox_rx) = unbounded();
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waker: SharedWaker = Arc::new(Mutex::new(None));
        let counters = Arc::new(TransportCounters::new());
        let events: SharedEvents = Arc::new(Mutex::new(None));

        let accept_tx = inbox_tx.clone();
        let accept_shutdown = shutdown.clone();
        let accept_waker = waker.clone();
        let accept_counters = counters.clone();
        let accept_events = events.clone();
        std::thread::Builder::new()
            .name(format!("bh-tcp-accept-{}", id.0))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Frames are latency-sensitive control traffic and each
                    // is written whole; never let Nagle sit on a reply.
                    stream.set_nodelay(true).ok();
                    let tx = accept_tx.clone();
                    let stop = accept_shutdown.clone();
                    let waker = accept_waker.clone();
                    let counters = accept_counters.clone();
                    let events = accept_events.clone();
                    std::thread::Builder::new()
                        .name("bh-tcp-read".into())
                        .spawn(move || reader_loop(stream, tx, stop, waker, counters, events))
                        .ok();
                }
            })
            .expect("spawn accept thread");

        Ok(TcpTransport {
            id,
            peers: Mutex::new(peers),
            outgoing: Mutex::new(HashMap::new()),
            connect_backoff: Mutex::new(HashMap::new()),
            deferred: Mutex::new(HashMap::new()),
            inbox_rx,
            _listener_addr: local_addr,
            shutdown,
            waker,
            counters,
            events,
        })
    }

    /// Per-[`FrameKind`] traffic counters (shared with the reader threads);
    /// snapshot them for metric exposition.
    pub fn counters(&self) -> Arc<TransportCounters> {
        self.counters.clone()
    }

    /// The address this transport actually listens on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self._listener_addr
    }

    /// Adds (or updates) a peer's address after binding — lets clusters bind
    /// everyone on port 0 first and exchange the resulting addresses.
    pub fn add_peer(&mut self, id: HiveId, addr: SocketAddr) {
        self.peers.lock().insert(id, addr);
    }

    fn connect(&self, to: HiveId) -> Option<TcpStream> {
        // Copy the address out so the blocking connect happens unlocked.
        let addr = *self.peers.lock().get(&to)?;
        let mut stream =
            TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(500)).ok()?;
        stream.set_nodelay(true).ok();
        // Identify ourselves so the acceptor can label inbound frames.
        write_frame(&mut stream, self.id, KIND_HANDSHAKE, &[]).ok()?;
        Some(stream)
    }

    /// Queues a frame for delivery once `to` comes back. Bounded per peer:
    /// at [`DEFERRED_CAP`] one queued frame is evicted, preferring the
    /// oldest App frame (the reliable channel retransmits those), then the
    /// oldest Raft frame (Raft retransmits its own traffic), and only as a
    /// last resort a Control frame — Control has no retransmission layer
    /// above this one, so dropping it is real loss. Evictions are counted
    /// separately from deferrals (`deferred_evicted` vs `deferred`).
    fn defer(&self, to: HiveId, frame: Frame) {
        let mut deferred = self.deferred.lock();
        let q = deferred.entry(to).or_default();
        if q.len() >= DEFERRED_CAP {
            let victim = q
                .iter()
                .position(|f| f.kind == FrameKind::App)
                .or_else(|| q.iter().position(|f| f.kind == FrameKind::Raft))
                .unwrap_or(0);
            let evicted_kind = q[victim].kind;
            q.remove(victim);
            self.counters.record_deferred_evicted();
            emit(
                &self.events,
                EventKind::DeferredEvict,
                to,
                &format!(
                    "deferred queue full ({DEFERRED_CAP}); evicted oldest {} frame",
                    evicted_kind.label()
                ),
            );
        }
        q.push_back(frame);
        self.counters.record_deferred();
    }

    /// Writes every frame deferred for `to` down `stream`, oldest first.
    /// Returns `false` (leaving the unsent tail queued) if a write fails.
    fn flush_deferred(&self, to: HiveId, stream: &mut TcpStream) -> bool {
        loop {
            // Pop before writing so the blocking write happens outside the
            // deferred lock; push back on failure.
            let Some(frame) = self
                .deferred
                .lock()
                .get_mut(&to)
                .and_then(|q| q.pop_front())
            else {
                return true;
            };
            match write_frame(stream, self.id, kind_to_byte(frame.kind), &frame.bytes) {
                Ok(()) => self.counters.record_out(frame.kind, frame.wire_len()),
                Err(_) => {
                    self.deferred
                        .lock()
                        .entry(to)
                        .or_default()
                        .push_front(frame);
                    return false;
                }
            }
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    tx: Sender<(HiveId, Frame)>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    waker: SharedWaker,
    counters: Arc<TransportCounters>,
    events: SharedEvents,
) {
    // The first frame must be a handshake naming the peer.
    let peer = match read_frame(&mut stream) {
        Ok((src, KIND_HANDSHAKE, _)) => src,
        _ => return,
    };
    emit(
        &events,
        EventKind::PeerConnect,
        peer,
        "inbound connection accepted (handshake received)",
    );
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        match read_frame(&mut stream) {
            Ok((_src, kind_byte, payload)) => {
                let Some(kind) = byte_to_kind(kind_byte) else {
                    continue;
                };
                counters.record_in(kind, payload.len() + 8);
                if tx
                    .send((
                        peer,
                        Frame {
                            kind,
                            bytes: payload,
                        },
                    ))
                    .is_err()
                {
                    return;
                }
                // Wake a parked hive thread: a frame is waiting in the inbox.
                if let Some(wake) = waker.lock().clone() {
                    wake();
                }
            }
            Err(_) => {
                emit(
                    &events,
                    EventKind::PeerDisconnect,
                    peer,
                    "inbound connection closed (peer went away or read error)",
                );
                return;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> HiveId {
        self.id
    }

    fn send(&self, to: HiveId, frame: Frame) {
        if to == self.id {
            return; // hives never send to themselves over TCP
        }
        // Dead-peer backoff: don't pay a blocking connect timeout per frame
        // to a peer that just refused — the frame is deferred and flushed on
        // the next successful connect. The window doubles per consecutive
        // failure (jittered, capped) so a long-dead peer costs at most one
        // probe per BACKOFF_CAP_MS.
        {
            let backoff = self.connect_backoff.lock();
            if backoff.get(&to).is_some_and(|b| b.active())
                && !self.outgoing.lock().contains_key(&to)
            {
                drop(backoff);
                self.defer(to, frame);
                return;
            }
        }
        let mut outgoing = self.outgoing.lock();
        // Try the cached connection, reconnect once on failure.
        for attempt in 0..2 {
            if let std::collections::hash_map::Entry::Vacant(e) = outgoing.entry(to) {
                match self.connect(to) {
                    Some(s) => {
                        self.connect_backoff.lock().remove(&to);
                        self.counters.record_connect_success(to);
                        emit(
                            &self.events,
                            EventKind::PeerConnect,
                            to,
                            "outbound connection established",
                        );
                        e.insert(s);
                    }
                    None => {
                        let mut backoff = self.connect_backoff.lock();
                        let mut entry = backoff.remove(&to);
                        let window_ms = ConnectBackoff::bump(&mut entry, to);
                        backoff.insert(to, entry.expect("bump always fills the entry"));
                        self.counters.record_connect_failure(to, window_ms);
                        drop(backoff);
                        drop(outgoing);
                        emit(
                            &self.events,
                            EventKind::PeerDisconnect,
                            to,
                            &format!("connect failed; backing off {window_ms}ms"),
                        );
                        self.defer(to, frame);
                        return;
                    }
                }
            }
            let stream = outgoing.get_mut(&to).unwrap();
            // Frames deferred while the peer was down go first, preserving
            // the order the hive emitted them in.
            if !self.flush_deferred(to, stream) {
                outgoing.remove(&to);
                if attempt == 1 {
                    self.defer(to, frame);
                    return;
                }
                continue;
            }
            match write_frame(stream, self.id, kind_to_byte(frame.kind), &frame.bytes) {
                Ok(()) => {
                    self.counters.record_out(frame.kind, frame.wire_len());
                    return;
                }
                Err(_) => {
                    outgoing.remove(&to);
                    if attempt == 1 {
                        self.defer(to, frame);
                        return;
                    }
                }
            }
        }
    }

    fn try_recv(&self) -> Option<(HiveId, Frame)> {
        self.inbox_rx.try_recv().ok()
    }

    fn peers(&self) -> Vec<HiveId> {
        self.peers.lock().keys().copied().collect()
    }

    fn connect_peer(&self, peer: HiveId, addr: &str) {
        let Ok(sock) = addr.parse::<SocketAddr>() else {
            emit(
                &self.events,
                EventKind::PeerDisconnect,
                peer,
                &format!("join announced an unparseable address {addr:?}; peer not added"),
            );
            return;
        };
        self.peers.lock().insert(peer, sock);
        // A joining peer is fresh — don't make it serve out a backoff window
        // earned by whoever held this id before.
        self.connect_backoff.lock().remove(&peer);
        emit(
            &self.events,
            EventKind::PeerConnect,
            peer,
            &format!("peer added to the address book at {sock}"),
        );
    }

    fn disconnect_peer(&self, peer: HiveId) -> Vec<Frame> {
        self.peers.lock().remove(&peer);
        self.connect_backoff.lock().remove(&peer);
        if let Some(stream) = self.outgoing.lock().remove(&peer) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let held: Vec<Frame> = self
            .deferred
            .lock()
            .remove(&peer)
            .map(Vec::from)
            .unwrap_or_default();
        emit(
            &self.events,
            EventKind::PeerDisconnect,
            peer,
            &format!(
                "peer removed from the address book; {} deferred frame(s) surrendered",
                held.len()
            ),
        );
        held
    }

    fn set_waker(&mut self, waker: Arc<dyn Fn() + Send + Sync>) {
        *self.waker.lock() = Some(waker);
    }

    fn set_events(&mut self, events: Arc<EventJournal>) {
        *self.events.lock() = Some(events);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Relaxed);
        // Wake the accept loop with a dummy connection so it can exit.
        let _ = TcpStream::connect(self._listener_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{backoff_window_ms, BACKOFF_BASE_MS, BACKOFF_JITTER_MS};
    use crate::frame::KIND_CONTROL;

    fn pair() -> (TcpTransport, TcpTransport) {
        let mut t1 =
            TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        let mut t2 =
            TcpTransport::bind(HiveId(2), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        let a1 = t1.local_addr();
        let a2 = t2.local_addr();
        t1.add_peer(HiveId(2), a2);
        t2.add_peer(HiveId(1), a1);
        (t1, t2)
    }

    fn recv_blocking(t: &TcpTransport, timeout_ms: u64) -> Option<(HiveId, Frame)> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        while std::time::Instant::now() < deadline {
            if let Some(x) = t.try_recv() {
                return Some(x);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn frames_flow_both_ways() {
        let (t1, t2) = pair();
        t1.send(HiveId(2), Frame::app(vec![1, 2, 3]));
        let (from, f) = recv_blocking(&t2, 2000).expect("frame arrives");
        assert_eq!(from, HiveId(1));
        assert_eq!(f.kind, FrameKind::App);
        assert_eq!(f.bytes, vec![1, 2, 3]);

        t2.send(HiveId(1), Frame::raft(vec![9]));
        let (from, f) = recv_blocking(&t1, 2000).expect("reply arrives");
        assert_eq!(from, HiveId(2));
        assert_eq!(f.kind, FrameKind::Raft);
        assert_eq!(f.bytes, vec![9]);
    }

    #[test]
    fn waker_fires_on_inbound_frame() {
        let (t1, mut t2) = pair();
        let woken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let woken2 = woken.clone();
        t2.set_waker(Arc::new(move || {
            woken2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        t1.send(HiveId(2), Frame::app(vec![1]));
        recv_blocking(&t2, 2000).expect("frame arrives");
        // The waker fires just after the inbox insert; give it a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(2000);
        while woken.load(std::sync::atomic::Ordering::SeqCst) == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(woken.load(std::sync::atomic::Ordering::SeqCst) >= 1);
    }

    #[test]
    fn counters_account_traffic_per_kind() {
        let (t1, t2) = pair();
        t1.send(HiveId(2), Frame::app(vec![1, 2, 3]));
        recv_blocking(&t2, 2000).expect("frame arrives");
        // wire_len = payload + 8-byte header estimate on both sides.
        assert_eq!(t1.counters().snapshot().sent(FrameKind::App), (1, 11));
        assert_eq!(t2.counters().snapshot().received(FrameKind::App), (1, 11));
        assert_eq!(t1.counters().snapshot().sent(FrameKind::Raft), (0, 0));
    }

    #[test]
    fn send_to_unknown_peer_is_dropped() {
        let (t1, _t2) = pair();
        // No address for hive 9: silently dropped.
        t1.send(HiveId(9), Frame::app(vec![1]));
        assert!(t1.try_recv().is_none());
    }

    #[test]
    fn backoff_window_grows_and_caps() {
        let p = HiveId(3);
        let jitter = |f: u32| (u64::from(p.0) * 31 + u64::from(f) * 17) % BACKOFF_JITTER_MS;
        assert_eq!(backoff_window_ms(p, 1), 500 + jitter(1));
        assert_eq!(backoff_window_ms(p, 2), 1000 + jitter(2));
        assert_eq!(backoff_window_ms(p, 5), 8000 + jitter(5));
        // 500 << 5 = 16s exceeds the cap; deeper failure counts stay capped.
        assert_eq!(backoff_window_ms(p, 6), 10_000 + jitter(6));
        assert_eq!(backoff_window_ms(p, 60), 10_000 + jitter(60));
    }

    #[test]
    fn dead_peer_enters_backoff_and_suppresses_probes() {
        // An address that is guaranteed refused: bind, take the port, close.
        let dead_addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut peers = HashMap::new();
        peers.insert(HiveId(2), dead_addr);
        let t1 = TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
        t1.send(HiveId(2), Frame::app(vec![1]));
        let snap = t1.counters().snapshot();
        assert_eq!(snap.connect_failures, 1);
        let window = t1
            .counters()
            .peer_backoff_ms(HiveId(2))
            .expect("backed off");
        assert!(window >= BACKOFF_BASE_MS, "window {window}ms");
        // Within the window, further sends are deferred without probing.
        t1.send(HiveId(2), Frame::app(vec![2]));
        t1.send(HiveId(2), Frame::app(vec![3]));
        assert_eq!(t1.counters().snapshot().connect_failures, 1);
        // All three frames (including the one that hit the failed connect)
        // are queued for retransmission, not lost.
        assert_eq!(t1.counters().snapshot().deferred, 3);
        assert_eq!(t1.counters().snapshot().sent(FrameKind::App), (0, 0));
    }

    #[test]
    fn deferred_frames_flush_on_reconnect_in_order() {
        let dead_addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut peers = HashMap::new();
        peers.insert(HiveId(2), dead_addr);
        let t1 = TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), peers).unwrap();
        t1.send(HiveId(2), Frame::app(vec![1]));
        t1.send(HiveId(2), Frame::app(vec![2]));
        assert_eq!(t1.counters().snapshot().deferred, 2);
        // Revive hive 2 on the same address and wait out the backoff window.
        let t2 = TcpTransport::bind(HiveId(2), dead_addr, HashMap::new()).unwrap();
        let window = t1
            .counters()
            .peer_backoff_ms(HiveId(2))
            .expect("backed off");
        std::thread::sleep(std::time::Duration::from_millis(window + 50));
        // The next send reconnects and flushes the deferred queue first.
        t1.send(HiveId(2), Frame::app(vec![3]));
        for expect in 1..=3u8 {
            let (from, f) = recv_blocking(&t2, 2000).expect("deferred frame arrives");
            assert_eq!(from, HiveId(1));
            assert_eq!(f.bytes, vec![expect]);
        }
        assert_eq!(t1.counters().snapshot().sent(FrameKind::App).0, 3);
    }

    #[test]
    fn full_deferred_queue_evicts_app_frames_before_control() {
        let t =
            TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        let peer = HiveId(9);
        // Oldest frame is Control (no retransmission layer above TCP).
        t.defer(
            peer,
            Frame {
                kind: FrameKind::Control,
                bytes: vec![0xC0],
            },
        );
        for i in 0..DEFERRED_CAP - 1 {
            t.defer(peer, Frame::app(vec![(i % 251) as u8]));
        }
        assert_eq!(t.counters().snapshot().deferred_evicted, 0);
        // The queue is full: the next deferral evicts the oldest *App*
        // frame (the reliable channel re-offers it), not the Control frame
        // sitting at the front.
        t.defer(peer, Frame::app(vec![0xFF]));
        {
            let deferred = t.deferred.lock();
            let q = deferred.get(&peer).unwrap();
            assert_eq!(q.len(), DEFERRED_CAP);
            assert_eq!(q.front().unwrap().kind, FrameKind::Control);
            assert_eq!(q.front().unwrap().bytes, vec![0xC0]);
            assert_eq!(q[1].bytes, vec![1], "App frame 0 was the victim");
        }
        let snap = t.counters().snapshot();
        assert_eq!(snap.deferred_evicted, 1);
        assert_eq!(snap.deferred, DEFERRED_CAP as u64 + 1);
    }

    #[test]
    fn successful_connect_resets_backoff() {
        let (t1, t2) = pair();
        t1.send(HiveId(2), Frame::app(vec![1]));
        recv_blocking(&t2, 2000).expect("frame arrives");
        assert_eq!(t1.counters().peer_backoff_ms(HiveId(2)), None);
        assert_eq!(t1.counters().snapshot().connect_failures, 0);
    }

    #[test]
    fn connect_peer_adds_address_at_runtime() {
        // Neither transport knows the other at bind time — the joiner is
        // announced later, exactly as a live membership change would.
        let t1 =
            TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        let t2 =
            TcpTransport::bind(HiveId(2), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        t1.connect_peer(HiveId(2), &t2.local_addr().to_string());
        t1.send(HiveId(2), Frame::app(vec![7]));
        let (from, f) = recv_blocking(&t2, 2000).expect("frame reaches the runtime-added peer");
        assert_eq!(from, HiveId(1));
        assert_eq!(f.bytes, vec![7]);
        // A garbage address is refused without touching the address book.
        t1.connect_peer(HiveId(3), "not-an-address");
        assert!(!t1.peers().contains(&HiveId(3)));
    }

    #[test]
    fn disconnect_peer_surrenders_deferred_frames() {
        let t =
            TcpTransport::bind(HiveId(1), "127.0.0.1:0".parse().unwrap(), HashMap::new()).unwrap();
        let peer = HiveId(4);
        t.defer(peer, Frame::app(vec![1]));
        t.defer(
            peer,
            Frame {
                kind: FrameKind::Control,
                bytes: vec![2],
            },
        );
        let held = t.disconnect_peer(peer);
        assert_eq!(held.len(), 2, "both queued frames come back to the caller");
        assert_eq!(held[0].bytes, vec![1]);
        assert_eq!(held[1].kind, FrameKind::Control);
        assert!(t.deferred.lock().get(&peer).is_none());
        assert!(!t.peers().contains(&peer));
    }

    #[test]
    fn frame_roundtrip_encoding() {
        // Exercise the framing codec through a loopback socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_frame(&mut client, HiveId(7), KIND_CONTROL, &[5, 6, 7]).unwrap();
        let (src, kind, payload) = read_frame(&mut server).unwrap();
        assert_eq!(src, HiveId(7));
        assert_eq!(kind, KIND_CONTROL);
        assert_eq!(payload, vec![5, 6, 7]);
    }
}
