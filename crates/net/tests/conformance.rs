//! Transport conformance suite: one harness, three transports.
//!
//! The reactor engine may only replace the threaded engine if no consumer
//! can tell them apart, so every behavioural contract `hive.rs`, the
//! reliable channel and membership drain rely on is asserted here against
//! the in-memory fabric, the threaded TCP transport, and the non-blocking
//! reactor: per-peer FIFO order, waker delivery, deferred-queue
//! reconnect-flush ordering, eviction priorities under overflow, counter
//! monotonicity, and clean shutdown without leaked threads or sockets.
//!
//! Tests share one global lock: the leak checks count process-wide threads
//! and file descriptors, which concurrent tests would skew.

#![cfg(unix)]

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use beehive_core::transport::{Frame, FrameKind, Transport, TransportCounters};
use beehive_core::{HiveId, SystemClock};
use beehive_net::buffer::DEFERRED_CAP;
use beehive_net::{MemFabric, ReactorTransport, TcpTransport};

/// Serializes every test in this file (see module docs).
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The two real-socket engines, driven through one wrapper so each
/// conformance test is written once.
enum TcpKind {
    Threaded,
    Reactor,
}

enum Tcp {
    Threaded(TcpTransport),
    Reactor(ReactorTransport),
}

impl Tcp {
    fn bind(kind: &TcpKind, id: HiveId, peers: HashMap<HiveId, SocketAddr>) -> Tcp {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        match kind {
            TcpKind::Threaded => Tcp::Threaded(TcpTransport::bind(id, listen, peers).unwrap()),
            TcpKind::Reactor => Tcp::Reactor(ReactorTransport::bind(id, listen, peers).unwrap()),
        }
    }

    /// Binds on a specific address (reviving a previously dead peer).
    fn bind_at(kind: &TcpKind, id: HiveId, listen: SocketAddr) -> Tcp {
        match kind {
            TcpKind::Threaded => {
                Tcp::Threaded(TcpTransport::bind(id, listen, HashMap::new()).unwrap())
            }
            TcpKind::Reactor => {
                Tcp::Reactor(ReactorTransport::bind(id, listen, HashMap::new()).unwrap())
            }
        }
    }

    fn local_addr(&self) -> SocketAddr {
        match self {
            Tcp::Threaded(t) => t.local_addr(),
            Tcp::Reactor(t) => t.local_addr(),
        }
    }

    fn counters(&self) -> Arc<TransportCounters> {
        match self {
            Tcp::Threaded(t) => t.counters(),
            Tcp::Reactor(t) => t.counters(),
        }
    }

    fn add_peer(&mut self, id: HiveId, addr: SocketAddr) {
        match self {
            Tcp::Threaded(t) => t.add_peer(id, addr),
            Tcp::Reactor(t) => t.add_peer(id, addr),
        }
    }

    fn as_transport(&self) -> &dyn Transport {
        match self {
            Tcp::Threaded(t) => t,
            Tcp::Reactor(t) => t,
        }
    }

    fn as_transport_mut(&mut self) -> &mut dyn Transport {
        match self {
            Tcp::Threaded(t) => t,
            Tcp::Reactor(t) => t,
        }
    }
}

const ENGINES: [TcpKind; 2] = [TcpKind::Threaded, TcpKind::Reactor];

fn tcp_pair(kind: &TcpKind) -> (Tcp, Tcp) {
    let mut a = Tcp::bind(kind, HiveId(1), HashMap::new());
    let mut b = Tcp::bind(kind, HiveId(2), HashMap::new());
    let (aa, ba) = (a.local_addr(), b.local_addr());
    a.add_peer(HiveId(2), ba);
    b.add_peer(HiveId(1), aa);
    (a, b)
}

fn recv_blocking(t: &dyn Transport, timeout_ms: u64) -> Option<(HiveId, Frame)> {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    while Instant::now() < deadline {
        if let Some(x) = t.try_recv() {
            return Some(x);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

/// Polls `cond` until it holds or `timeout_ms` elapses.
fn wait_until(timeout_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// A listener's address with the listener closed: connects to it are
/// refused until someone re-binds it.
fn dead_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

// ---------------------------------------------------------------------------
// Contract 1: per-peer FIFO order, mixed frame kinds, across a burst.
// ---------------------------------------------------------------------------

/// Sends `n` frames (kinds rotating App/Raft/Control) and asserts the
/// receiver observes exactly that sequence.
fn assert_fifo(sender: &dyn Transport, receiver: &dyn Transport, to: HiveId, n: u32) {
    let kinds = [FrameKind::App, FrameKind::Raft, FrameKind::Control];
    for i in 0..n {
        let kind = kinds[(i % 3) as usize];
        sender.send(
            to,
            Frame {
                kind,
                bytes: i.to_le_bytes().to_vec(),
            },
        );
    }
    for i in 0..n {
        let (_, f) =
            recv_blocking(receiver, 5000).unwrap_or_else(|| panic!("frame {i}/{n} never arrived"));
        assert_eq!(f.bytes, i.to_le_bytes().to_vec(), "frame {i} out of order");
        assert_eq!(f.kind, kinds[(i % 3) as usize], "frame {i} wrong kind");
    }
}

#[test]
fn fifo_order_per_peer_fabric() {
    let _guard = serial();
    let fabric = MemFabric::new(vec![HiveId(1), HiveId(2)], Arc::new(SystemClock::new()));
    let a = fabric.endpoint(HiveId(1));
    let b = fabric.endpoint(HiveId(2));
    assert_fifo(&a, &b, HiveId(2), 120);
}

#[test]
fn fifo_order_per_peer_tcp_engines() {
    let _guard = serial();
    for kind in &ENGINES {
        let (a, b) = tcp_pair(kind);
        assert_fifo(a.as_transport(), b.as_transport(), HiveId(2), 120);
        // And the reverse direction on the same pair.
        assert_fifo(b.as_transport(), a.as_transport(), HiveId(1), 40);
    }
}

// ---------------------------------------------------------------------------
// Contract 2: the waker fires when an inbound frame lands in the inbox.
// ---------------------------------------------------------------------------

#[test]
fn waker_fires_on_inbound_frame() {
    let _guard = serial();
    for kind in &ENGINES {
        let (a, mut b) = tcp_pair(kind);
        let woken = Arc::new(AtomicUsize::new(0));
        let woken2 = woken.clone();
        b.as_transport_mut().set_waker(Arc::new(move || {
            woken2.fetch_add(1, Ordering::SeqCst);
        }));
        a.as_transport().send(HiveId(2), Frame::app(vec![1]));
        recv_blocking(b.as_transport(), 5000).expect("frame arrives");
        assert!(
            wait_until(2000, || woken.load(Ordering::SeqCst) >= 1),
            "waker never fired"
        );
    }
}

// ---------------------------------------------------------------------------
// Contract 3: frames to a dead peer defer and flush IN ORDER on reconnect,
// ahead of new traffic; the backoff gauge resets on success.
// ---------------------------------------------------------------------------

#[test]
fn deferred_frames_flush_in_order_on_reconnect() {
    let _guard = serial();
    for kind in &ENGINES {
        let addr = dead_addr();
        let mut a = Tcp::bind(kind, HiveId(1), HashMap::new());
        a.add_peer(HiveId(2), addr);
        a.as_transport().send(HiveId(2), Frame::app(vec![1]));
        a.as_transport().send(HiveId(2), Frame::app(vec![2]));
        let counters = a.counters();
        assert!(
            wait_until(3000, || counters.snapshot().deferred >= 2),
            "both frames should defer while the peer is dead"
        );
        assert!(counters.snapshot().connect_failures >= 1);
        // Revive the peer on the very same address, wait out the window,
        // then send one more frame: 1, 2, 3 must arrive in that order.
        let b = Tcp::bind_at(kind, HiveId(2), addr);
        let window = counters.peer_backoff_ms(HiveId(2)).expect("backed off");
        std::thread::sleep(Duration::from_millis(window + 50));
        a.as_transport().send(HiveId(2), Frame::app(vec![3]));
        for expect in 1..=3u8 {
            let (from, f) = recv_blocking(b.as_transport(), 5000).expect("deferred frame arrives");
            assert_eq!(from, HiveId(1));
            assert_eq!(f.bytes, vec![expect], "deferred flush out of order");
        }
        assert!(
            wait_until(2000, || counters.peer_backoff_ms(HiveId(2)).is_none()),
            "backoff gauge resets after a successful connect"
        );
        assert!(
            wait_until(2000, || counters.snapshot().sent(FrameKind::App).0 == 3),
            "all three frames eventually count as sent"
        );
    }
}

// ---------------------------------------------------------------------------
// Contract 4: a full deferred queue evicts App before Raft before Control,
// never grows past DEFERRED_CAP, and surrenders its contents on disconnect.
// ---------------------------------------------------------------------------

#[test]
fn eviction_priorities_under_overflow() {
    let _guard = serial();
    for kind in &ENGINES {
        let addr = dead_addr();
        let mut a = Tcp::bind(kind, HiveId(1), HashMap::new());
        a.add_peer(HiveId(9), addr);
        let t = a.as_transport();
        // Oldest queued frame is Control — the kind with no retransmission
        // layer above the transport.
        t.send(HiveId(9), Frame::control(vec![0xC0]));
        for i in 0..DEFERRED_CAP as u32 {
            t.send(HiveId(9), Frame::app(i.to_le_bytes().to_vec()));
        }
        let counters = a.counters();
        assert!(
            wait_until(3000, || counters.snapshot().deferred_evicted >= 1),
            "overflow must evict"
        );
        assert_eq!(
            counters.snapshot().deferred_evicted,
            1,
            "exactly one over cap"
        );
        // The surrendered queue tells us who the victim was: the Control
        // frame survives at the front, App frame #0 is gone.
        let held = t.disconnect_peer(HiveId(9));
        assert_eq!(held.len(), DEFERRED_CAP);
        assert_eq!(held[0].kind, FrameKind::Control);
        assert_eq!(held[0].bytes, vec![0xC0]);
        assert_eq!(
            held[1].bytes,
            1u32.to_le_bytes().to_vec(),
            "oldest App frame was the victim"
        );
    }
}

// ---------------------------------------------------------------------------
// Contract 5: counters only ever move up, and in/out totals agree across a
// connected pair once traffic settles.
// ---------------------------------------------------------------------------

#[test]
fn counters_are_monotone_and_agree() {
    let _guard = serial();
    for kind in &ENGINES {
        let (a, b) = tcp_pair(kind);
        let ca = a.counters();
        let cb = b.counters();
        let mut last_out = 0u64;
        let mut last_in = 0u64;
        for round in 0..5u8 {
            for i in 0..20u8 {
                a.as_transport().send(HiveId(2), Frame::app(vec![round, i]));
            }
            for _ in 0..20 {
                recv_blocking(b.as_transport(), 5000).expect("frame arrives");
            }
            let out = ca.snapshot().sent(FrameKind::App);
            let inn = cb.snapshot().received(FrameKind::App);
            assert!(out.0 >= last_out, "sent counter went backwards");
            assert!(inn.0 >= last_in, "recv counter went backwards");
            last_out = out.0;
            last_in = inn.0;
        }
        // Everything received was counted on both ends with the same
        // wire_len accounting (payload + 8).
        assert!(
            wait_until(2000, || {
                ca.snapshot().sent(FrameKind::App) == cb.snapshot().received(FrameKind::App)
            }),
            "sender and receiver accounting disagree: {:?} vs {:?}",
            ca.snapshot().sent(FrameKind::App),
            cb.snapshot().received(FrameKind::App)
        );
        assert_eq!(ca.snapshot().sent(FrameKind::App), (100, 100 * 10));
    }
}

// ---------------------------------------------------------------------------
// Contract 6: dropping a transport releases every thread and socket it
// created — no leaked reader threads, reactor loops, or fds.
// ---------------------------------------------------------------------------

fn count_threads() -> usize {
    std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
}

fn count_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

#[test]
fn clean_shutdown_leaks_nothing() {
    let _guard = serial();
    for kind in &ENGINES {
        let threads_before = count_threads();
        let fds_before = count_fds();
        {
            let (a, b) = tcp_pair(kind);
            // Real traffic so both directions have live connections and
            // (for the threaded engine) reader threads.
            a.as_transport().send(HiveId(2), Frame::app(vec![1]));
            recv_blocking(b.as_transport(), 5000).expect("frame arrives");
            b.as_transport().send(HiveId(1), Frame::raft(vec![2]));
            recv_blocking(a.as_transport(), 5000).expect("reply arrives");
        }
        assert!(
            wait_until(5000, || count_threads() <= threads_before),
            "leaked threads: {} before, {} after",
            threads_before,
            count_threads()
        );
        assert!(
            wait_until(5000, || count_fds() <= fds_before),
            "leaked fds: {} before, {} after",
            fds_before,
            count_fds()
        );
    }
}

// ---------------------------------------------------------------------------
// Contract 7: connect_peer / disconnect_peer membership behaviour.
// ---------------------------------------------------------------------------

#[test]
fn runtime_membership_add_and_remove() {
    let _guard = serial();
    for kind in &ENGINES {
        let a = Tcp::bind(kind, HiveId(1), HashMap::new());
        let b = Tcp::bind(kind, HiveId(2), HashMap::new());
        // Neither knew the other at bind time; announce like a live join.
        a.as_transport()
            .connect_peer(HiveId(2), &b.local_addr().to_string());
        assert!(a.as_transport().peers().contains(&HiveId(2)));
        a.as_transport().send(HiveId(2), Frame::app(vec![7]));
        let (from, f) =
            recv_blocking(b.as_transport(), 5000).expect("frame reaches the added peer");
        assert_eq!(from, HiveId(1));
        assert_eq!(f.bytes, vec![7]);
        // A garbage address never touches the address book.
        a.as_transport().connect_peer(HiveId(3), "not-an-address");
        assert!(!a.as_transport().peers().contains(&HiveId(3)));
        // Removal forgets the peer and is idempotent.
        a.as_transport().disconnect_peer(HiveId(2));
        assert!(!a.as_transport().peers().contains(&HiveId(2)));
        assert!(a.as_transport().disconnect_peer(HiveId(2)).is_empty());
    }
}

// ---------------------------------------------------------------------------
// Contract 8: the engines interoperate on the wire — a mixed cluster.
// ---------------------------------------------------------------------------

#[test]
fn threaded_and_reactor_interoperate() {
    let _guard = serial();
    let mut r = Tcp::bind(&TcpKind::Reactor, HiveId(1), HashMap::new());
    let mut t = Tcp::bind(&TcpKind::Threaded, HiveId(2), HashMap::new());
    let (ra, ta) = (r.local_addr(), t.local_addr());
    r.add_peer(HiveId(2), ta);
    t.add_peer(HiveId(1), ra);
    assert_fifo(r.as_transport(), t.as_transport(), HiveId(2), 60);
    assert_fifo(t.as_transport(), r.as_transport(), HiveId(1), 60);
}
