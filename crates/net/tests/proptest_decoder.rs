//! Property/fuzz tests for the streaming frame decoder.
//!
//! The decoder sits on the untrusted side of every TCP connection, so the
//! contracts here are adversarial: for *any* byte stream — frames split at
//! arbitrary boundaries, one byte at a time, torn length prefixes, pure
//! junk — it must never panic, must reproduce well-formed frames
//! byte-identically, must reject malformed length prefixes without
//! buffering their payloads, and must keep its internal buffer bounded by
//! a constant independent of how many bytes flow through it.

use std::io::Read;

use beehive_core::HiveId;
use beehive_net::frame::{
    encode_frame, encode_frame_into, DecodedFrame, FrameDecoder, HEADER_LEN, MAX_FRAME_LEN,
};
use proptest::prelude::*;

/// One logical frame an adversary-controlled peer might send: any src id,
/// any kind byte (the decoder does not interpret kinds), payload up to a
/// few hundred bytes.
fn arb_frame() -> impl Strategy<Value = (u32, u8, Vec<u8>)> {
    (
        any::<u32>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..300),
    )
}

fn encode_all(frames: &[(u32, u8, Vec<u8>)]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (src, kind, payload) in frames {
        encode_frame_into(&mut wire, HiveId(*src), *kind, payload);
    }
    wire
}

/// Drains every currently-complete frame; panics on decode error (these
/// streams are well-formed by construction).
fn drain(dec: &mut FrameDecoder, out: &mut Vec<DecodedFrame>) {
    while let Some(f) = dec.next_frame().expect("well-formed stream") {
        out.push(f);
    }
}

fn assert_identical(decoded: &[DecodedFrame], sent: &[(u32, u8, Vec<u8>)]) {
    assert_eq!(decoded.len(), sent.len());
    for (got, (src, kind, payload)) in decoded.iter().zip(sent) {
        assert_eq!(got.src, HiveId(*src));
        assert_eq!(got.kind, *kind);
        assert_eq!(&got.payload, payload, "payload must be byte-identical");
    }
}

proptest! {
    /// Frames split at arbitrary byte boundaries reassemble byte-identically,
    /// regardless of where the cuts land (mid-prefix, mid-header, mid-payload).
    #[test]
    fn frames_survive_arbitrary_splits(
        frames in prop::collection::vec(arb_frame(), 0..20),
        cuts in prop::collection::vec(1usize..200, 0..64),
    ) {
        let wire = encode_all(&frames);
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        while pos < wire.len() {
            let take = (*cut_iter.next().unwrap()).min(wire.len() - pos);
            dec.extend(&wire[pos..pos + take]);
            pos += take;
            drain(&mut dec, &mut decoded);
        }
        drain(&mut dec, &mut decoded);
        assert_identical(&decoded, &frames);
        prop_assert_eq!(dec.buffered(), 0, "no leftover bytes after a clean stream");
    }

    /// The degenerate split: one byte per feed. Every length prefix and
    /// header is torn across feeds.
    #[test]
    fn one_byte_at_a_time(frames in prop::collection::vec(arb_frame(), 1..8)) {
        let wire = encode_all(&frames);
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for b in &wire {
            dec.extend(std::slice::from_ref(b));
            drain(&mut dec, &mut decoded);
        }
        assert_identical(&decoded, &frames);
    }

    /// The `read_from` socket path behaves exactly like `extend`: a reader
    /// that returns arbitrary short counts still yields identical frames.
    #[test]
    fn read_from_with_short_reads(
        frames in prop::collection::vec(arb_frame(), 0..12),
        chunks in prop::collection::vec(1usize..97, 1..32),
    ) {
        struct Stutter<'a> {
            data: &'a [u8],
            pos: usize,
            chunks: Vec<usize>,
            i: usize,
        }
        impl Read for Stutter<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let want = self.chunks[self.i % self.chunks.len()];
                self.i += 1;
                let n = want.min(buf.len()).min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let wire = encode_all(&frames);
        let mut r = Stutter { data: &wire, pos: 0, chunks, i: 0 };
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        loop {
            let n = dec.read_from(&mut r).expect("in-memory reader");
            drain(&mut dec, &mut decoded);
            if n == 0 {
                break;
            }
        }
        assert_identical(&decoded, &frames);
    }

    /// Pure junk never panics: every outcome is `Ok(None)` (starved),
    /// `Ok(Some)` (junk that happens to parse — fine, the frame's `len` was
    /// in range), or `Err` (malformed prefix). After the first `Err` the
    /// connection would be dropped, so the test stops there too.
    #[test]
    fn arbitrary_junk_never_panics(
        junk in prop::collection::vec(any::<u8>(), 0..4096),
        cuts in prop::collection::vec(1usize..64, 1..32),
    ) {
        let mut dec = FrameDecoder::with_max_frame(1024);
        let mut pos = 0;
        let mut cut_iter = cuts.iter().cycle();
        'outer: while pos < junk.len() {
            let take = (*cut_iter.next().unwrap()).min(junk.len() - pos);
            dec.extend(&junk[pos..pos + take]);
            pos += take;
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => prop_assert!(f.payload.len() + 5 <= 1024),
                    Ok(None) => break,
                    Err(e) => {
                        // Malformed prefix: the offending len really is out
                        // of the decoder's accepted range.
                        prop_assert!(!(5..=1024).contains(&e.len));
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Valid frames followed by a corrupted length prefix: every frame
    /// before the corruption decodes intact, then the stream errors —
    /// never panics, never yields a phantom frame past the corruption.
    #[test]
    fn valid_prefix_decodes_before_corruption(
        frames in prop::collection::vec(arb_frame(), 1..6),
        bad_len in prop_oneof![Just(0u32), Just(4u32), (1025u32..u32::MAX)],
    ) {
        let mut wire = encode_all(&frames);
        wire.extend_from_slice(&bad_len.to_le_bytes());
        wire.extend_from_slice(&[0xAB; 16]);
        let mut dec = FrameDecoder::with_max_frame(1024);
        dec.extend(&wire);
        let mut decoded = Vec::new();
        let err = loop {
            match dec.next_frame() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) => panic!("corruption must surface as an error"),
                Err(e) => break e,
            }
        };
        assert_identical(&decoded, &frames);
        prop_assert_eq!(err.len, bad_len as usize);
        prop_assert_eq!(err.max, 1024);
    }

    /// An oversized length prefix is rejected from the prefix alone —
    /// the decoder never waits for (or buffers) the announced payload.
    #[test]
    fn oversize_len_rejected_from_prefix_alone(extra in 1u64..u32::MAX as u64) {
        let bad = (MAX_FRAME_LEN as u64 + extra).min(u32::MAX as u64) as u32;
        let mut dec = FrameDecoder::new();
        dec.extend(&bad.to_le_bytes());
        prop_assert!(dec.next_frame().is_err());
        prop_assert!(dec.buffered_capacity() < 4096, "no payload-sized allocation");
    }

}

proptest! {
    // Each case pushes ~a quarter megabyte through the decoder, so run
    // fewer, bigger cases than the proptest default.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Buffer growth is capped: with a 1 KiB frame cap, pushing hundreds of
    /// kilobytes through the decoder in arbitrary chunks never grows the
    /// internal buffer past a constant (one read chunk + one max frame,
    /// doubled for Vec growth slack) — it is independent of stream volume.
    #[test]
    fn buffer_growth_is_bounded(
        chunk in 1usize..512,
        payload_len in 0usize..1019,
    ) {
        const CAP: usize = 1024;
        const READ_CHUNK: usize = 64 * 1024;
        let mut dec = FrameDecoder::with_max_frame(CAP);
        let frame = encode_frame(HiveId(1), 0, &vec![0x5A; payload_len]);
        // Several multiples of the compaction threshold worth of traffic.
        let total_frames = (4 * READ_CHUNK) / frame.len() + 1;
        let mut wire = Vec::new();
        let mut fed = 0usize;
        let mut decoded = 0usize;
        for _ in 0..total_frames {
            wire.extend_from_slice(&frame);
            while wire.len() - fed >= chunk {
                dec.extend(&wire[fed..fed + chunk]);
                fed += chunk;
                while dec.next_frame().expect("well-formed").is_some() {
                    decoded += 1;
                }
                prop_assert!(
                    dec.buffered_capacity() <= 2 * (READ_CHUNK + CAP + 4 + chunk),
                    "buffer capacity {} escaped its bound",
                    dec.buffered_capacity()
                );
            }
            // Keep the staging vec itself from growing without bound.
            if fed > 0 {
                wire.drain(..fed);
                fed = 0;
            }
        }
        prop_assert!(decoded >= total_frames - 1);
    }
}

/// `HEADER_LEN` bytes of header plus payload is exactly what lands on the
/// wire — pinned here so the bench's bytes/sec math and the counters'
/// `wire_len` accounting can't silently drift from the codec.
#[test]
fn header_len_matches_wire_layout() {
    let wire = encode_frame(HiveId(9), 2, &[1, 2, 3]);
    assert_eq!(wire.len(), HEADER_LEN + 3);
    assert_eq!(&wire[..4], &(3u32 + 5).to_le_bytes());
}
