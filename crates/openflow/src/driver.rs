//! The Beehive OpenFlow driver application.
//!
//! The driver is an ordinary Beehive app whose cells are keyed by datapath
//! id: the bee for switch `SWi` is created on the hive where `SWi`'s control
//! channel terminates — which is exactly how the platform ends up "querying
//! a switch on its master controller" (paper §2).
//!
//! Upstream (`switch → controller`) wire bytes enter the platform as
//! [`SwitchUpstream`] messages; the driver decodes them and emits platform
//! events ([`SwitchJoined`], [`StatReply`], [`PacketInEvent`], …). Commands
//! from control apps ([`FlowStatQuery`], [`InstallRule`], [`PacketOutCmd`])
//! are encoded back into wire bytes and written to the switch through a
//! [`SwitchIo`] (the simulator's switch fabric, or a real TCP connection).

use std::sync::Arc;

use beehive_core::prelude::*;
use serde::{Deserialize, Serialize};

use crate::wire::{Action, FlowModCommand, Match, OfMessage};

/// Name of the driver application.
pub const DRIVER_APP: &str = "openflow.driver";

/// Writes controller-to-switch bytes to a switch's control channel.
pub trait SwitchIo: Send + Sync {
    /// Sends encoded OpenFlow bytes to switch `dpid`.
    fn send(&self, dpid: u64, bytes: Vec<u8>);
}

/// Raw upstream bytes from a switch's control channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchUpstream {
    /// Datapath id of the sending switch.
    pub dpid: u64,
    /// One encoded OpenFlow message.
    pub bytes: Vec<u8>,
}
impl_message!(SwitchUpstream);

/// A switch completed its handshake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchJoined {
    /// Datapath id.
    pub dpid: u64,
    /// Number of ports it reported.
    pub n_ports: u16,
}
impl_message!(SwitchJoined);

/// One flow's statistics, in platform form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowStat {
    /// Source IPv4 of the flow's match.
    pub nw_src: u32,
    /// Destination IPv4 of the flow's match.
    pub nw_dst: u32,
    /// Packets matched.
    pub packets: u64,
    /// Bytes matched.
    pub bytes: u64,
    /// Seconds installed.
    pub duration_sec: u32,
}

/// Flow statistics for one switch (the paper's `StatReply`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatReply {
    /// The switch.
    pub switch: u64,
    /// Per-flow statistics.
    pub flows: Vec<FlowStat>,
}
impl_message!(StatReply);

/// A packet punted to the control plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketInEvent {
    /// The switch.
    pub switch: u64,
    /// Ingress port.
    pub in_port: u16,
    /// Packet bytes.
    pub data: Vec<u8>,
}
impl_message!(PacketInEvent);

/// A port went up/down.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortStatusEvent {
    /// The switch.
    pub switch: u64,
    /// The port.
    pub port: u16,
    /// 0 = add, 1 = delete, 2 = modify.
    pub reason: u8,
}
impl_message!(PortStatusEvent);

/// Command: query a switch's flow statistics (the paper's `FlowStatQuery`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowStatQuery {
    /// The switch to query.
    pub switch: u64,
}
impl_message!(FlowStatQuery);

/// Command: install (or replace) a unicast forwarding rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstallRule {
    /// Target switch.
    pub switch: u64,
    /// What to match.
    pub match_: Match,
    /// Priority.
    pub priority: u16,
    /// Egress port.
    pub out_port: u16,
}
impl_message!(InstallRule);

/// Command: inject a packet out of a switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PacketOutCmd {
    /// Target switch.
    pub switch: u64,
    /// Nominal ingress port.
    pub in_port: u16,
    /// Egress port.
    pub out_port: u16,
    /// Raw packet.
    pub data: Vec<u8>,
}
impl_message!(PacketOutCmd);

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct SwitchRecord {
    n_ports: u16,
    joined: bool,
    next_xid: u32,
}

const DICT: &str = "switches";

fn next_xid(ctx: &mut RcvCtx<'_>, dpid: u64) -> Result<u32, String> {
    let key = dpid.to_string();
    let mut rec: SwitchRecord = ctx
        .get(DICT, &key)
        .map_err(|e| e.to_string())?
        .unwrap_or_default();
    rec.next_xid += 1;
    let xid = rec.next_xid;
    ctx.put(DICT, key, &rec).map_err(|e| e.to_string())?;
    Ok(xid)
}

/// Builds the OpenFlow driver app over the given switch IO.
pub fn driver_app(io: Arc<dyn SwitchIo>) -> App {
    let io_up = io.clone();
    let io_query = io.clone();
    let io_rule = io.clone();
    let io_pkt = io;

    App::builder(DRIVER_APP)
        .handle_named::<SwitchUpstream>(
            "Upstream",
            |m| Mapped::cell(DICT, m.dpid.to_string()),
            move |m, ctx| {
                let msg = OfMessage::decode(&m.bytes).map_err(|e| e.to_string())?;
                match msg {
                    OfMessage::Hello { .. } => {
                        // Complete the handshake and ask who they are.
                        io_up.send(m.dpid, OfMessage::Hello { xid: 0 }.encode());
                        let xid = next_xid(ctx, m.dpid)?;
                        io_up.send(m.dpid, OfMessage::FeaturesRequest { xid }.encode());
                    }
                    OfMessage::EchoRequest { xid, data } => {
                        io_up.send(m.dpid, OfMessage::EchoReply { xid, data }.encode());
                    }
                    OfMessage::FeaturesReply {
                        datapath_id, ports, ..
                    } => {
                        let key = datapath_id.to_string();
                        let mut rec: SwitchRecord = ctx
                            .get(DICT, &key)
                            .map_err(|e| e.to_string())?
                            .unwrap_or_default();
                        let newly = !rec.joined;
                        rec.joined = true;
                        rec.n_ports = ports.len() as u16;
                        ctx.put(DICT, key, &rec).map_err(|e| e.to_string())?;
                        if newly {
                            ctx.emit(SwitchJoined {
                                dpid: datapath_id,
                                n_ports: ports.len() as u16,
                            });
                        }
                    }
                    OfMessage::FlowStatsReply { flows, .. } => {
                        let stats = flows
                            .iter()
                            .map(|f| FlowStat {
                                nw_src: f.match_.nw_src,
                                nw_dst: f.match_.nw_dst,
                                packets: f.packet_count,
                                bytes: f.byte_count,
                                duration_sec: f.duration_sec,
                            })
                            .collect();
                        ctx.emit(StatReply {
                            switch: m.dpid,
                            flows: stats,
                        });
                    }
                    OfMessage::PacketIn { in_port, data, .. } => {
                        ctx.emit(PacketInEvent {
                            switch: m.dpid,
                            in_port,
                            data,
                        });
                    }
                    OfMessage::PortStatus { reason, desc, .. } => {
                        ctx.emit(PortStatusEvent {
                            switch: m.dpid,
                            port: desc.port_no,
                            reason,
                        });
                    }
                    // Replies we don't act on.
                    OfMessage::EchoReply { .. } | OfMessage::Error { .. } => {}
                    // Controller-to-switch types arriving upstream are a
                    // protocol violation; surface as handler error so the tx
                    // rolls back and the error is counted.
                    other => return Err(format!("unexpected upstream message {other:?}")),
                }
                Ok(())
            },
        )
        .handle_named::<FlowStatQuery>(
            "Query",
            |m| Mapped::cell(DICT, m.switch.to_string()),
            move |m, ctx| {
                let xid = next_xid(ctx, m.switch)?;
                io_query.send(
                    m.switch,
                    OfMessage::FlowStatsRequest {
                        xid,
                        match_: Match::any(),
                        table_id: 0xFF,
                    }
                    .encode(),
                );
                Ok(())
            },
        )
        .handle_named::<InstallRule>(
            "Install",
            |m| Mapped::cell(DICT, m.switch.to_string()),
            move |m, ctx| {
                let xid = next_xid(ctx, m.switch)?;
                io_rule.send(
                    m.switch,
                    OfMessage::FlowMod {
                        xid,
                        match_: m.match_,
                        cookie: 0,
                        command: FlowModCommand::Add,
                        idle_timeout: 0,
                        hard_timeout: 0,
                        priority: m.priority,
                        actions: vec![Action::Output {
                            port: m.out_port,
                            max_len: 0,
                        }],
                    }
                    .encode(),
                );
                Ok(())
            },
        )
        .handle_named::<PacketOutCmd>(
            "PacketOut",
            |m| Mapped::cell(DICT, m.switch.to_string()),
            move |m, ctx| {
                let xid = next_xid(ctx, m.switch)?;
                io_pkt.send(
                    m.switch,
                    OfMessage::PacketOut {
                        xid,
                        buffer_id: u32::MAX,
                        in_port: m.in_port,
                        actions: vec![Action::Output {
                            port: m.out_port,
                            max_len: 0,
                        }],
                        data: m.data.clone(),
                    }
                    .encode(),
                );
                Ok(())
            },
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchModel;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Captures controller-to-switch bytes for inspection.
    #[derive(Default)]
    struct MockIo {
        sent: Mutex<Vec<(u64, Vec<u8>)>>,
    }

    impl SwitchIo for MockIo {
        fn send(&self, dpid: u64, bytes: Vec<u8>) {
            self.sent.lock().push((dpid, bytes));
        }
    }

    fn hive_with_driver() -> (Hive, Arc<MockIo>) {
        let io = Arc::new(MockIo::default());
        let mut hive = Hive::new(
            HiveConfig::standalone(HiveId(1)),
            Arc::new(SystemClock::new()),
            Box::new(Loopback::new(HiveId(1))),
        );
        hive.install(driver_app(io.clone()));
        (hive, io)
    }

    #[test]
    fn handshake_flows_through_driver() {
        let (mut hive, io) = hive_with_driver();
        let mut sw = SwitchModel::new(7, 3);

        // Switch says hello.
        hive.emit(SwitchUpstream {
            dpid: 7,
            bytes: sw.hello(),
        });
        hive.step_until_quiescent(100);

        // Driver should have replied with Hello + FeaturesRequest.
        let sent = io.sent.lock().clone();
        assert_eq!(sent.len(), 2);
        assert!(matches!(
            OfMessage::decode(&sent[0].1).unwrap(),
            OfMessage::Hello { .. }
        ));
        let feat_req = OfMessage::decode(&sent[1].1).unwrap();
        assert!(matches!(feat_req, OfMessage::FeaturesRequest { .. }));

        // Feed the switch's replies back upstream.
        for reply in sw.handle_bytes(&sent[1].1).unwrap() {
            hive.emit(SwitchUpstream {
                dpid: 7,
                bytes: reply,
            });
        }
        hive.step_until_quiescent(100);

        // One driver bee, holding the switch's record.
        assert_eq!(hive.local_bee_count(DRIVER_APP), 1);
        let (bee, _) = hive.local_bees(DRIVER_APP)[0];
        let rec: SwitchRecord = hive.peek_state(DRIVER_APP, bee, DICT, "7").unwrap();
        assert!(rec.joined);
        assert_eq!(rec.n_ports, 3);
    }

    #[test]
    fn query_command_becomes_stats_request() {
        let (mut hive, io) = hive_with_driver();
        hive.emit(FlowStatQuery { switch: 9 });
        hive.step_until_quiescent(100);
        let sent = io.sent.lock().clone();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].0, 9);
        assert!(matches!(
            OfMessage::decode(&sent[0].1).unwrap(),
            OfMessage::FlowStatsRequest { .. }
        ));
    }

    #[test]
    fn install_rule_becomes_flow_mod_and_programs_switch() {
        let (mut hive, io) = hive_with_driver();
        let mut sw = SwitchModel::new(3, 2);
        hive.emit(InstallRule {
            switch: 3,
            match_: Match::nw_pair(1, 2),
            priority: 7,
            out_port: 2,
        });
        hive.step_until_quiescent(100);
        let sent = io.sent.lock().clone();
        assert_eq!(sent.len(), 1);
        sw.handle_bytes(&sent[0].1).unwrap();
        assert_eq!(sw.flows().len(), 1);
        assert_eq!(sw.flows()[0].priority, 7);
    }

    #[test]
    fn stats_reply_emits_stat_reply_message() {
        let (mut hive, io) = hive_with_driver();
        let mut sw = SwitchModel::new(5, 2);
        // Program + account a flow, then ask for stats through the driver.
        hive.emit(InstallRule {
            switch: 5,
            match_: Match::nw_pair(1, 2),
            priority: 1,
            out_port: 1,
        });
        hive.step_until_quiescent(100);
        sw.handle_bytes(&io.sent.lock()[0].1).unwrap();
        sw.account_traffic(
            &Match {
                wildcards: 0,
                nw_src: 1,
                nw_dst: 2,
                ..Default::default()
            },
            4,
            400,
        );

        // A tiny consumer app that records the StatReply it sees.
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let consumer = App::builder("consumer")
            .handle::<StatReply>(
                |m| Mapped::cell("s", m.switch.to_string()),
                move |m, _ctx| {
                    seen2.lock().push(m.clone());
                    Ok(())
                },
            )
            .build();
        hive.install(consumer);

        hive.emit(FlowStatQuery { switch: 5 });
        hive.step_until_quiescent(100);
        let query_bytes = io.sent.lock().last().unwrap().1.clone();
        for reply in sw.handle_bytes(&query_bytes).unwrap() {
            hive.emit(SwitchUpstream {
                dpid: 5,
                bytes: reply,
            });
        }
        hive.step_until_quiescent(100);

        let replies = seen.lock().clone();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].switch, 5);
        assert_eq!(replies[0].flows.len(), 1);
        assert_eq!(replies[0].flows[0].bytes, 400);
    }

    #[test]
    fn upstream_garbage_is_a_handler_error() {
        let (mut hive, _io) = hive_with_driver();
        hive.emit(SwitchUpstream {
            dpid: 1,
            bytes: vec![0xFF, 0xFF],
        });
        hive.step_until_quiescent(100);
        assert_eq!(hive.counters().handler_errors, 1);
    }

    #[test]
    fn per_switch_cells_create_per_switch_bees() {
        let (mut hive, _io) = hive_with_driver();
        for dpid in 1..=4u64 {
            hive.emit(FlowStatQuery { switch: dpid });
        }
        hive.step_until_quiescent(100);
        assert_eq!(hive.local_bee_count(DRIVER_APP), 4);
    }
}
