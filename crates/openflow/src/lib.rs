#![warn(missing_docs)]

//! `beehive-openflow` — an OpenFlow 1.0 subset, from scratch.
//!
//! Three layers:
//!
//! * [`wire`] — the binary codec for the OF 1.0 messages Beehive's
//!   applications need: HELLO, ECHO, FEATURES, PACKET_IN/OUT, FLOW_MOD,
//!   flow STATS_REQUEST/REPLY, PORT_STATUS and ERROR.
//! * [`switch`] — a flow-table switch model speaking that wire format
//!   (used by the simulator in place of hardware).
//! * [`driver`] — the Beehive **OpenFlow driver** control application: one
//!   bee per switch (cell = datapath id), translating wire messages into
//!   platform messages ([`SwitchJoined`], [`StatReply`], …) and platform
//!   commands ([`FlowStatQuery`], [`InstallRule`], …) back into wire
//!   messages.

pub mod driver;
pub mod switch;
pub mod wire;

pub use driver::{
    driver_app, FlowStat, FlowStatQuery, InstallRule, PacketInEvent, PacketOutCmd, StatReply,
    SwitchIo, SwitchJoined, SwitchUpstream, DRIVER_APP,
};
pub use switch::{FlowEntry, SwitchModel};
pub use wire::{
    Action, FlowModCommand, FlowStatsEntry, Match, OfMessage, PacketInReason, PhyPort, OFP_VERSION,
};
